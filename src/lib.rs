//! # SoftSKU — soft server SKUs for diverse microservices
//!
//! A full Rust reproduction of *"SoftSKU: Optimizing Server Architectures
//! for Microservice Diversity @Scale"* (Sriraman, Dhanotia, Wenisch —
//! ISCA 2019): the characterization of seven production microservices, the
//! simulated production substrate standing in for Facebook's fleet, and
//! **µSKU**, the automated A/B-testing tool that tunes seven coarse-grain
//! server knobs into microservice-specific "soft SKUs".
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`telemetry`] | `softsku-telemetry` | statistics, EMON-like sampling, ODS-like time series |
//! | [`archsim`] | `softsku-archsim` | platforms, caches/CAT/CDP, TLBs, prefetchers, memory, TMAM engine |
//! | [`knobs`] | `softsku-knobs` | the seven-knob design space |
//! | [`workloads`] | `softsku-workloads` | the seven microservices + SPEC CPU2006 references |
//! | [`cluster`] | `softsku-cluster` | simulated servers, A/B environment, validation fleet |
//! | [`usku`] | `usku` | the µSKU pipeline: input → configurator → A/B tester → generator |
//! | [`rollout`] | `softsku-rollout` | soft-SKU composition, staged canary rollout, drift-triggered re-tune |
//!
//! # Quickstart
//!
//! ```no_run
//! use softsku::usku::{InputFile, Usku};
//!
//! let input = InputFile::parse(
//!     "microservice = web\nplatform = skylake18\nsweep = independent\n",
//! )?;
//! let report = Usku::new(input).run()?;
//! println!("{}", report.render());
//! # Ok::<(), softsku::usku::UskuError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use softsku_archsim as archsim;
pub use softsku_cluster as cluster;
pub use softsku_knobs as knobs;
pub use softsku_rollout as rollout;
pub use softsku_telemetry as telemetry;
pub use softsku_workloads as workloads;
pub use usku;
