/root/repo/target/debug/deps/softsku_telemetry-b98f54ea2730e830.d: crates/telemetry/src/lib.rs crates/telemetry/src/emon.rs crates/telemetry/src/error.rs crates/telemetry/src/ods.rs crates/telemetry/src/stats/mod.rs crates/telemetry/src/stats/autocorr.rs crates/telemetry/src/stats/bootstrap.rs crates/telemetry/src/stats/mad.rs crates/telemetry/src/stats/student_t.rs crates/telemetry/src/stats/summary.rs crates/telemetry/src/stats/welch.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku_telemetry-b98f54ea2730e830.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/emon.rs crates/telemetry/src/error.rs crates/telemetry/src/ods.rs crates/telemetry/src/stats/mod.rs crates/telemetry/src/stats/autocorr.rs crates/telemetry/src/stats/bootstrap.rs crates/telemetry/src/stats/mad.rs crates/telemetry/src/stats/student_t.rs crates/telemetry/src/stats/summary.rs crates/telemetry/src/stats/welch.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/emon.rs:
crates/telemetry/src/error.rs:
crates/telemetry/src/ods.rs:
crates/telemetry/src/stats/mod.rs:
crates/telemetry/src/stats/autocorr.rs:
crates/telemetry/src/stats/bootstrap.rs:
crates/telemetry/src/stats/mad.rs:
crates/telemetry/src/stats/student_t.rs:
crates/telemetry/src/stats/summary.rs:
crates/telemetry/src/stats/welch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
