/root/repo/target/debug/deps/proptest-0eb8d44dc29f431f.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/debug/deps/libproptest-0eb8d44dc29f431f.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/debug/deps/libproptest-0eb8d44dc29f431f.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/prelude.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
