/root/repo/target/debug/deps/softsku_cluster-16aaf2caf735494e.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/debug/deps/softsku_cluster-16aaf2caf735494e: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
