/root/repo/target/debug/deps/proptests-e571baa4a18d441a.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e571baa4a18d441a.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
