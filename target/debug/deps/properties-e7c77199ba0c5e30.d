/root/repo/target/debug/deps/properties-e7c77199ba0c5e30.d: crates/workloads/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e7c77199ba0c5e30.rmeta: crates/workloads/tests/properties.rs Cargo.toml

crates/workloads/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
