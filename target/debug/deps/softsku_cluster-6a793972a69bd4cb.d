/root/repo/target/debug/deps/softsku_cluster-6a793972a69bd4cb.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku_cluster-6a793972a69bd4cb.rmeta: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
