/root/repo/target/debug/deps/hazard_robustness-5dbdfa7da4d606a4.d: tests/hazard_robustness.rs

/root/repo/target/debug/deps/hazard_robustness-5dbdfa7da4d606a4: tests/hazard_robustness.rs

tests/hazard_robustness.rs:
