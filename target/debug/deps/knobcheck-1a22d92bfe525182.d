/root/repo/target/debug/deps/knobcheck-1a22d92bfe525182.d: crates/bench/src/bin/knobcheck.rs Cargo.toml

/root/repo/target/debug/deps/libknobcheck-1a22d92bfe525182.rmeta: crates/bench/src/bin/knobcheck.rs Cargo.toml

crates/bench/src/bin/knobcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
