/root/repo/target/debug/deps/softsku-f56f44cc6ac57f3f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku-f56f44cc6ac57f3f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
