/root/repo/target/debug/deps/usku_end_to_end-dcf073c436d102f7.d: tests/usku_end_to_end.rs

/root/repo/target/debug/deps/usku_end_to_end-dcf073c436d102f7: tests/usku_end_to_end.rs

tests/usku_end_to_end.rs:
