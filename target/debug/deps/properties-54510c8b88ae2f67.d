/root/repo/target/debug/deps/properties-54510c8b88ae2f67.d: crates/telemetry/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-54510c8b88ae2f67.rmeta: crates/telemetry/tests/properties.rs Cargo.toml

crates/telemetry/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
