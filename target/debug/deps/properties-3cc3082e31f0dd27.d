/root/repo/target/debug/deps/properties-3cc3082e31f0dd27.d: crates/archsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3cc3082e31f0dd27.rmeta: crates/archsim/tests/properties.rs Cargo.toml

crates/archsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
