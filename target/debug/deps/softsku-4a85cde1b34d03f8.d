/root/repo/target/debug/deps/softsku-4a85cde1b34d03f8.d: src/lib.rs

/root/repo/target/debug/deps/libsoftsku-4a85cde1b34d03f8.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoftsku-4a85cde1b34d03f8.rmeta: src/lib.rs

src/lib.rs:
