/root/repo/target/debug/deps/properties-cf67af25b3789e11.d: crates/workloads/tests/properties.rs

/root/repo/target/debug/deps/properties-cf67af25b3789e11: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
