/root/repo/target/debug/deps/usku-ca6c5d3808f44a3a.d: crates/core/src/bin/usku.rs Cargo.toml

/root/repo/target/debug/deps/libusku-ca6c5d3808f44a3a.rmeta: crates/core/src/bin/usku.rs Cargo.toml

crates/core/src/bin/usku.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
