/root/repo/target/debug/deps/repro-a03276f7135ab02d.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-a03276f7135ab02d.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
