/root/repo/target/debug/deps/knobcheck-503cea724f727df6.d: crates/bench/src/bin/knobcheck.rs

/root/repo/target/debug/deps/knobcheck-503cea724f727df6: crates/bench/src/bin/knobcheck.rs

crates/bench/src/bin/knobcheck.rs:
