/root/repo/target/debug/deps/usku-40810627bd9a71cd.d: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs Cargo.toml

/root/repo/target/debug/deps/libusku-40810627bd9a71cd.rmeta: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/abtest.rs:
crates/core/src/error.rs:
crates/core/src/generator.rs:
crates/core/src/input.rs:
crates/core/src/map.rs:
crates/core/src/metric.rs:
crates/core/src/objective.rs:
crates/core/src/search.rs:
crates/core/src/usku.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
