/root/repo/target/debug/deps/repro-52443e78bdb832cd.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-52443e78bdb832cd: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
