/root/repo/target/debug/deps/calibrate-9bae9748b467cffb.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-9bae9748b467cffb.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
