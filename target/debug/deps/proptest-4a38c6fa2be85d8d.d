/root/repo/target/debug/deps/proptest-4a38c6fa2be85d8d.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/debug/deps/libproptest-4a38c6fa2be85d8d.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/prelude.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
