/root/repo/target/debug/deps/softsku-a49885930b00e20e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku-a49885930b00e20e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
