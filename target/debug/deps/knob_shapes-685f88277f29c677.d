/root/repo/target/debug/deps/knob_shapes-685f88277f29c677.d: tests/knob_shapes.rs

/root/repo/target/debug/deps/knob_shapes-685f88277f29c677: tests/knob_shapes.rs

tests/knob_shapes.rs:
