/root/repo/target/debug/deps/properties-7a973aef546893d9.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7a973aef546893d9.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
