/root/repo/target/debug/deps/usku-67c0296feabecec5.d: crates/core/src/bin/usku.rs Cargo.toml

/root/repo/target/debug/deps/libusku-67c0296feabecec5.rmeta: crates/core/src/bin/usku.rs Cargo.toml

crates/core/src/bin/usku.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
