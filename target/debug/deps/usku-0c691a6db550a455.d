/root/repo/target/debug/deps/usku-0c691a6db550a455.d: crates/core/src/bin/usku.rs

/root/repo/target/debug/deps/usku-0c691a6db550a455: crates/core/src/bin/usku.rs

crates/core/src/bin/usku.rs:
