/root/repo/target/debug/deps/characterization-66b0a845d3b66d6e.d: tests/characterization.rs Cargo.toml

/root/repo/target/debug/deps/libcharacterization-66b0a845d3b66d6e.rmeta: tests/characterization.rs Cargo.toml

tests/characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
