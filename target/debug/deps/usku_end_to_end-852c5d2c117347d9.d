/root/repo/target/debug/deps/usku_end_to_end-852c5d2c117347d9.d: tests/usku_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libusku_end_to_end-852c5d2c117347d9.rmeta: tests/usku_end_to_end.rs Cargo.toml

tests/usku_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
