/root/repo/target/debug/deps/softsku_knobs-a31669f8da58c4f5.d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku_knobs-a31669f8da58c4f5.rmeta: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs Cargo.toml

crates/knobs/src/lib.rs:
crates/knobs/src/error.rs:
crates/knobs/src/knob.rs:
crates/knobs/src/space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
