/root/repo/target/debug/deps/softsku_bench-dab3c0610d6fa764.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

/root/repo/target/debug/deps/softsku_bench-dab3c0610d6fa764: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/characterization.rs:
crates/bench/src/common.rs:
crates/bench/src/knobsweeps.rs:
