/root/repo/target/debug/deps/knob_shapes-1c3b3515511662b1.d: tests/knob_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libknob_shapes-1c3b3515511662b1.rmeta: tests/knob_shapes.rs Cargo.toml

tests/knob_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
