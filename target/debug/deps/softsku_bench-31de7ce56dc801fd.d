/root/repo/target/debug/deps/softsku_bench-31de7ce56dc801fd.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku_bench-31de7ce56dc801fd.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/characterization.rs:
crates/bench/src/common.rs:
crates/bench/src/knobsweeps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
