/root/repo/target/debug/deps/softsku_workloads-7e59a275d12d199e.d: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku_workloads-7e59a275d12d199e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/calib.rs:
crates/workloads/src/comparisons.rs:
crates/workloads/src/error.rs:
crates/workloads/src/loadgen.rs:
crates/workloads/src/microservices.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/queuesim.rs:
crates/workloads/src/request.rs:
crates/workloads/src/spec2006.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
