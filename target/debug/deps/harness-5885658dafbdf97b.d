/root/repo/target/debug/deps/harness-5885658dafbdf97b.d: crates/bench/benches/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-5885658dafbdf97b.rmeta: crates/bench/benches/harness.rs Cargo.toml

crates/bench/benches/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
