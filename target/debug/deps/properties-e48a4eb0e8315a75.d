/root/repo/target/debug/deps/properties-e48a4eb0e8315a75.d: crates/knobs/tests/properties.rs

/root/repo/target/debug/deps/properties-e48a4eb0e8315a75: crates/knobs/tests/properties.rs

crates/knobs/tests/properties.rs:
