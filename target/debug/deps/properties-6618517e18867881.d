/root/repo/target/debug/deps/properties-6618517e18867881.d: crates/telemetry/tests/properties.rs

/root/repo/target/debug/deps/properties-6618517e18867881: crates/telemetry/tests/properties.rs

crates/telemetry/tests/properties.rs:
