/root/repo/target/debug/deps/calibrate-bc1789f1f89870dd.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-bc1789f1f89870dd.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
