/root/repo/target/debug/deps/proptests-c5205f6937d810b9.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-c5205f6937d810b9: tests/proptests.rs

tests/proptests.rs:
