/root/repo/target/debug/deps/softsku_bench-98f14ca320929b83.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

/root/repo/target/debug/deps/libsoftsku_bench-98f14ca320929b83.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

/root/repo/target/debug/deps/libsoftsku_bench-98f14ca320929b83.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/characterization.rs:
crates/bench/src/common.rs:
crates/bench/src/knobsweeps.rs:
