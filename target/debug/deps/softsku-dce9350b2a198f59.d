/root/repo/target/debug/deps/softsku-dce9350b2a198f59.d: src/lib.rs

/root/repo/target/debug/deps/softsku-dce9350b2a198f59: src/lib.rs

src/lib.rs:
