/root/repo/target/debug/deps/softsku_workloads-6507e51176d396a7.d: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs

/root/repo/target/debug/deps/libsoftsku_workloads-6507e51176d396a7.rlib: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs

/root/repo/target/debug/deps/libsoftsku_workloads-6507e51176d396a7.rmeta: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs

crates/workloads/src/lib.rs:
crates/workloads/src/calib.rs:
crates/workloads/src/comparisons.rs:
crates/workloads/src/error.rs:
crates/workloads/src/loadgen.rs:
crates/workloads/src/microservices.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/queuesim.rs:
crates/workloads/src/request.rs:
crates/workloads/src/spec2006.rs:
