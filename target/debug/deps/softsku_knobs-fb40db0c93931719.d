/root/repo/target/debug/deps/softsku_knobs-fb40db0c93931719.d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/debug/deps/libsoftsku_knobs-fb40db0c93931719.rlib: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/debug/deps/libsoftsku_knobs-fb40db0c93931719.rmeta: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

crates/knobs/src/lib.rs:
crates/knobs/src/error.rs:
crates/knobs/src/knob.rs:
crates/knobs/src/space.rs:
