/root/repo/target/debug/deps/softsku_cluster-691a650622e87bee.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsku_cluster-691a650622e87bee.rmeta: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
