/root/repo/target/debug/deps/rand-20605044d8eb09a3.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/debug/deps/librand-20605044d8eb09a3.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
