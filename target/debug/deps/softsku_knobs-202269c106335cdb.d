/root/repo/target/debug/deps/softsku_knobs-202269c106335cdb.d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/debug/deps/softsku_knobs-202269c106335cdb: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

crates/knobs/src/lib.rs:
crates/knobs/src/error.rs:
crates/knobs/src/knob.rs:
crates/knobs/src/space.rs:
