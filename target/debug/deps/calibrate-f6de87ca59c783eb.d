/root/repo/target/debug/deps/calibrate-f6de87ca59c783eb.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-f6de87ca59c783eb: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
