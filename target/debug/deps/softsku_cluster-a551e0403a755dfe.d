/root/repo/target/debug/deps/softsku_cluster-a551e0403a755dfe.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/debug/deps/libsoftsku_cluster-a551e0403a755dfe.rlib: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/debug/deps/libsoftsku_cluster-a551e0403a755dfe.rmeta: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
