/root/repo/target/debug/deps/repro-a38ff159df563f9b.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-a38ff159df563f9b.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
