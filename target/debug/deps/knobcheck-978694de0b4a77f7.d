/root/repo/target/debug/deps/knobcheck-978694de0b4a77f7.d: crates/bench/src/bin/knobcheck.rs Cargo.toml

/root/repo/target/debug/deps/libknobcheck-978694de0b4a77f7.rmeta: crates/bench/src/bin/knobcheck.rs Cargo.toml

crates/bench/src/bin/knobcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
