/root/repo/target/debug/deps/characterization-0db867aad5cec835.d: tests/characterization.rs

/root/repo/target/debug/deps/characterization-0db867aad5cec835: tests/characterization.rs

tests/characterization.rs:
