/root/repo/target/debug/deps/components-0eeabf8b9a63cdf6.d: crates/bench/benches/components.rs Cargo.toml

/root/repo/target/debug/deps/libcomponents-0eeabf8b9a63cdf6.rmeta: crates/bench/benches/components.rs Cargo.toml

crates/bench/benches/components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
