/root/repo/target/debug/deps/properties-29239c0f3956578a.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-29239c0f3956578a: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
