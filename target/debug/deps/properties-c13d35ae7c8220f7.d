/root/repo/target/debug/deps/properties-c13d35ae7c8220f7.d: crates/archsim/tests/properties.rs

/root/repo/target/debug/deps/properties-c13d35ae7c8220f7: crates/archsim/tests/properties.rs

crates/archsim/tests/properties.rs:
