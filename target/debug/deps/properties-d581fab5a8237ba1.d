/root/repo/target/debug/deps/properties-d581fab5a8237ba1.d: crates/knobs/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d581fab5a8237ba1.rmeta: crates/knobs/tests/properties.rs Cargo.toml

crates/knobs/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
