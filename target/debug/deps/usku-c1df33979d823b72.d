/root/repo/target/debug/deps/usku-c1df33979d823b72.d: crates/core/src/bin/usku.rs

/root/repo/target/debug/deps/usku-c1df33979d823b72: crates/core/src/bin/usku.rs

crates/core/src/bin/usku.rs:
