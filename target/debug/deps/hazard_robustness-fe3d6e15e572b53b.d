/root/repo/target/debug/deps/hazard_robustness-fe3d6e15e572b53b.d: tests/hazard_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libhazard_robustness-fe3d6e15e572b53b.rmeta: tests/hazard_robustness.rs Cargo.toml

tests/hazard_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
