/root/repo/target/debug/examples/whatif_cdp-d9b4dd5ad192b3bd.d: examples/whatif_cdp.rs

/root/repo/target/debug/examples/whatif_cdp-d9b4dd5ad192b3bd: examples/whatif_cdp.rs

examples/whatif_cdp.rs:
