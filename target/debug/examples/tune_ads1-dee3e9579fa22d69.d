/root/repo/target/debug/examples/tune_ads1-dee3e9579fa22d69.d: examples/tune_ads1.rs Cargo.toml

/root/repo/target/debug/examples/libtune_ads1-dee3e9579fa22d69.rmeta: examples/tune_ads1.rs Cargo.toml

examples/tune_ads1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
