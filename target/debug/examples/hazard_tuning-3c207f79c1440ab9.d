/root/repo/target/debug/examples/hazard_tuning-3c207f79c1440ab9.d: examples/hazard_tuning.rs

/root/repo/target/debug/examples/hazard_tuning-3c207f79c1440ab9: examples/hazard_tuning.rs

examples/hazard_tuning.rs:
