/root/repo/target/debug/examples/characterize_fleet-7e1bebbf5b04e9ed.d: examples/characterize_fleet.rs Cargo.toml

/root/repo/target/debug/examples/libcharacterize_fleet-7e1bebbf5b04e9ed.rmeta: examples/characterize_fleet.rs Cargo.toml

examples/characterize_fleet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
