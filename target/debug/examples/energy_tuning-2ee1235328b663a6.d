/root/repo/target/debug/examples/energy_tuning-2ee1235328b663a6.d: examples/energy_tuning.rs

/root/repo/target/debug/examples/energy_tuning-2ee1235328b663a6: examples/energy_tuning.rs

examples/energy_tuning.rs:
