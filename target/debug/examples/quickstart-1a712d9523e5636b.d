/root/repo/target/debug/examples/quickstart-1a712d9523e5636b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1a712d9523e5636b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
