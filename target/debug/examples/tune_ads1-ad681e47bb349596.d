/root/repo/target/debug/examples/tune_ads1-ad681e47bb349596.d: examples/tune_ads1.rs

/root/repo/target/debug/examples/tune_ads1-ad681e47bb349596: examples/tune_ads1.rs

examples/tune_ads1.rs:
