/root/repo/target/debug/examples/colocation-74d05d8b442e157a.d: examples/colocation.rs Cargo.toml

/root/repo/target/debug/examples/libcolocation-74d05d8b442e157a.rmeta: examples/colocation.rs Cargo.toml

examples/colocation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
