/root/repo/target/debug/examples/energy_tuning-1c0ad6135f693dd2.d: examples/energy_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libenergy_tuning-1c0ad6135f693dd2.rmeta: examples/energy_tuning.rs Cargo.toml

examples/energy_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
