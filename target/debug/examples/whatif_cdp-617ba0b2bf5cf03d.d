/root/repo/target/debug/examples/whatif_cdp-617ba0b2bf5cf03d.d: examples/whatif_cdp.rs Cargo.toml

/root/repo/target/debug/examples/libwhatif_cdp-617ba0b2bf5cf03d.rmeta: examples/whatif_cdp.rs Cargo.toml

examples/whatif_cdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
