/root/repo/target/debug/examples/colocation-f1ce052d57cba08a.d: examples/colocation.rs

/root/repo/target/debug/examples/colocation-f1ce052d57cba08a: examples/colocation.rs

examples/colocation.rs:
