/root/repo/target/debug/examples/hazard_tuning-4ef1ad454261d7f7.d: examples/hazard_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libhazard_tuning-4ef1ad454261d7f7.rmeta: examples/hazard_tuning.rs Cargo.toml

examples/hazard_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
