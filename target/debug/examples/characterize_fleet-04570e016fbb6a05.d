/root/repo/target/debug/examples/characterize_fleet-04570e016fbb6a05.d: examples/characterize_fleet.rs

/root/repo/target/debug/examples/characterize_fleet-04570e016fbb6a05: examples/characterize_fleet.rs

examples/characterize_fleet.rs:
