/root/repo/target/debug/examples/quickstart-5be9dd0e9c3408ec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5be9dd0e9c3408ec: examples/quickstart.rs

examples/quickstart.rs:
