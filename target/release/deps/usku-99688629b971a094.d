/root/repo/target/release/deps/usku-99688629b971a094.d: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs

/root/repo/target/release/deps/libusku-99688629b971a094.rlib: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs

/root/repo/target/release/deps/libusku-99688629b971a094.rmeta: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs

crates/core/src/lib.rs:
crates/core/src/abtest.rs:
crates/core/src/error.rs:
crates/core/src/generator.rs:
crates/core/src/input.rs:
crates/core/src/map.rs:
crates/core/src/metric.rs:
crates/core/src/objective.rs:
crates/core/src/search.rs:
crates/core/src/usku.rs:
