/root/repo/target/release/deps/softsku_knobs-478222f3e0643432.d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/release/deps/libsoftsku_knobs-478222f3e0643432.rlib: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/release/deps/libsoftsku_knobs-478222f3e0643432.rmeta: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

crates/knobs/src/lib.rs:
crates/knobs/src/error.rs:
crates/knobs/src/knob.rs:
crates/knobs/src/space.rs:
