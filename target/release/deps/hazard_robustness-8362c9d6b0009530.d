/root/repo/target/release/deps/hazard_robustness-8362c9d6b0009530.d: tests/hazard_robustness.rs

/root/repo/target/release/deps/hazard_robustness-8362c9d6b0009530: tests/hazard_robustness.rs

tests/hazard_robustness.rs:
