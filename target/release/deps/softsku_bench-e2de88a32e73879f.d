/root/repo/target/release/deps/softsku_bench-e2de88a32e73879f.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

/root/repo/target/release/deps/libsoftsku_bench-e2de88a32e73879f.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

/root/repo/target/release/deps/libsoftsku_bench-e2de88a32e73879f.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/characterization.rs:
crates/bench/src/common.rs:
crates/bench/src/knobsweeps.rs:
