/root/repo/target/release/deps/proptests-f0632c3fb4ddbf81.d: tests/proptests.rs

/root/repo/target/release/deps/proptests-f0632c3fb4ddbf81: tests/proptests.rs

tests/proptests.rs:
