/root/repo/target/release/deps/usku-796e208482cf378b.d: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs

/root/repo/target/release/deps/usku-796e208482cf378b: crates/core/src/lib.rs crates/core/src/abtest.rs crates/core/src/error.rs crates/core/src/generator.rs crates/core/src/input.rs crates/core/src/map.rs crates/core/src/metric.rs crates/core/src/objective.rs crates/core/src/search.rs crates/core/src/usku.rs

crates/core/src/lib.rs:
crates/core/src/abtest.rs:
crates/core/src/error.rs:
crates/core/src/generator.rs:
crates/core/src/input.rs:
crates/core/src/map.rs:
crates/core/src/metric.rs:
crates/core/src/objective.rs:
crates/core/src/search.rs:
crates/core/src/usku.rs:
