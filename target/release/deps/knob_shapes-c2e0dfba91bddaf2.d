/root/repo/target/release/deps/knob_shapes-c2e0dfba91bddaf2.d: tests/knob_shapes.rs

/root/repo/target/release/deps/knob_shapes-c2e0dfba91bddaf2: tests/knob_shapes.rs

tests/knob_shapes.rs:
