/root/repo/target/release/deps/proptest-085862ebf3412882.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/release/deps/libproptest-085862ebf3412882.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/release/deps/libproptest-085862ebf3412882.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/prelude.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/prelude.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
