/root/repo/target/release/deps/softsku_cluster-ba19692fd66d9651.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/release/deps/softsku_cluster-ba19692fd66d9651: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
