/root/repo/target/release/deps/softsku-5115d96fcaa35629.d: src/lib.rs

/root/repo/target/release/deps/libsoftsku-5115d96fcaa35629.rlib: src/lib.rs

/root/repo/target/release/deps/libsoftsku-5115d96fcaa35629.rmeta: src/lib.rs

src/lib.rs:
