/root/repo/target/release/deps/softsku_workloads-9aeaa9f94fbc37be.d: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs

/root/repo/target/release/deps/softsku_workloads-9aeaa9f94fbc37be: crates/workloads/src/lib.rs crates/workloads/src/calib.rs crates/workloads/src/comparisons.rs crates/workloads/src/error.rs crates/workloads/src/loadgen.rs crates/workloads/src/microservices.rs crates/workloads/src/profile.rs crates/workloads/src/queuesim.rs crates/workloads/src/request.rs crates/workloads/src/spec2006.rs

crates/workloads/src/lib.rs:
crates/workloads/src/calib.rs:
crates/workloads/src/comparisons.rs:
crates/workloads/src/error.rs:
crates/workloads/src/loadgen.rs:
crates/workloads/src/microservices.rs:
crates/workloads/src/profile.rs:
crates/workloads/src/queuesim.rs:
crates/workloads/src/request.rs:
crates/workloads/src/spec2006.rs:
