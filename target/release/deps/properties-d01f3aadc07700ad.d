/root/repo/target/release/deps/properties-d01f3aadc07700ad.d: crates/knobs/tests/properties.rs

/root/repo/target/release/deps/properties-d01f3aadc07700ad: crates/knobs/tests/properties.rs

crates/knobs/tests/properties.rs:
