/root/repo/target/release/deps/softsku-dfdd233524f13a5c.d: src/lib.rs

/root/repo/target/release/deps/libsoftsku-dfdd233524f13a5c.rlib: src/lib.rs

/root/repo/target/release/deps/libsoftsku-dfdd233524f13a5c.rmeta: src/lib.rs

src/lib.rs:
