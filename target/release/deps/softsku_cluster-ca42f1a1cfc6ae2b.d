/root/repo/target/release/deps/softsku_cluster-ca42f1a1cfc6ae2b.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/release/deps/libsoftsku_cluster-ca42f1a1cfc6ae2b.rlib: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/release/deps/libsoftsku_cluster-ca42f1a1cfc6ae2b.rmeta: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
