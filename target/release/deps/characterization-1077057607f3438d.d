/root/repo/target/release/deps/characterization-1077057607f3438d.d: tests/characterization.rs

/root/repo/target/release/deps/characterization-1077057607f3438d: tests/characterization.rs

tests/characterization.rs:
