/root/repo/target/release/deps/usku-b178a083dc0011fb.d: crates/core/src/bin/usku.rs

/root/repo/target/release/deps/usku-b178a083dc0011fb: crates/core/src/bin/usku.rs

crates/core/src/bin/usku.rs:
