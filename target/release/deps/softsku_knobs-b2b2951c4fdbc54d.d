/root/repo/target/release/deps/softsku_knobs-b2b2951c4fdbc54d.d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/release/deps/softsku_knobs-b2b2951c4fdbc54d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

crates/knobs/src/lib.rs:
crates/knobs/src/error.rs:
crates/knobs/src/knob.rs:
crates/knobs/src/space.rs:
