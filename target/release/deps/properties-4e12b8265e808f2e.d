/root/repo/target/release/deps/properties-4e12b8265e808f2e.d: crates/telemetry/tests/properties.rs

/root/repo/target/release/deps/properties-4e12b8265e808f2e: crates/telemetry/tests/properties.rs

crates/telemetry/tests/properties.rs:
