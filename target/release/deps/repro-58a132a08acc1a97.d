/root/repo/target/release/deps/repro-58a132a08acc1a97.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-58a132a08acc1a97: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
