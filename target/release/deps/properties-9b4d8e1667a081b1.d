/root/repo/target/release/deps/properties-9b4d8e1667a081b1.d: crates/core/tests/properties.rs

/root/repo/target/release/deps/properties-9b4d8e1667a081b1: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
