/root/repo/target/release/deps/rand-69f7a40c7849c4d8.d: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-69f7a40c7849c4d8.rlib: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

/root/repo/target/release/deps/librand-69f7a40c7849c4d8.rmeta: vendor/rand/src/lib.rs vendor/rand/src/distributions.rs vendor/rand/src/rngs.rs

vendor/rand/src/lib.rs:
vendor/rand/src/distributions.rs:
vendor/rand/src/rngs.rs:
