/root/repo/target/release/deps/usku_end_to_end-10516af0dd32d667.d: tests/usku_end_to_end.rs

/root/repo/target/release/deps/usku_end_to_end-10516af0dd32d667: tests/usku_end_to_end.rs

tests/usku_end_to_end.rs:
