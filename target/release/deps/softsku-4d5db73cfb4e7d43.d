/root/repo/target/release/deps/softsku-4d5db73cfb4e7d43.d: src/lib.rs

/root/repo/target/release/deps/softsku-4d5db73cfb4e7d43: src/lib.rs

src/lib.rs:
