/root/repo/target/release/deps/usku-9c924627837f7ed9.d: crates/core/src/bin/usku.rs

/root/repo/target/release/deps/usku-9c924627837f7ed9: crates/core/src/bin/usku.rs

crates/core/src/bin/usku.rs:
