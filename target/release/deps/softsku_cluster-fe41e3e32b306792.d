/root/repo/target/release/deps/softsku_cluster-fe41e3e32b306792.d: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/release/deps/libsoftsku_cluster-fe41e3e32b306792.rlib: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

/root/repo/target/release/deps/libsoftsku_cluster-fe41e3e32b306792.rmeta: crates/cluster/src/lib.rs crates/cluster/src/colocation.rs crates/cluster/src/env.rs crates/cluster/src/error.rs crates/cluster/src/fleet.rs crates/cluster/src/hazards.rs crates/cluster/src/server.rs

crates/cluster/src/lib.rs:
crates/cluster/src/colocation.rs:
crates/cluster/src/env.rs:
crates/cluster/src/error.rs:
crates/cluster/src/fleet.rs:
crates/cluster/src/hazards.rs:
crates/cluster/src/server.rs:
