/root/repo/target/release/deps/knobcheck-dc8758e694d86f8f.d: crates/bench/src/bin/knobcheck.rs

/root/repo/target/release/deps/knobcheck-dc8758e694d86f8f: crates/bench/src/bin/knobcheck.rs

crates/bench/src/bin/knobcheck.rs:
