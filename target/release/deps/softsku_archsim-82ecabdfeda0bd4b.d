/root/repo/target/release/deps/softsku_archsim-82ecabdfeda0bd4b.d: crates/archsim/src/lib.rs crates/archsim/src/branch.rs crates/archsim/src/cache.rs crates/archsim/src/counters.rs crates/archsim/src/engine.rs crates/archsim/src/error.rs crates/archsim/src/memory.rs crates/archsim/src/pagemap.rs crates/archsim/src/platform.rs crates/archsim/src/prefetch.rs crates/archsim/src/ranklist.rs crates/archsim/src/reuse.rs crates/archsim/src/stream.rs crates/archsim/src/tlb.rs crates/archsim/src/tmam.rs crates/archsim/src/trace.rs

/root/repo/target/release/deps/softsku_archsim-82ecabdfeda0bd4b: crates/archsim/src/lib.rs crates/archsim/src/branch.rs crates/archsim/src/cache.rs crates/archsim/src/counters.rs crates/archsim/src/engine.rs crates/archsim/src/error.rs crates/archsim/src/memory.rs crates/archsim/src/pagemap.rs crates/archsim/src/platform.rs crates/archsim/src/prefetch.rs crates/archsim/src/ranklist.rs crates/archsim/src/reuse.rs crates/archsim/src/stream.rs crates/archsim/src/tlb.rs crates/archsim/src/tmam.rs crates/archsim/src/trace.rs

crates/archsim/src/lib.rs:
crates/archsim/src/branch.rs:
crates/archsim/src/cache.rs:
crates/archsim/src/counters.rs:
crates/archsim/src/engine.rs:
crates/archsim/src/error.rs:
crates/archsim/src/memory.rs:
crates/archsim/src/pagemap.rs:
crates/archsim/src/platform.rs:
crates/archsim/src/prefetch.rs:
crates/archsim/src/ranklist.rs:
crates/archsim/src/reuse.rs:
crates/archsim/src/stream.rs:
crates/archsim/src/tlb.rs:
crates/archsim/src/tmam.rs:
crates/archsim/src/trace.rs:
