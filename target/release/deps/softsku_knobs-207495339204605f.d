/root/repo/target/release/deps/softsku_knobs-207495339204605f.d: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/release/deps/libsoftsku_knobs-207495339204605f.rlib: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

/root/repo/target/release/deps/libsoftsku_knobs-207495339204605f.rmeta: crates/knobs/src/lib.rs crates/knobs/src/error.rs crates/knobs/src/knob.rs crates/knobs/src/space.rs

crates/knobs/src/lib.rs:
crates/knobs/src/error.rs:
crates/knobs/src/knob.rs:
crates/knobs/src/space.rs:
