/root/repo/target/release/deps/calibrate-bf8256afeb67afeb.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-bf8256afeb67afeb: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
