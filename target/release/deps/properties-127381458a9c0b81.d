/root/repo/target/release/deps/properties-127381458a9c0b81.d: crates/workloads/tests/properties.rs

/root/repo/target/release/deps/properties-127381458a9c0b81: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
