/root/repo/target/release/deps/softsku_bench-de41a068cc6e5d7b.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

/root/repo/target/release/deps/softsku_bench-de41a068cc6e5d7b: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/characterization.rs crates/bench/src/common.rs crates/bench/src/knobsweeps.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/characterization.rs:
crates/bench/src/common.rs:
crates/bench/src/knobsweeps.rs:
