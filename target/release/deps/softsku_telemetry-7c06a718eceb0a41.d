/root/repo/target/release/deps/softsku_telemetry-7c06a718eceb0a41.d: crates/telemetry/src/lib.rs crates/telemetry/src/emon.rs crates/telemetry/src/error.rs crates/telemetry/src/ods.rs crates/telemetry/src/stats/mod.rs crates/telemetry/src/stats/autocorr.rs crates/telemetry/src/stats/bootstrap.rs crates/telemetry/src/stats/mad.rs crates/telemetry/src/stats/student_t.rs crates/telemetry/src/stats/summary.rs crates/telemetry/src/stats/welch.rs

/root/repo/target/release/deps/softsku_telemetry-7c06a718eceb0a41: crates/telemetry/src/lib.rs crates/telemetry/src/emon.rs crates/telemetry/src/error.rs crates/telemetry/src/ods.rs crates/telemetry/src/stats/mod.rs crates/telemetry/src/stats/autocorr.rs crates/telemetry/src/stats/bootstrap.rs crates/telemetry/src/stats/mad.rs crates/telemetry/src/stats/student_t.rs crates/telemetry/src/stats/summary.rs crates/telemetry/src/stats/welch.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/emon.rs:
crates/telemetry/src/error.rs:
crates/telemetry/src/ods.rs:
crates/telemetry/src/stats/mod.rs:
crates/telemetry/src/stats/autocorr.rs:
crates/telemetry/src/stats/bootstrap.rs:
crates/telemetry/src/stats/mad.rs:
crates/telemetry/src/stats/student_t.rs:
crates/telemetry/src/stats/summary.rs:
crates/telemetry/src/stats/welch.rs:
