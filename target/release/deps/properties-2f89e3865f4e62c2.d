/root/repo/target/release/deps/properties-2f89e3865f4e62c2.d: crates/archsim/tests/properties.rs

/root/repo/target/release/deps/properties-2f89e3865f4e62c2: crates/archsim/tests/properties.rs

crates/archsim/tests/properties.rs:
