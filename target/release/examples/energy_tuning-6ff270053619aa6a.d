/root/repo/target/release/examples/energy_tuning-6ff270053619aa6a.d: examples/energy_tuning.rs

/root/repo/target/release/examples/energy_tuning-6ff270053619aa6a: examples/energy_tuning.rs

examples/energy_tuning.rs:
