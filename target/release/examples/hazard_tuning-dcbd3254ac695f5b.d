/root/repo/target/release/examples/hazard_tuning-dcbd3254ac695f5b.d: examples/hazard_tuning.rs

/root/repo/target/release/examples/hazard_tuning-dcbd3254ac695f5b: examples/hazard_tuning.rs

examples/hazard_tuning.rs:
