/root/repo/target/release/examples/tune_ads1-c458da3660b0bee2.d: examples/tune_ads1.rs

/root/repo/target/release/examples/tune_ads1-c458da3660b0bee2: examples/tune_ads1.rs

examples/tune_ads1.rs:
