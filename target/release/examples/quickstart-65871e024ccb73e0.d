/root/repo/target/release/examples/quickstart-65871e024ccb73e0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-65871e024ccb73e0: examples/quickstart.rs

examples/quickstart.rs:
