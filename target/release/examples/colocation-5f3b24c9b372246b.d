/root/repo/target/release/examples/colocation-5f3b24c9b372246b.d: examples/colocation.rs

/root/repo/target/release/examples/colocation-5f3b24c9b372246b: examples/colocation.rs

examples/colocation.rs:
