/root/repo/target/release/examples/characterize_fleet-aba64a0f42afb03f.d: examples/characterize_fleet.rs

/root/repo/target/release/examples/characterize_fleet-aba64a0f42afb03f: examples/characterize_fleet.rs

examples/characterize_fleet.rs:
