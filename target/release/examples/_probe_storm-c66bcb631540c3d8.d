/root/repo/target/release/examples/_probe_storm-c66bcb631540c3d8.d: examples/_probe_storm.rs

/root/repo/target/release/examples/_probe_storm-c66bcb631540c3d8: examples/_probe_storm.rs

examples/_probe_storm.rs:
