/root/repo/target/release/examples/whatif_cdp-ad43e3f32acaec7f.d: examples/whatif_cdp.rs

/root/repo/target/release/examples/whatif_cdp-ad43e3f32acaec7f: examples/whatif_cdp.rs

examples/whatif_cdp.rs:
