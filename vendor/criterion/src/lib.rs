//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just the API surface this workspace's benches use: timing a
//! closure a modest number of iterations and printing ns/iter. There is no
//! statistical analysis, warm-up policy, or HTML report — the goal is that
//! `cargo bench` compiles and produces order-of-magnitude numbers without
//! network access to the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    /// Accumulated (elapsed, iterations) from the measurement pass.
    measured: Option<(Duration, u64)>,
    target_time: Duration,
}

impl Bencher {
    fn new(target_time: Duration) -> Self {
        Bencher {
            measured: None,
            target_time,
        }
    }

    /// Runs `routine` repeatedly and records mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration pass: find an iteration count that fills a slice of
        // the target time without running unbounded.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (self.target_time.as_nanos() / probe.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }

    fn report(&self, name: &str) {
        match self.measured {
            Some((elapsed, iters)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench: {name:<40} {ns:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench: {name:<40} (no measurement)"),
        }
    }
}

/// Top-level benchmark driver, constructed by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size(n);
        self
    }

    /// Sets the per-benchmark measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement_time(t);
        self
    }

    /// Runs one benchmark under the group's name prefix.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut b = Bencher::new(self.parent.measurement_time);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main()` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_chains() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5))
            .bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)))
            .bench_function("mul", |b| b.iter(|| black_box(3u64) * black_box(4)));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .bench_function("noop", |b| b.iter(|| black_box(0u8)));
        g.finish();
    }
}
