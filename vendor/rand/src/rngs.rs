//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
///
/// Mirrors `rand::rngs::SmallRng`'s role: cheap simulation randomness with
/// full determinism from a 64-bit seed. The state is expanded from the seed
/// with SplitMix64, the reference seeding procedure for the xoshiro family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_a_degenerate_state() {
        let mut rng = SmallRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
