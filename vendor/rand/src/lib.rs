//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so this crate re-implements
//! exactly the API subset the workspace uses: [`rngs::SmallRng`] (seeded via
//! [`SeedableRng::seed_from_u64`]) and the [`Rng`] extension trait with
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — statistically strong for simulation purposes and
//! deterministic across platforms, which is all the reproduction needs.
//!
//! It is **not** a cryptographic RNG and makes no attempt to match upstream
//! `rand`'s value streams; the workspace only relies on determinism within
//! one toolchain, not on specific sequences.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, Standard};

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling a value of type `T` from a range-like specification.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit: $t = Standard.sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing extension methods, mirroring `rand 0.8`'s `Rng`.
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_are_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..=0.75).contains(&z));
            let w = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
