//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::strategy::{Just, Strategy, Union};
pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    ProptestConfig,
};

/// Namespace alias so `prop::collection::vec(...)` etc. work under glob
/// imports, as in upstream proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::string;
}
