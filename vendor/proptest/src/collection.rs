//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from a band.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy: each element from `element`, length from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.min..=self.size.max);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_stay_in_band() {
        let mut rng = SmallRng::seed_from_u64(1);
        let strat = vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
