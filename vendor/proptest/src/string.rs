//! String generation from a small regex subset.
//!
//! Supported syntax — the subset the workspace's tests use:
//!
//! * literal characters
//! * escapes: `\t`, `\n`, `\r`, `\\`, and `\PC` ("not a control character":
//!   drawn from printable ASCII plus a few multibyte code points so UTF-8
//!   handling gets exercised)
//! * character classes `[...]` with literals, ranges (`a-z`), and escapes
//! * counted repetition `{m,n}` / `{n}` and the quantifiers `*`, `+`, `?`
//!   (bounded at 8 repeats) applied to the preceding atom

use rand::rngs::SmallRng;
use rand::Rng;

/// Characters `\PC` draws from: printable ASCII plus multibyte samples.
fn printable_pool(rng: &mut SmallRng) -> char {
    const EXTRA: [char; 6] = ['é', 'ß', 'λ', '中', '•', '🦀'];
    if rng.gen_range(0u32..16) == 0 {
        EXTRA[rng.gen_range(0..EXTRA.len())]
    } else {
        char::from(rng.gen_range(0x20u8..0x7F))
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive char ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    Printable,
}

fn class_size(ranges: &[(char, char)]) -> u32 {
    ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum()
}

fn draw(atom: &Atom, rng: &mut SmallRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Printable => printable_pool(rng),
        Atom::Class(ranges) => {
            let mut idx = rng.gen_range(0..class_size(ranges));
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if idx < span {
                    return char::from_u32(lo as u32 + idx).expect("range stays in scalar values");
                }
                idx -= span;
            }
            unreachable!("index within total class size")
        }
    }
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    match chars.next() {
        Some('t') => Atom::Lit('\t'),
        Some('n') => Atom::Lit('\n'),
        Some('r') => Atom::Lit('\r'),
        Some('P') => {
            // Only `\PC` (non-control) is supported.
            let category = chars.next();
            assert_eq!(
                category,
                Some('C'),
                "only \\PC is supported, got \\P{category:?}"
            );
            Atom::Printable
        }
        Some(c) => Atom::Lit(c),
        None => panic!("dangling escape in pattern"),
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let c = chars.next().expect("unterminated character class");
        if c == ']' {
            break;
        }
        let lo = if c == '\\' {
            match parse_escape(chars) {
                Atom::Lit(l) => l,
                _ => panic!("class escapes must be single characters"),
            }
        } else {
            c
        };
        // A `-` forms a range unless it ends the class.
        if chars.peek() == Some(&'-') {
            chars.next();
            match chars.peek() {
                Some(']') | None => {
                    ranges.push((lo, lo));
                    ranges.push(('-', '-'));
                }
                Some(_) => {
                    let hi = chars.next().expect("peeked");
                    assert!(lo <= hi, "inverted class range {lo}-{hi}");
                    ranges.push((lo, hi));
                }
            }
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(!ranges.is_empty(), "empty character class");
    Atom::Class(ranges)
}

fn parse_count(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
    let mut min = String::new();
    let mut max = String::new();
    let mut in_max = false;
    loop {
        match chars.next().expect("unterminated {m,n} count") {
            '}' => break,
            ',' => in_max = true,
            d if d.is_ascii_digit() => {
                if in_max {
                    max.push(d);
                } else {
                    min.push(d);
                }
            }
            other => panic!("unexpected {other:?} in {{m,n}} count"),
        }
    }
    let lo: u32 = min.parse().expect("count lower bound");
    let hi: u32 = if in_max {
        max.parse().expect("count upper bound")
    } else {
        lo
    };
    assert!(lo <= hi, "inverted count {{{lo},{hi}}}");
    (lo, hi)
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut SmallRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => parse_escape(&mut chars),
            '[' => parse_class(&mut chars),
            '{' | '}' | '*' | '+' | '?' => panic!("quantifier {c:?} without a preceding atom"),
            lit => Atom::Lit(lit),
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                parse_count(&mut chars)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            out.push(draw(&atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_and_count_patterns() {
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..200 {
            let s = generate_matching("[a-z ]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));

            let s = generate_matching("[ \\t]{0,6}", &mut rng);
            assert!(s.chars().all(|c| c == ' ' || c == '\t'));

            let s = generate_matching("[a-z_]{0,12}", &mut rng);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));

            let s = generate_matching("[ =a-z0-9_,#]{0,24}", &mut rng);
            assert!(s
                .chars()
                .all(|c| " =_,#".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn printable_pattern_emits_no_controls() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..50 {
            let s = generate_matching("\\PC{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = SmallRng::seed_from_u64(29);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        let s = generate_matching("a{3}b?", &mut rng);
        assert!(s.starts_with("aaa") && s.len() <= 4);
    }
}
