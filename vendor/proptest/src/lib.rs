//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with ranges / tuples /
//! [`strategy::Just`] / [`collection::vec`] / [`option::of`] /
//! [`prop_oneof!`] / [`any`], and string strategies from a small regex
//! subset. Cases are generated from a seed derived from the test's module
//! path and name, so failures are reproducible run-to-run; there is **no
//! shrinking** — on failure the offending inputs are printed verbatim.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test path
/// so every run (and every machine) explores the same cases.
pub fn rng_for(test_path: &str) -> SmallRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Strategy producing "any" value of a primitive type.
pub fn any<T>() -> strategy::Any<T> {
    strategy::Any(core::marker::PhantomData)
}

/// The test-harness macro: declares `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                let __desc = {
                    let mut d = String::new();
                    $(
                        d.push_str(stringify!($arg));
                        d.push_str(" = ");
                        d.push_str(&format!("{:?}, ", &$arg));
                    )+
                    d
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __desc
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assertion inside a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}
