//! `Option` strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Strategy for `Option<T>` (about 1 in 4 cases is `None`).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Wraps a strategy to also produce `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut SmallRng) -> Option<S::Value> {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}
