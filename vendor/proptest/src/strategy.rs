//! The [`Strategy`] trait and primitive strategies.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value from the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value;
}

/// Boxes a strategy for storage in heterogeneous collections.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Marker strategy for "any value of `T`" (see [`crate::any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub core::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].gen_value(rng)
    }
}

impl<'a> Strategy for &'a str {
    type Value = String;
    fn gen_value(&self, rng: &mut SmallRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_just() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = (0u32..7).gen_value(&mut rng);
            assert!(x < 7);
            let (a, b) = (Just(5i32), 0.0f64..1.0).gen_value(&mut rng);
            assert_eq!(a, 5);
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = SmallRng::seed_from_u64(5);
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
