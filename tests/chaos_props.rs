//! Property tests on the chaos-hardened rollout layer (ISSUE acceptance):
//! the stepwise canary state machine never promotes again once a guardrail
//! rolled it back — under arbitrary sample streams — and a coordinator
//! whose canary budget is exhausted is terminal (no further exposure
//! growth) under arbitrary chaos seeds.

use proptest::prelude::*;
use softsku::cluster::{
    ChaosConfig, FailureDomain, FleetTopology, StagedFleet, StagedFleetConfig, StagedSample,
};
use softsku::rollout::{
    CoordinatorConfig, FleetCoordinator, RolloutConfig, RolloutState, ServicePhase, ServicePlan,
    StagedRollout, StepDecision,
};
use softsku::telemetry::streams::IdentitySeed;
use softsku::workloads::{Microservice, PlatformKind};

/// A synthetic fleet sample: per-replica baseline QPS plus the candidate
/// group's relative gain (or an unstaged tick when `gain` is `None`).
fn sample(tick: usize, baseline_qps: f64, gain: Option<f64>, staged: usize) -> StagedSample {
    StagedSample {
        time_s: 600.0 * (tick + 1) as f64,
        load: 0.5,
        baseline_replicas: 20 - staged,
        candidate_replicas: staged,
        baseline_qps,
        candidate_qps: gain.map(|g| baseline_qps * (1.0 + g)),
        code_pushes_total: tick as u64,
    }
}

/// A tiny one-service plan for coordinator properties.
fn tiny_plan(seed: u64) -> ServicePlan {
    let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
    let baseline = profile.production_config.clone();
    let candidate = baseline.clone();
    let mut staged = StagedFleetConfig::fast_test();
    staged.replicas = 10;
    staged.window_insns = 2_000;
    staged.pushes_per_hour = 0.0;
    let fleet_seed = IdentitySeed::new(seed).field("prop-web").finish();
    let fleet = StagedFleet::new(profile, baseline, candidate.clone(), staged, fleet_seed).unwrap();
    ServicePlan {
        name: "web".to_string(),
        fleet,
        candidate,
        needs_reboot: false,
        domain: FailureDomain::new("skl18", "r0"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever sample stream the fleet delivers, once a stage rolls the
    /// candidate back the state machine stays rolled back: `promote()`
    /// refuses forever and further steps are inert.
    #[test]
    fn rollback_is_absorbing(
        gains in prop::collection::vec(
            prop::option::of(-0.5f64..0.5), 1..120),
        baseline_qps in 50.0f64..5_000.0,
    ) {
        let mut config = RolloutConfig::fast_test();
        config.ticks_per_stage = 8;
        config.mad_window = 6;
        config.max_strikes = 3;
        let mut rollout = StagedRollout::new(config);
        prop_assert!(rollout.begin().is_some());

        let mut tick = 0usize;
        let mut rolled_back = false;
        for gain in gains {
            match rollout.step(&sample(tick, baseline_qps, gain, 5), 5).unwrap() {
                StepDecision::StageClean { .. } => { rollout.promote(); }
                StepDecision::RolledBack { .. } => { rolled_back = true; break; }
                StepDecision::Observing => {}
            }
            tick += 1;
            if rollout.state() == RolloutState::Deployed {
                break;
            }
        }
        if !rolled_back && rollout.state() != RolloutState::Deployed {
            // Force a rollback with a catastrophic tail so the property is
            // never vacuous: three consecutive hard-floor breaches.
            loop {
                match rollout.step(&sample(tick, baseline_qps, Some(-0.9), 5), 5).unwrap() {
                    StepDecision::RolledBack { .. } => { rolled_back = true; break; }
                    StepDecision::StageClean { .. } => { rollout.promote(); }
                    StepDecision::Observing => {}
                }
                tick += 1;
                if rollout.state() == RolloutState::Deployed {
                    break;
                }
            }
        }
        if rolled_back {
            let stage = match rollout.state() {
                RolloutState::RolledBack { stage } => stage,
                other => panic!("expected rollback, got {other:?}"),
            };
            for extra in 0..4 {
                prop_assert_eq!(rollout.promote(), None, "promotion after rollback");
                let decision = rollout
                    .step(&sample(tick + extra, baseline_qps, Some(0.3), 5), 5)
                    .unwrap();
                prop_assert!(matches!(decision, StepDecision::Observing));
                prop_assert_eq!(rollout.state(), RolloutState::RolledBack { stage });
            }
            prop_assert_eq!(rollout.current_fraction(), None);
        }
    }

    /// Whatever the chaos seed, a coordinator whose per-service canary
    /// budget runs dry before the stage target is terminally `Exhausted`,
    /// with exposure frozen at no more than the spent budget.
    #[test]
    fn exhausted_budget_is_terminal_under_chaos(
        seed in 0u64..1_000,
        total_exposures in 1usize..4,
    ) {
        let mut cfg = CoordinatorConfig::fast_test();
        cfg.rollout.ticks_per_stage = 6;
        cfg.rollout.mad_window = 4;
        cfg.budget.growth_per_tick = 2;
        cfg.budget.total_exposures = total_exposures;
        cfg.max_ticks = 96;
        let mut chaos = ChaosConfig::campaign();
        // Keep the pool lit so degradation cannot mask exhaustion.
        chaos.blackout_prob = 0.0;
        let report = FleetCoordinator::new(cfg)
            .run(&FleetTopology::paper_pools(), chaos, vec![tiny_plan(seed)], seed)
            .unwrap();
        let s = &report.services[0];
        // 10 replicas → the 25 % stage already needs 3 exposures, so a
        // budget of at most 3 can never reach full deployment.
        prop_assert_eq!(s.phase, ServicePhase::Exhausted);
        prop_assert!(
            s.candidate_replicas <= total_exposures,
            "exposure {} exceeds budget {}", s.candidate_replicas, total_exposures
        );
        prop_assert!(report.converged());
    }
}
