//! Integration: the knob-response shapes behind Figs. 14–18 hold on the
//! simulated platforms. These are the mechanisms µSKU's search exploits, so
//! they are tested directly against the engine, independent of the A/B
//! statistics.

use softsku::archsim::cache::CdpPartition;
use softsku::archsim::engine::Engine;
use softsku::archsim::engine::ServerConfig;
use softsku::archsim::pagemap::ThpMode;
use softsku::archsim::prefetch::PrefetcherConfig;
use softsku::workloads::{Microservice, PlatformKind};

const WINDOW: u64 = 250_000;

fn mips(service: Microservice, platform: PlatformKind, cfg: &ServerConfig) -> f64 {
    let profile = service.profile(platform).unwrap();
    let engine = Engine::new(cfg.clone(), profile.stream, 42).unwrap();
    engine
        .run_window(WINDOW, profile.peak_utilization)
        .unwrap()
        .mips_total
}

fn production(service: Microservice, platform: PlatformKind) -> ServerConfig {
    service.production_config(platform).unwrap()
}

#[test]
fn fig14a_core_frequency_is_monotone_with_diminishing_returns() {
    let prod = production(Microservice::Web, PlatformKind::Skylake18);
    let mut values = Vec::new();
    for f in [1.6, 1.8, 2.0, 2.2] {
        let mut cfg = prod.clone();
        cfg.core_freq_ghz = f;
        values.push(mips(Microservice::Web, PlatformKind::Skylake18, &cfg));
    }
    assert!(
        values.windows(2).all(|w| w[1] > w[0]),
        "monotone: {values:?}"
    );
    let total_gain = values[3] / values[0] - 1.0;
    assert!(
        (0.08..0.35).contains(&total_gain),
        "1.6→2.2 GHz gain {total_gain:.2}"
    );
    // Diminishing: the first 0.2 GHz buys more than the last.
    let first = values[1] / values[0];
    let last = values[3] / values[2];
    assert!(first > last, "diminishing returns: {first:.3} vs {last:.3}");
}

#[test]
fn fig14b_uncore_frequency_max_is_best_and_ads1_most_sensitive() {
    let mut gains = Vec::new();
    for (svc, plat) in [
        (Microservice::Web, PlatformKind::Skylake18),
        (Microservice::Ads1, PlatformKind::Skylake18),
    ] {
        let prod = production(svc, plat);
        let mut slow = prod.clone();
        slow.uncore_freq_ghz = 1.4;
        let gain = mips(svc, plat, &prod) / mips(svc, plat, &slow) - 1.0;
        assert!(gain > 0.0, "{}: uncore gain {gain:.3}", svc.name());
        gains.push(gain);
    }
    assert!(
        gains[1] > gains[0],
        "Ads1 ({:.3}) must be more uncore-sensitive than Web ({:.3})",
        gains[1],
        gains[0]
    );
}

#[test]
fn fig15_core_scaling_is_near_linear_then_bends() {
    let prod = production(Microservice::Web, PlatformKind::Skylake18);
    let at = |n: u32| {
        let mut cfg = prod.clone();
        cfg.active_cores = n;
        mips(Microservice::Web, PlatformKind::Skylake18, &cfg)
    };
    let two = at(2);
    let eight = at(8) / two;
    let eighteen = at(18) / two;
    // Near-linear to 8 cores (ideal 4.0x): at least 85% of ideal.
    assert!(eight > 3.4, "8-core scaling {eight:.2}x of 2-core");
    // The curve bends: 18 cores deliver clearly less than ideal 9x.
    assert!(eighteen < 8.1, "18-core scaling {eighteen:.2}x");
    assert!(eighteen > eight, "still monotone");
}

#[test]
fn fig16_cdp_interior_optimum_on_skylake_absent_on_broadwell() {
    // Web (Skylake): an interior partition beats CDP-off by a few percent.
    let prod = production(Microservice::Web, PlatformKind::Skylake18);
    let base = mips(Microservice::Web, PlatformKind::Skylake18, &prod);
    let mut best_gain = f64::MIN;
    let mut best_code_ways = 0;
    let mut edge_loses = false;
    for p in CdpPartition::sweep(prod.llc_ways_enabled) {
        let mut cfg = prod.clone();
        cfg.cdp = Some(p);
        let g = mips(Microservice::Web, PlatformKind::Skylake18, &cfg) / base - 1.0;
        if g > best_gain {
            best_gain = g;
            best_code_ways = p.code_ways;
        }
        if p.data_ways == prod.llc_ways_enabled - 1 || p.code_ways == prod.llc_ways_enabled - 1 {
            edge_loses |= g < 0.0;
        }
    }
    assert!(
        (0.02..0.12).contains(&best_gain),
        "Web-Skylake CDP best gain {best_gain:.3} (paper +4.5%)"
    );
    assert!(
        (4..=7).contains(&best_code_ways),
        "optimum near {{6,5}}: code ways {best_code_ways}"
    );
    assert!(edge_loses, "extreme partitions must lose");

    // Web (Broadwell): bandwidth-saturated; CDP buys far less.
    let prod_b = production(Microservice::Web, PlatformKind::Broadwell16);
    let base_b = mips(Microservice::Web, PlatformKind::Broadwell16, &prod_b);
    let mut best_b = f64::MIN;
    for p in CdpPartition::sweep(prod_b.llc_ways_enabled) {
        let mut cfg = prod_b.clone();
        cfg.cdp = Some(p);
        best_b =
            best_b.max(mips(Microservice::Web, PlatformKind::Broadwell16, &cfg) / base_b - 1.0);
    }
    assert!(
        best_b < best_gain * 0.75,
        "Broadwell CDP gain {best_b:.3} must be well below Skylake's {best_gain:.3}"
    );
}

#[test]
fn fig17_prefetchers_help_skylake_hurt_broadwell() {
    // Skylake: all-on (production) beats all-off.
    let prod_s = production(Microservice::Web, PlatformKind::Skylake18);
    let mut off_s = prod_s.clone();
    off_s.prefetchers = PrefetcherConfig::all_off();
    assert!(
        mips(Microservice::Web, PlatformKind::Skylake18, &prod_s)
            > mips(Microservice::Web, PlatformKind::Skylake18, &off_s),
        "Skylake wants prefetchers on"
    );

    // Broadwell: all-off beats the production l2+dcu config by ~3%.
    let prod_b = production(Microservice::Web, PlatformKind::Broadwell16);
    assert_eq!(prod_b.prefetchers, PrefetcherConfig::l2_and_dcu());
    let mut off_b = prod_b.clone();
    off_b.prefetchers = PrefetcherConfig::all_off();
    let gain = mips(Microservice::Web, PlatformKind::Broadwell16, &off_b)
        / mips(Microservice::Web, PlatformKind::Broadwell16, &prod_b)
        - 1.0;
    assert!(
        (0.005..0.10).contains(&gain),
        "Broadwell prefetch-off gain {gain:.3} (paper ~+3%)"
    );
}

#[test]
fn fig18a_thp_always_helps_only_web_skylake() {
    let cases = [
        (Microservice::Web, PlatformKind::Skylake18, true),
        (Microservice::Web, PlatformKind::Broadwell16, false),
        (Microservice::Ads1, PlatformKind::Skylake18, false),
    ];
    for (svc, plat, should_gain) in cases {
        let prod = production(svc, plat);
        let mut always = prod.clone();
        always.thp = ThpMode::AlwaysOn;
        let gain = mips(svc, plat, &always) / mips(svc, plat, &prod) - 1.0;
        if should_gain {
            assert!(gain > 0.01, "{} on {plat}: THP gain {gain:.3}", svc.name());
        } else {
            assert!(
                gain < 0.015,
                "{} on {plat}: THP should be ~neutral, got {gain:.3}",
                svc.name()
            );
        }
    }
}

#[test]
fn fig18b_shp_sweet_spots_at_300_and_400() {
    for (plat, sweet) in [
        (PlatformKind::Skylake18, 300u32),
        (PlatformKind::Broadwell16, 400u32),
    ] {
        let prod = production(Microservice::Web, plat);
        let mut none = prod.clone();
        none.shp_pages = 0;
        let base = mips(Microservice::Web, plat, &none);
        let mut best = (0u32, f64::MIN);
        for shp in (100..=600).step_by(100) {
            let mut cfg = prod.clone();
            cfg.shp_pages = shp;
            let g = mips(Microservice::Web, plat, &cfg) / base - 1.0;
            if g > best.1 {
                best = (shp, g);
            }
        }
        assert_eq!(
            best.0,
            sweet,
            "{plat}: sweet spot at {} ({:+.2}%)",
            best.0,
            best.1 * 100.0
        );
        assert!(best.1 > 0.0);
        // Over-reservation declines past the sweet spot.
        let mut over = prod.clone();
        over.shp_pages = 600;
        let over_gain = mips(Microservice::Web, plat, &over) / base - 1.0;
        assert!(
            over_gain < best.1,
            "{plat}: 600 SHPs must trail the sweet spot"
        );
    }
}

#[test]
fn avx_tax_gives_ads1_its_2ghz_effective_frequency() {
    let prod = production(Microservice::Ads1, PlatformKind::Skylake18);
    let profile = Microservice::Ads1.profile(PlatformKind::Skylake18).unwrap();
    assert_eq!(prod.core_freq_ghz, 2.2);
    assert!((prod.effective_core_freq_ghz(profile.stream.mix.fp) - 2.0).abs() < 1e-9);
}
