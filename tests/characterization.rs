//! Integration: the simulated fleet reproduces the paper's Sec. 2
//! characterization within tolerance (DESIGN.md §5: orderings and shapes are
//! the claims under test; absolute values carry generous bands).

use softsku::archsim::engine::{Engine, WindowReport};
use softsku::workloads::Microservice;

const WINDOW: u64 = 250_000;

fn peak(service: Microservice) -> WindowReport {
    let profile = service.profile(service.default_platform()).unwrap();
    let engine = Engine::new(profile.production_config.clone(), profile.stream, 42).unwrap();
    engine.run_window(WINDOW, profile.peak_utilization).unwrap()
}

/// |measured − target| / target within `tol`.
fn close(measured: f64, target: f64, tol: f64) -> bool {
    if target == 0.0 {
        return measured.abs() < 0.5;
    }
    (measured - target).abs() / target.abs() <= tol
}

#[test]
fn ipc_matches_fig6_within_15_percent() {
    for service in Microservice::ALL {
        let r = peak(service);
        let target = service.targets().ipc;
        assert!(
            close(r.ipc_core, target, 0.15),
            "{}: IPC {:.2} vs target {:.2}",
            service.name(),
            r.ipc_core,
            target
        );
    }
}

#[test]
fn cache_mpki_matches_figs8_and_9() {
    for service in Microservice::ALL {
        let r = peak(service);
        let t = service.targets();
        let c = &r.counters;
        assert!(
            close(c.l1i_code_mpki(), t.code_mpki[0], 0.25),
            "{}: L1i {:.1} vs {:.1}",
            service.name(),
            c.l1i_code_mpki(),
            t.code_mpki[0]
        );
        assert!(
            close(c.l1d_data_mpki(), t.data_mpki[0], 0.25),
            "{}: L1d {:.1} vs {:.1}",
            service.name(),
            c.l1d_data_mpki(),
            t.data_mpki[0]
        );
        assert!(
            close(c.llc_data_mpki(), t.data_mpki[2], 0.35),
            "{}: LLCd {:.2} vs {:.2}",
            service.name(),
            c.llc_data_mpki(),
            t.data_mpki[2]
        );
    }
}

#[test]
fn web_is_the_llc_code_miss_outlier() {
    // Fig. 9's headline: Web has non-negligible LLC code misses; all other
    // services sit well below it.
    let web = peak(Microservice::Web).counters.llc_code_mpki();
    assert!(web > 1.0, "Web LLC code MPKI {web}");
    for service in [Microservice::Feed1, Microservice::Feed2, Microservice::Ads2] {
        let other = peak(service).counters.llc_code_mpki();
        assert!(
            other < web * 0.5,
            "{} LLC code {:.2} should be well below Web's {:.2}",
            service.name(),
            other,
            web
        );
    }
}

#[test]
fn tlb_behaviour_matches_fig11() {
    // Web's ITLB MPKI towers over everyone (JIT code cache); the Cache tiers
    // come second; leaves are negligible.
    let web = peak(Microservice::Web).counters.itlb_mpki();
    let cache1 = peak(Microservice::Cache1).counters.itlb_mpki();
    let feed1 = peak(Microservice::Feed1).counters.itlb_mpki();
    assert!(
        web > cache1 && cache1 > feed1,
        "ITLB: web {web:.1}, cache1 {cache1:.1}, feed1 {feed1:.1}"
    );
    assert!(web > 10.0);
    assert!(feed1 < 1.0);
}

#[test]
fn tmam_orderings_match_fig7() {
    // Front-end bound leaders: Web and the Cache tiers (~37% in the paper).
    // Feed1 is the retiring/backend champion with minimal bad speculation.
    let web = peak(Microservice::Web).tmam;
    let cache1 = peak(Microservice::Cache1).tmam;
    let feed1 = peak(Microservice::Feed1).tmam;
    assert!(web.frontend > 0.30, "Web FE {:.2}", web.frontend);
    assert!(cache1.frontend > 0.28, "Cache1 FE {:.2}", cache1.frontend);
    assert!(feed1.frontend < 0.12, "Feed1 FE {:.2}", feed1.frontend);
    assert!(feed1.retiring > web.retiring, "Feed1 retires more than Web");
    assert!(feed1.bad_speculation < 0.05, "Feed1 barely mispredicts");
    // Retiring stays in the paper's 10–45% band for every service.
    for service in Microservice::ALL {
        let t = peak(service).tmam;
        assert!(
            (0.10..0.50).contains(&t.retiring),
            "{} retiring {:.2}",
            service.name(),
            t.retiring
        );
    }
}

#[test]
fn context_switch_time_matches_fig4_ranges() {
    for service in Microservice::ALL {
        let r = peak(service);
        let t = service.targets();
        let measured = r.context_switch_fraction * 100.0;
        // Within the paper's (low, high) band, stretched slightly.
        assert!(
            measured >= t.cs_time_pct.0 * 0.4 && measured <= t.cs_time_pct.1 * 1.4,
            "{}: cs {measured:.1}% outside [{}, {}]",
            service.name(),
            t.cs_time_pct.0,
            t.cs_time_pct.1
        );
    }
    // Cache tiers dominate.
    let cache = peak(Microservice::Cache1).context_switch_fraction;
    let feed = peak(Microservice::Feed1).context_switch_fraction;
    assert!(cache > 8.0 * feed);
}

#[test]
fn bandwidth_operating_points_match_fig12() {
    for service in Microservice::ALL {
        let r = peak(service);
        let t = service.targets();
        assert!(
            close(r.bandwidth_gbps, t.bw_gbps, 0.35),
            "{}: bw {:.1} vs {:.1}",
            service.name(),
            r.bandwidth_gbps,
            t.bw_gbps
        );
        // No service saturates its platform (they protect QoS).
        assert!(
            r.mem_utilization < 0.9,
            "{}: util {:.2}",
            service.name(),
            r.mem_utilization
        );
    }
    // Ads services operate above the smooth curve (burstiness).
    let ads1 = peak(Microservice::Ads1);
    assert!(
        ads1.mem_latency_ns > 180.0,
        "Ads1 bursty latency {:.0}",
        ads1.mem_latency_ns
    );
}

#[test]
fn fig1_diversity_ranges_hold() {
    // The figure's point: orders-of-magnitude diversity in system traits,
    // meaningful diversity in architectural ones.
    let qps: Vec<f64> = Microservice::ALL
        .iter()
        .map(|s| s.targets().table2.0)
        .collect();
    let ratio =
        qps.iter().cloned().fold(f64::MIN, f64::max) / qps.iter().cloned().fold(f64::MAX, f64::min);
    assert!(ratio >= 1e4, "QPS diversity {ratio:.0}x");

    let ipc: Vec<f64> = Microservice::ALL
        .iter()
        .map(|s| peak(*s).ipc_core)
        .collect();
    let ipc_ratio =
        ipc.iter().cloned().fold(f64::MIN, f64::max) / ipc.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (2.0..6.0).contains(&ipc_ratio),
        "IPC diversity {ipc_ratio:.1}x"
    );
}
