//! Integration: the self-healing A/B pipeline survives injected production
//! hazards without changing its conclusions. For each service, a hazard-laden
//! sweep must select the same per-knob winners as the hazard-free sweep
//! (tests near the significance threshold may degrade to inconclusive, never
//! flip), must stay within the 2 × `max_samples` disruption budget per knob
//! test, and must never panic.

use softsku::cluster::HazardConfig;
use softsku::usku::{InputFile, Usku, UskuConfig, UskuReport, Verdict};

fn run(input_text: &str, hazards: HazardConfig) -> UskuReport {
    let input = InputFile::parse(input_text).unwrap();
    let mut cfg = UskuConfig::fast_test();
    cfg.validate_days = 0.0;
    cfg.env.hazards = hazards;
    Usku::with_config(input, cfg).run().unwrap()
}

/// Hazard-free and hazard-laden sweeps of the same service must agree on
/// every clear winner; budgets and bookkeeping must hold throughout.
fn assert_hazards_do_not_change_winners(input_text: &str) {
    let clean = run(input_text, HazardConfig::none());
    let hazardous = run(input_text, HazardConfig::moderate());

    let budget = UskuConfig::fast_test().abtest.max_samples * 2;
    for knob in hazardous.map.knobs() {
        for r in hazardous.map.results(knob) {
            assert!(
                r.attempts <= budget,
                "{}: {} attempts exceed the 2x budget {budget}",
                r.setting,
                r.attempts
            );
        }
    }

    for knob in clean.map.knobs() {
        // Only clear winners are binding; near-threshold effects may
        // legitimately degrade to Inconclusive under disruption.
        let Some((winner, gain)) = clean.map.best_setting(knob) else {
            continue;
        };
        if gain < 0.015 {
            continue;
        }
        match hazardous.map.best_setting(knob) {
            Some((hazard_winner, _)) => {
                // Settings whose clean gains are within noise of each other
                // are interchangeable winners; what hazards must never do is
                // promote a genuinely inferior setting.
                let hazard_winner_clean_gain = clean
                    .map
                    .results(knob)
                    .iter()
                    .find(|r| r.setting == hazard_winner)
                    .and_then(|r| r.verdict.gain())
                    .unwrap_or(f64::NEG_INFINITY);
                assert!(
                    hazard_winner == winner || gain - hazard_winner_clean_gain <= 0.01,
                    "hazards promoted an inferior {knob} setting\nclean:\n{}\nhazardous:\n{}",
                    clean.map.render(),
                    hazardous.map.render()
                );
            }
            None => {
                // Losing the winner entirely is only acceptable when its
                // test was disrupted into an inconclusive verdict — never a
                // flipped statistical claim.
                let disrupted = hazardous
                    .map
                    .results(knob)
                    .iter()
                    .filter(|r| r.setting == winner)
                    .all(|r| matches!(r.verdict, Verdict::Inconclusive { .. }));
                assert!(
                    disrupted,
                    "hazards erased the {knob} winner without an inconclusive trail\n{}",
                    hazardous.map.render()
                );
            }
        }
    }
}

#[test]
fn web_winners_survive_moderate_hazards() {
    assert_hazards_do_not_change_winners(
        "microservice = web\nplatform = skylake18\nknobs = thp, shp\nseed = 101\n",
    );
}

#[test]
fn ads1_winners_survive_moderate_hazards() {
    assert_hazards_do_not_change_winners(
        "microservice = ads1\nplatform = skylake18\nknobs = cdp, thp\nseed = 11\n",
    );
}

#[test]
fn hazardous_runs_record_the_ledger_and_stay_deterministic() {
    let text = "microservice = web\nknobs = thp\nseed = 5\n";
    let mut storm = HazardConfig::moderate();
    storm.dropout_prob = 0.05;
    storm.outlier_prob = 0.05;
    let a = run(text, storm);
    let b = run(text, storm);

    // The environment records what it injected; the tester records what it
    // healed. Both must be present under a hazard storm.
    let injected: u64 = a
        .hazard_counts
        .iter()
        .filter(|(k, _)| k.starts_with("hazards/"))
        .map(|&(_, n)| n)
        .sum();
    let recovered: u64 = a
        .hazard_counts
        .iter()
        .filter(|(k, _)| k.starts_with("recovery/"))
        .map(|&(_, n)| n)
        .sum();
    assert!(
        injected > 0,
        "storm must inject hazards\n{:?}",
        a.hazard_counts
    );
    assert!(
        recovered > 0,
        "tester must record recoveries\n{:?}",
        a.hazard_counts
    );
    assert!(a.render().contains("hazards survived"));

    // Identical (config, seed) pairs replay the identical hazardous run.
    assert_eq!(a.hazard_counts, b.hazard_counts);
    assert_eq!(a.render(), b.render());
}
