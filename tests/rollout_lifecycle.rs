//! End-to-end rollout lifecycle (ISSUE acceptance): a seeded run drives
//! tune → compose → staged canary rollout → injected code-push drift →
//! automatic scoped re-tune, replays bit-identically across worker counts
//! — including its trace: the serialized Chrome trace-event export of the
//! whole span tree is bit-identical across 1 and 8 workers — and a
//! guardrail violation injected into a staged fleet rolls the candidate
//! back instead of promoting it.

use softsku::cluster::{StagedFleet, StagedFleetConfig};
use softsku::knobs::Knob;
use softsku::rollout::{
    CompositionDecision, LifecycleReport, PipelineConfig, RolloutConfig, RolloutPipeline,
    RolloutState, StageViolation, StagedRollout,
};
use softsku::telemetry::trace::TraceSink;
use softsku::telemetry::{SeriesKey, TieredOds};
use softsku::workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;

const SEED: u64 = 21;

/// A debug-budget pipeline: small A/B samples, a small fleet, short stages
/// and drift windows, and code churn hot enough that the drift monitor
/// fires inside its horizon but mild enough that the rollout survives.
fn tiny_config(seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::fast_test(seed);
    config.abtest.min_samples = 24;
    config.abtest.max_samples = 240;
    config.abtest.batch = 12;
    config.env.window_insns = 12_000;
    config.staged.replicas = 20;
    config.staged.window_insns = 6_000;
    config.rollout.ticks_per_stage = 12;
    config.rollout.mad_window = 8;
    config.drift.window_ticks = 12;
    config.drift.max_windows = 4;
    config.staged.pushes_per_hour = 4.0;
    config.staged.push_magnitude = 0.005;
    config.staged.drift_per_push = 0.002;
    config
}

fn run_cycle(workers: usize) -> (LifecycleReport, TraceSink) {
    let config = tiny_config(SEED)
        .with_workers(NonZeroUsize::new(workers).expect("worker counts are positive"));
    let mut sink = TraceSink::new();
    let report = RolloutPipeline::new(config)
        .run_traced(
            Microservice::Web,
            PlatformKind::Skylake18,
            &[Knob::Thp, Knob::Shp],
            &mut sink,
        )
        .expect("the lifecycle pipeline runs clean");
    (report, sink)
}

/// Everything the determinism contract covers: every field except
/// `tuning`, whose `tune.wall_s` series is wall-clock telemetry — the one
/// stream explicitly exempt from bit-identical replay. Debug formatting
/// round-trips every f64 exactly, so string equality is bit equality.
fn deterministic_view(r: &LifecycleReport) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?} {:?}",
        r.service, r.platform, r.initial, r.drift, r.retuned, r.rollout_ods
    )
}

fn series_len(ods: &TieredOds, service: &str, metric: &str) -> usize {
    ods.len(&SeriesKey::new(service, metric))
}

#[test]
fn full_cycle_deploys_drifts_retunes_and_replays_bit_identically() {
    let (report, sink) = run_cycle(1);
    let service = report.service.name();

    // Tune → compose: the sweeps find real winners and the composed SKU
    // joint-validates (the Web THP/SHP pair is synergistic).
    assert!(
        matches!(
            report.initial.composition.decision,
            CompositionDecision::Composed { .. }
        ),
        "expected a composed SKU, got {:?}",
        report.initial.composition.decision
    );
    assert!(
        report.initial.composition.measured_gain > 0.0,
        "the composed SKU must beat production"
    );

    // Staged rollout: every canary stage promotes, ending Deployed.
    let rollout = report
        .initial
        .rollout
        .as_ref()
        .expect("a composed SKU must reach the staged rollout");
    assert_eq!(rollout.state, RolloutState::Deployed);
    assert_eq!(rollout.stages.len(), 3);
    assert!(rollout.stages.iter().all(|s| s.violation.is_none()));

    // Injected code-push churn drifts the deployed SKU; the monitor fires
    // and enqueues a scoped re-tune, which redeploys.
    let retuned = report
        .retuned
        .as_ref()
        .expect("injected drift must trigger a re-tune");
    assert_eq!(retuned.request.service, report.service);
    assert!(
        retuned.winners > 0,
        "the scoped re-tune must rediscover winners"
    );
    assert!(report.deployed(), "the retuned SKU must end deployed");

    // The ODS rollout ledger records the whole story.
    for (metric, at_least) in [
        ("rollout.stage", 3),
        ("rollout.promote", 3),
        ("rollout.deployed", 1),
        ("rollout.drift_gain", 1),
        ("rollout.drift", 1),
        ("rollout.retune", 1),
    ] {
        assert!(
            series_len(&report.rollout_ods, service, metric) >= at_least,
            "expected >= {at_least} {metric} points"
        );
    }
    assert_eq!(
        series_len(&report.rollout_ods, service, "rollout.rollback"),
        0
    );

    // The whole cycle is a pure function of (config, seed): an 8-worker
    // replay reproduces every gain, verdict, stage statistic, drift window,
    // and ledger point bit for bit.
    let (eight, sink_eight) = run_cycle(8);
    assert_eq!(deterministic_view(&report), deterministic_view(&eight));
    assert_eq!(report.render(), eight.render());

    // So is the trace: spans are recorded post-merge on the orchestration
    // thread in canonical plan order, so the serialized Chrome export is
    // bit-identical across worker counts.
    let export = sink.chrome_trace().render();
    assert_eq!(export, sink_eight.chrome_trace().render());
    assert!(export.contains("\"traceEvents\""));

    // The span tree covers the whole story: the lifecycle root, one phase
    // span per step (tune through the re-tuned second cycle), the A/B test
    // spans under the tuning campaigns, the composition validations, the
    // canary stages, and the drift windows with the retune request event.
    let span_names = |cat: &str| -> Vec<&str> {
        sink.spans()
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| s.name.as_str())
            .collect()
    };
    assert_eq!(span_names("lifecycle"), ["lifecycle Web"]);
    assert_eq!(
        span_names("phase"),
        [
            "tune",
            "compose",
            "rollout",
            "drift",
            "re-tune",
            "re-compose",
            "re-rollout"
        ]
    );
    assert!(
        span_names("tune").len() >= 2,
        "one campaign per tuning pass"
    );
    assert!(span_names("abtest").len() >= 4, "every A/B test is a span");
    assert!(!span_names("compose.validate").is_empty());
    assert!(span_names("rollout.stage").len() >= 3);
    assert!(!span_names("drift.window").is_empty());
    assert!(span_names("drift.event").contains(&"retune.request"));
    assert!(span_names("rollout.event").contains(&"deployed"));

    // CPI-stack attribution: at least one knob win names the TMAM bound it
    // relieved (the paper's Figs. 7-10 analysis, per A/B arm).
    let relieved = sink
        .spans()
        .iter()
        .filter(|s| s.cat == "abtest")
        .filter(|s| s.attrs.iter().any(|(k, _)| k == "tmam.relieved"))
        .count();
    assert!(
        relieved >= 1,
        "expected >= 1 knob win attributed to a TMAM bound"
    );
}

#[test]
fn guardrail_violation_rolls_the_candidate_back() {
    let profile = Microservice::Web
        .profile(PlatformKind::Skylake18)
        .expect("the Web profile exists");
    let baseline = profile.production_config.clone();
    // Inject a violation: "deploy" the untouched production config while
    // hot per-push drift erodes the candidate group's throughput below the
    // guardrail floor during the canary stages.
    let candidate = baseline.clone();
    let mut staged = StagedFleetConfig::fast_test();
    staged.replicas = 20;
    staged.window_insns = 6_000;
    staged.pushes_per_hour = 8.0;
    staged.push_magnitude = 0.002;
    staged.drift_per_push = 0.05;
    let mut fleet =
        StagedFleet::new(profile, baseline, candidate, staged, SEED).expect("fleet builds");

    let mut config = RolloutConfig::fast_test();
    config.ticks_per_stage = 12;
    config.mad_window = 8;
    let mut ods = TieredOds::rollout_ledger();
    let report = StagedRollout::new(config)
        .execute(&mut fleet, "web", &mut ods)
        .expect("the rollout executes");

    let RolloutState::RolledBack { stage } = report.state else {
        panic!("expected a rollback, got {:?}", report.state);
    };
    let violation = report.stages[stage]
        .violation
        .expect("the rolled-back stage records its violation");
    assert!(matches!(
        violation,
        StageViolation::SignificantLoss | StageViolation::HardStrikes
    ));
    // The fleet reverts to production everywhere and the ledger records it.
    assert_eq!(fleet.candidate_replicas(), 0);
    assert!(series_len(&ods, "web", "rollout.violation") >= 1);
    assert!(series_len(&ods, "web", "rollout.rollback") >= 1);
    assert_eq!(series_len(&ods, "web", "rollout.deployed"), 0);
}
