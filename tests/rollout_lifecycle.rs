//! End-to-end rollout lifecycle (ISSUE acceptance): a seeded run drives
//! tune → compose → staged canary rollout → injected code-push drift →
//! automatic scoped re-tune, replays bit-identically across worker counts,
//! and a guardrail violation injected into a staged fleet rolls the
//! candidate back instead of promoting it.

use softsku::cluster::{StagedFleet, StagedFleetConfig};
use softsku::knobs::Knob;
use softsku::rollout::{
    CompositionDecision, LifecycleReport, PipelineConfig, RolloutConfig, RolloutPipeline,
    RolloutState, StageViolation, StagedRollout,
};
use softsku::telemetry::{Ods, SeriesKey};
use softsku::workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;

const SEED: u64 = 21;

/// A debug-budget pipeline: small A/B samples, a small fleet, short stages
/// and drift windows, and code churn hot enough that the drift monitor
/// fires inside its horizon but mild enough that the rollout survives.
fn tiny_config(seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::fast_test(seed);
    config.abtest.min_samples = 24;
    config.abtest.max_samples = 240;
    config.abtest.batch = 12;
    config.env.window_insns = 12_000;
    config.staged.replicas = 20;
    config.staged.window_insns = 6_000;
    config.rollout.ticks_per_stage = 12;
    config.rollout.mad_window = 8;
    config.drift.window_ticks = 12;
    config.drift.max_windows = 4;
    config.staged.pushes_per_hour = 4.0;
    config.staged.push_magnitude = 0.005;
    config.staged.drift_per_push = 0.002;
    config
}

fn run_cycle(workers: usize) -> LifecycleReport {
    let config = tiny_config(SEED)
        .with_workers(NonZeroUsize::new(workers).expect("worker counts are positive"));
    RolloutPipeline::new(config)
        .run(
            Microservice::Web,
            PlatformKind::Skylake18,
            &[Knob::Thp, Knob::Shp],
        )
        .expect("the lifecycle pipeline runs clean")
}

/// Everything the determinism contract covers: every field except
/// `tuning`, whose `tune.wall_s` series is wall-clock telemetry — the one
/// stream explicitly exempt from bit-identical replay. Debug formatting
/// round-trips every f64 exactly, so string equality is bit equality.
fn deterministic_view(r: &LifecycleReport) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?} {:?}",
        r.service, r.platform, r.initial, r.drift, r.retuned, r.rollout_ods
    )
}

fn series_len(ods: &Ods, service: &str, metric: &str) -> usize {
    ods.len(&SeriesKey::new(service, metric))
}

#[test]
fn full_cycle_deploys_drifts_retunes_and_replays_bit_identically() {
    let report = run_cycle(1);
    let service = report.service.name();

    // Tune → compose: the sweeps find real winners and the composed SKU
    // joint-validates (the Web THP/SHP pair is synergistic).
    assert!(
        matches!(
            report.initial.composition.decision,
            CompositionDecision::Composed { .. }
        ),
        "expected a composed SKU, got {:?}",
        report.initial.composition.decision
    );
    assert!(
        report.initial.composition.measured_gain > 0.0,
        "the composed SKU must beat production"
    );

    // Staged rollout: every canary stage promotes, ending Deployed.
    let rollout = report
        .initial
        .rollout
        .as_ref()
        .expect("a composed SKU must reach the staged rollout");
    assert_eq!(rollout.state, RolloutState::Deployed);
    assert_eq!(rollout.stages.len(), 3);
    assert!(rollout.stages.iter().all(|s| s.violation.is_none()));

    // Injected code-push churn drifts the deployed SKU; the monitor fires
    // and enqueues a scoped re-tune, which redeploys.
    let retuned = report
        .retuned
        .as_ref()
        .expect("injected drift must trigger a re-tune");
    assert_eq!(retuned.request.service, report.service);
    assert!(
        retuned.winners > 0,
        "the scoped re-tune must rediscover winners"
    );
    assert!(report.deployed(), "the retuned SKU must end deployed");

    // The ODS rollout ledger records the whole story.
    for (metric, at_least) in [
        ("rollout.stage", 3),
        ("rollout.promote", 3),
        ("rollout.deployed", 1),
        ("rollout.drift_gain", 1),
        ("rollout.drift", 1),
        ("rollout.retune", 1),
    ] {
        assert!(
            series_len(&report.rollout_ods, service, metric) >= at_least,
            "expected >= {at_least} {metric} points"
        );
    }
    assert_eq!(
        series_len(&report.rollout_ods, service, "rollout.rollback"),
        0
    );

    // The whole cycle is a pure function of (config, seed): an 8-worker
    // replay reproduces every gain, verdict, stage statistic, drift window,
    // and ledger point bit for bit.
    let eight = run_cycle(8);
    assert_eq!(deterministic_view(&report), deterministic_view(&eight));
    assert_eq!(report.render(), eight.render());
}

#[test]
fn guardrail_violation_rolls_the_candidate_back() {
    let profile = Microservice::Web
        .profile(PlatformKind::Skylake18)
        .expect("the Web profile exists");
    let baseline = profile.production_config.clone();
    // Inject a violation: "deploy" the untouched production config while
    // hot per-push drift erodes the candidate group's throughput below the
    // guardrail floor during the canary stages.
    let candidate = baseline.clone();
    let mut staged = StagedFleetConfig::fast_test();
    staged.replicas = 20;
    staged.window_insns = 6_000;
    staged.pushes_per_hour = 8.0;
    staged.push_magnitude = 0.002;
    staged.drift_per_push = 0.05;
    let mut fleet =
        StagedFleet::new(profile, baseline, candidate, staged, SEED).expect("fleet builds");

    let mut config = RolloutConfig::fast_test();
    config.ticks_per_stage = 12;
    config.mad_window = 8;
    let mut ods = Ods::new();
    let report = StagedRollout::new(config)
        .execute(&mut fleet, "web", &mut ods)
        .expect("the rollout executes");

    let RolloutState::RolledBack { stage } = report.state else {
        panic!("expected a rollback, got {:?}", report.state);
    };
    let violation = report.stages[stage]
        .violation
        .expect("the rolled-back stage records its violation");
    assert!(matches!(
        violation,
        StageViolation::SignificantLoss | StageViolation::HardStrikes
    ));
    // The fleet reverts to production everywhere and the ledger records it.
    assert_eq!(fleet.candidate_replicas(), 0);
    assert!(series_len(&ods, "web", "rollout.violation") >= 1);
    assert!(series_len(&ods, "web", "rollout.rollback") >= 1);
    assert_eq!(series_len(&ods, "web", "rollout.deployed"), 0);
}
