//! Cross-crate property-based tests on the core invariants the experiments
//! rely on (per-module property tests live in each crate; these span crates
//! through the public API).

use proptest::prelude::*;
use softsku::archsim::cache::{CdpPartition, SetAssocCache};
use softsku::archsim::ranklist::RankList;
use softsku::archsim::reuse::ReuseDistanceDist;
use softsku::cluster::{HazardConfig, HazardSchedule};
use softsku::telemetry::stats::{t_cdf, t_quantile, welch_test, MadFilter, RunningStats, Summary};
use softsku::workloads::request::{erlang_c, mmc_wait_factor};

/// The A/B tester's verdict skeleton: Welch at 95 % plus a minimum effect.
/// Returns -1 (worse), 0 (no difference), +1 (better).
fn welch_verdict(xs_a: &[f64], xs_b: &[f64]) -> i8 {
    let a: RunningStats = xs_a.iter().copied().collect();
    let b: RunningStats = xs_b.iter().copied().collect();
    let (sa, sb) = (a.summary().unwrap(), b.summary().unwrap());
    let w = welch_test(&sb, &sa);
    let rel = sb.mean() / sa.mean() - 1.0;
    if w.significant_at(0.95) && rel.abs() >= 0.0015 {
        if rel > 0.0 {
            1
        } else {
            -1
        }
    } else {
        0
    }
}

/// Feeds samples through a fresh MAD filter, returning only accepted ones.
fn mad_screen(xs: &[f64]) -> Vec<f64> {
    let mut filter = MadFilter::new(64, 8.0);
    xs.iter().copied().filter(|&x| filter.accept(x)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The survival function of any valid reuse distribution is monotone
    /// non-increasing in capacity and bounded by [cold, 1].
    #[test]
    fn reuse_survival_is_monotone(
        knee in 4u64..10_000,
        knee_miss in 0.02f64..0.9,
        cold_frac in 0.0f64..0.5,
    ) {
        let cold = cold_frac * knee_miss * 0.9;
        let footprint = knee * 16;
        let dist = ReuseDistanceDist::single_knee(knee, knee_miss, cold, footprint).unwrap();
        let mut prev = 1.0f64;
        for exp in 0..18 {
            let c = 1u64 << exp;
            let m = dist.miss_ratio(c);
            prop_assert!(m <= prev + 1e-12);
            prop_assert!(m >= cold - 1e-12);
            prop_assert!(m <= 1.0);
            prev = m;
        }
    }

    /// A fully-associative-equivalent cache (1 set) never misses a working
    /// set smaller than its way count, regardless of the access pattern.
    #[test]
    fn small_working_sets_always_fit(accesses in proptest::collection::vec(0u64..8, 1..400)) {
        let mut cache = SetAssocCache::new(1, 8).unwrap();
        // First pass may miss (compulsory), second pass must fully hit.
        for &a in &accesses {
            cache.access(a);
        }
        cache.reset_stats();
        for &a in &accesses {
            prop_assert!(cache.access(a), "line {a} must be resident");
        }
    }

    /// RankList behaves exactly like a Vec under arbitrary front-insert /
    /// remove-at-rank sequences.
    #[test]
    fn ranklist_matches_vec_model(ops in proptest::collection::vec((any::<bool>(), 0usize..64), 1..200)) {
        let mut list = RankList::new(9);
        let mut model: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for (push, rank) in ops {
            if push || model.is_empty() {
                list.push_front(next);
                model.insert(0, next);
                next += 1;
            } else {
                let r = rank % model.len();
                prop_assert_eq!(list.remove_at(r), Some(model.remove(r)));
            }
        }
        prop_assert_eq!(list.to_vec(), model);
    }

    /// Welford accumulation matches two-pass statistics.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let acc: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((acc.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    /// t-quantile inverts the t-CDF across degrees of freedom.
    #[test]
    fn t_quantile_inverts_cdf(p in 0.01f64..0.99, df in 1.0f64..500.0) {
        let x = t_quantile(p, df);
        prop_assert!((t_cdf(x, df) - p).abs() < 1e-8);
    }

    /// Welch's test is antisymmetric in its arguments and never yields a
    /// p-value outside [0, 1].
    #[test]
    fn welch_is_antisymmetric(
        m1 in -100.0f64..100.0,
        m2 in -100.0f64..100.0,
        v1 in 0.01f64..50.0,
        v2 in 0.01f64..50.0,
        n1 in 3u64..500,
        n2 in 3u64..500,
    ) {
        let a = Summary::from_moments(n1, m1, v1);
        let b = Summary::from_moments(n2, m2, v2);
        let ab = welch_test(&a, &b);
        let ba = welch_test(&b, &a);
        prop_assert!((ab.t_statistic + ba.t_statistic).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
    }

    /// Erlang-C is a probability, increasing in offered load.
    #[test]
    fn erlang_c_is_probability(c in 1u32..64, rho in 0.0f64..0.99) {
        let a = rho * c as f64;
        let p = erlang_c(c, a);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = erlang_c(c, (a + 0.1).min(c as f64 * 0.999));
        prop_assert!(p2 + 1e-12 >= p);
        prop_assert!(mmc_wait_factor(rho, c).is_finite());
    }

    /// Interleaving ≤5 % gross corrupted readings into either arm's stream
    /// does not change the Welch verdict once the MAD filter screens it: the
    /// filter rejects every corrupted reading and passes every clean one, so
    /// the accepted stream — and hence the A/B decision — is bit-identical
    /// to the hazard-free run.
    #[test]
    fn mad_filter_makes_welch_verdict_outlier_invariant(
        xs_a in proptest::collection::vec(99.0f64..101.0, 200..320),
        xs_b in proptest::collection::vec(99.0f64..101.0, 200..320),
        shift in -0.05f64..0.05,
        outlier_at in proptest::collection::vec((20usize..200, any::<bool>()), 0..10),
        factor in 4.0f64..12.0,
    ) {
        // Candidate arm = baseline distribution shifted by up to ±5 %.
        let xs_b: Vec<f64> = xs_b.iter().map(|x| x * (1.0 + shift)).collect();
        let clean = welch_verdict(&xs_a, &xs_b);

        // Inject ≤5 % corrupted readings (10 of ≥200) past the filter's
        // warm-up: gross multiplicative outliers, up or down, per arm.
        let dirty = |xs: &[f64], parity: usize| -> Vec<f64> {
            let mut out = Vec::with_capacity(xs.len() + outlier_at.len());
            for (j, &x) in xs.iter().enumerate() {
                out.push(x);
                for &(i, up) in &outlier_at {
                    if i % 2 == parity && i % xs.len() == j {
                        out.push(x * if up { factor } else { 1.0 / factor });
                    }
                }
            }
            out
        };

        let screened_a = mad_screen(&dirty(&xs_a, 0));
        let screened_b = mad_screen(&dirty(&xs_b, 1));
        // The filter reconstructs the clean streams exactly.
        prop_assert_eq!(&screened_a, &xs_a);
        prop_assert_eq!(&screened_b, &xs_b);
        prop_assert_eq!(welch_verdict(&screened_a, &screened_b), clean);
    }

    /// Identical (HazardConfig, seed) pairs produce byte-identical hazard
    /// schedules, and a fresh schedule replays the same preview.
    #[test]
    fn hazard_schedules_are_deterministic(
        seed in any::<u64>(),
        crash_rate in 0.0f64..2.0,
        dropout in 0.0f64..0.3,
        outlier in 0.0f64..0.3,
        spike_rate in 0.0f64..2.0,
        knob_fail in 0.0f64..0.5,
    ) {
        let config = HazardConfig {
            crash_rate_per_hour: crash_rate,
            crash_outage_s: 300.0,
            dropout_prob: dropout,
            outlier_prob: outlier,
            outlier_magnitude: 0.5,
            spike_rate_per_hour: spike_rate,
            spike_duration_s: 120.0,
            spike_magnitude: 0.3,
            knob_failure_prob: knob_fail,
        };
        let first = HazardSchedule::preview(config, seed, 8.0 * 3600.0, 30.0);
        let second = HazardSchedule::preview(config, seed, 8.0 * 3600.0, 30.0);
        prop_assert_eq!(&first, &second);
        // A different seed must not replay the same (non-trivial) timeline.
        if first.len() >= 3 {
            let other = HazardSchedule::preview(config, seed ^ 0x9E37_79B9, 8.0 * 3600.0, 30.0);
            prop_assert_ne!(&first, &other);
        }
    }

    /// Every valid CDP partition of any way count sums back to the total and
    /// never starves a side.
    #[test]
    fn cdp_sweep_is_complete_and_valid(ways in 2u32..32) {
        let sweep = CdpPartition::sweep(ways);
        prop_assert_eq!(sweep.len(), (ways - 1) as usize);
        for p in sweep {
            prop_assert_eq!(p.data_ways + p.code_ways, ways);
            prop_assert!(p.data_ways >= 1 && p.code_ways >= 1);
            prop_assert!(CdpPartition::new(p.data_ways, p.code_ways, ways).is_ok());
        }
    }
}
