//! Cross-crate property-based tests on the core invariants the experiments
//! rely on (per-module property tests live in each crate; these span crates
//! through the public API).

use proptest::prelude::*;
use softsku::archsim::cache::{CdpPartition, SetAssocCache};
use softsku::archsim::ranklist::RankList;
use softsku::archsim::reuse::ReuseDistanceDist;
use softsku::telemetry::stats::{t_cdf, t_quantile, welch_test, RunningStats, Summary};
use softsku::workloads::request::{erlang_c, mmc_wait_factor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The survival function of any valid reuse distribution is monotone
    /// non-increasing in capacity and bounded by [cold, 1].
    #[test]
    fn reuse_survival_is_monotone(
        knee in 4u64..10_000,
        knee_miss in 0.02f64..0.9,
        cold_frac in 0.0f64..0.5,
    ) {
        let cold = cold_frac * knee_miss * 0.9;
        let footprint = knee * 16;
        let dist = ReuseDistanceDist::single_knee(knee, knee_miss, cold, footprint).unwrap();
        let mut prev = 1.0f64;
        for exp in 0..18 {
            let c = 1u64 << exp;
            let m = dist.miss_ratio(c);
            prop_assert!(m <= prev + 1e-12);
            prop_assert!(m >= cold - 1e-12);
            prop_assert!(m <= 1.0);
            prev = m;
        }
    }

    /// A fully-associative-equivalent cache (1 set) never misses a working
    /// set smaller than its way count, regardless of the access pattern.
    #[test]
    fn small_working_sets_always_fit(accesses in proptest::collection::vec(0u64..8, 1..400)) {
        let mut cache = SetAssocCache::new(1, 8).unwrap();
        // First pass may miss (compulsory), second pass must fully hit.
        for &a in &accesses {
            cache.access(a);
        }
        cache.reset_stats();
        for &a in &accesses {
            prop_assert!(cache.access(a), "line {a} must be resident");
        }
    }

    /// RankList behaves exactly like a Vec under arbitrary front-insert /
    /// remove-at-rank sequences.
    #[test]
    fn ranklist_matches_vec_model(ops in proptest::collection::vec((any::<bool>(), 0usize..64), 1..200)) {
        let mut list = RankList::new(9);
        let mut model: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for (push, rank) in ops {
            if push || model.is_empty() {
                list.push_front(next);
                model.insert(0, next);
                next += 1;
            } else {
                let r = rank % model.len();
                prop_assert_eq!(list.remove_at(r), Some(model.remove(r)));
            }
        }
        prop_assert_eq!(list.to_vec(), model);
    }

    /// Welford accumulation matches two-pass statistics.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 2..300)) {
        let acc: RunningStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((acc.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
    }

    /// t-quantile inverts the t-CDF across degrees of freedom.
    #[test]
    fn t_quantile_inverts_cdf(p in 0.01f64..0.99, df in 1.0f64..500.0) {
        let x = t_quantile(p, df);
        prop_assert!((t_cdf(x, df) - p).abs() < 1e-8);
    }

    /// Welch's test is antisymmetric in its arguments and never yields a
    /// p-value outside [0, 1].
    #[test]
    fn welch_is_antisymmetric(
        m1 in -100.0f64..100.0,
        m2 in -100.0f64..100.0,
        v1 in 0.01f64..50.0,
        v2 in 0.01f64..50.0,
        n1 in 3u64..500,
        n2 in 3u64..500,
    ) {
        let a = Summary::from_moments(n1, m1, v1);
        let b = Summary::from_moments(n2, m2, v2);
        let ab = welch_test(&a, &b);
        let ba = welch_test(&b, &a);
        prop_assert!((ab.t_statistic + ba.t_statistic).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
    }

    /// Erlang-C is a probability, increasing in offered load.
    #[test]
    fn erlang_c_is_probability(c in 1u32..64, rho in 0.0f64..0.99) {
        let a = rho * c as f64;
        let p = erlang_c(c, a);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = erlang_c(c, (a + 0.1).min(c as f64 * 0.999));
        prop_assert!(p2 + 1e-12 >= p);
        prop_assert!(mmc_wait_factor(rho, c).is_finite());
    }

    /// Every valid CDP partition of any way count sums back to the total and
    /// never starves a side.
    #[test]
    fn cdp_sweep_is_complete_and_valid(ways in 2u32..32) {
        let sweep = CdpPartition::sweep(ways);
        prop_assert_eq!(sweep.len(), (ways - 1) as usize);
        for p in sweep {
            prop_assert_eq!(p.data_ways + p.code_ways, ways);
            prop_assert!(p.data_ways >= 1 && p.code_ways >= 1);
            prop_assert!(CdpPartition::new(p.data_ways, p.code_ways, ways).is_ok());
        }
    }
}
