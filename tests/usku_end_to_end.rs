//! Integration: the full µSKU pipeline reproduces the paper's Sec. 6
//! evaluation shape — statistically significant soft-SKU wins over stock and
//! hand-tuned production servers, with constraint gating and long-horizon
//! validation (reduced sample budgets; the paper-scale run lives in the
//! `repro fig19` harness).

use softsku::knobs::Knob;
use softsku::usku::{InputFile, Usku, UskuConfig, Verdict};

fn fast(input: InputFile, validate_days: f64) -> UskuConfig {
    let mut cfg = UskuConfig::fast_test();
    cfg.validate_days = validate_days;
    let _ = input;
    cfg
}

#[test]
fn web_skylake_soft_sku_beats_production_and_stock() {
    let input = InputFile::parse(
        "microservice = web\nplatform = skylake18\nknobs = cdp, thp, shp\nseed = 101\n",
    )
    .unwrap();
    let cfg = fast(input.clone(), 1.0);
    let report = Usku::with_config(input, cfg).run().unwrap();

    // Fig. 19 shape: positive gains against both baselines, with the
    // production gap smaller than the stock gap ordering not guaranteed in
    // the paper either; we assert both are wins.
    assert!(
        report.soft_sku.gain_vs_production > 0.02,
        "vs production {:+.2}%\n{}",
        report.soft_sku.gain_vs_production * 100.0,
        report.render()
    );
    assert!(
        report.soft_sku.gain_vs_stock > 0.02,
        "vs stock {:+.2}%",
        report.soft_sku.gain_vs_stock * 100.0
    );

    // The composed SKU carries the paper's signature selections.
    let knobs: Vec<Knob> = report
        .soft_sku
        .selections
        .iter()
        .map(|(k, _, _)| *k)
        .collect();
    assert!(knobs.contains(&Knob::Cdp), "CDP should win on Web-Skylake");
    assert!(knobs.contains(&Knob::Shp), "SHP 300 should win");

    // Additivity is approximate (paper Sec. 7): the composite differs from
    // the sum of individual gains.
    let additive = report.soft_sku.additive_prediction();
    assert!(additive > 0.0);

    // Fleet validation confirms a stable QPS win across code pushes.
    let v = report.validation.expect("validation enabled");
    assert!(
        v.relative_gain > 0.01,
        "validated {:+.2}%",
        v.relative_gain * 100.0
    );
}

#[test]
fn ads1_constraints_shape_the_search() {
    let input = InputFile::parse("microservice = ads1\nseed = 11\n").unwrap();
    let cfg = fast(input.clone(), 0.0);
    let report = Usku::with_config(input, cfg).run().unwrap();

    // SHP never appears: Ads1 does not call the APIs (knob gated).
    assert!(
        report.map.results(Knob::Shp).is_empty(),
        "SHP must be gated for Ads1"
    );
    // Core-count sweep collapses to the QoS floor (no alternatives to test).
    assert!(
        report.map.results(Knob::CoreCount).is_empty(),
        "core-count sweep must be trivial for Ads1"
    );
    // Frequency studies match expert tuning: no setting beats production.
    assert!(
        report.map.best_setting(Knob::CoreFrequency).is_none(),
        "production core frequency is already optimal"
    );
    // Overall, Ads1 still gains a little (paper: +2.5%).
    assert!(
        report.soft_sku.gain_vs_production > 0.0,
        "{:+.2}%",
        report.soft_sku.gain_vs_production * 100.0
    );
}

#[test]
fn frequency_sweep_confirms_expert_tuning_for_web() {
    // Paper Sec. 6.1, knobs 1–3: "µSKU matches expert manual tuning
    // decisions" — every non-production frequency loses or ties.
    let input = InputFile::parse(
        "microservice = web\nplatform = skylake18\nknobs = core_frequency, uncore_frequency\nseed = 23\n",
    )
    .unwrap();
    let cfg = fast(input.clone(), 0.0);
    let report = Usku::with_config(input, cfg).run().unwrap();
    assert!(report.map.best_setting(Knob::CoreFrequency).is_none());
    assert!(report.map.best_setting(Knob::UncoreFrequency).is_none());
    // Every decided test is a loss (lower frequencies), never a win.
    for r in report.map.results(Knob::CoreFrequency) {
        match r.verdict {
            Verdict::Worse { .. } | Verdict::NoDifference => {}
            other => panic!("unexpected verdict {other:?} for {}", r.setting),
        }
    }
    // The generated "soft SKU" therefore equals production for these knobs.
    assert_eq!(report.soft_sku.config.core_freq_ghz, 2.2);
    assert_eq!(report.soft_sku.config.uncore_freq_ghz, 1.8);
}

#[test]
fn hill_climbing_matches_or_beats_independent_on_small_space() {
    let base = "microservice = web\nplatform = skylake18\nknobs = thp, shp\nseed = 77\n";
    let ind = Usku::with_config(
        InputFile::parse(base).unwrap(),
        fast(InputFile::parse(base).unwrap(), 0.0),
    )
    .run()
    .unwrap();
    let hc_text = format!("{base}sweep = hill_climbing\n");
    let mut hc_cfg = fast(InputFile::parse(&hc_text).unwrap(), 0.0);
    // Two knobs need two greedy steps to match the independent composition.
    hc_cfg.hill_climb_steps = 2;
    let hc = Usku::with_config(InputFile::parse(&hc_text).unwrap(), hc_cfg)
        .run()
        .unwrap();
    assert!(
        hc.soft_sku.gain_vs_production >= ind.soft_sku.gain_vs_production - 0.02,
        "hill climbing {:+.2}% vs independent {:+.2}%",
        hc.soft_sku.gain_vs_production * 100.0,
        ind.soft_sku.gain_vs_production * 100.0
    );
}

#[test]
fn reports_are_deterministic_given_a_seed() {
    let text = "microservice = web\nknobs = thp\nseed = 5\n";
    let run = || {
        let input = InputFile::parse(text).unwrap();
        let cfg = fast(input.clone(), 0.0);
        Usku::with_config(input, cfg).run().unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.map.test_count(), b.map.test_count());
    assert_eq!(a.map.sample_count(), b.map.sample_count());
    assert!((a.soft_sku.gain_vs_production - b.soft_sku.gain_vs_production).abs() < 1e-12);
    assert_eq!(a.render(), b.render());
}
