//! End-to-end chaos campaign (ISSUE acceptance): a seeded multi-service
//! rollout under domain-correlated faults completes with zero panics,
//! every injected fault lands in the `chaos.*` ledger, quarantine backs
//! off exponentially, and the whole report replays bit-identically across
//! 1 and 8 workers. Ablations then show each safety mechanism changing a
//! real outcome: the circuit breaker throttles a correlated rollback
//! storm, quarantine retries rescue a service that one-strike demotion
//! would kill, and the canary budget paces an otherwise-instant ramp.

use softsku::cluster::{ChaosConfig, FailureDomain, FleetTopology, StagedFleet, StagedFleetConfig};
use softsku::rollout::{
    demo_campaign, CanaryBudget, CoordinatorConfig, CoordinatorReport, FleetCoordinator,
    ServicePhase, ServicePlan,
};
use softsku::telemetry::streams::IdentitySeed;
use softsku::telemetry::SeriesKey;
use softsku::workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;

const SEED: u64 = 21;

fn run_demo(seed: u64, workers: usize) -> CoordinatorReport {
    let (topology, chaos, plans) = demo_campaign(seed).unwrap();
    FleetCoordinator::new(CoordinatorConfig::fast_test())
        .with_workers(NonZeroUsize::new(workers).unwrap())
        .run(&topology, chaos, plans, seed)
        .unwrap()
}

/// A quiet service plan: candidate identical to the baseline and no
/// organic code churn, so every guardrail reaction in these tests is
/// attributable to injected chaos alone.
fn quiet_plan(service: Microservice, platform: PlatformKind, domain: FailureDomain) -> ServicePlan {
    let profile = service.profile(platform).unwrap();
    let baseline = profile.production_config.clone();
    let candidate = baseline.clone();
    let mut staged = StagedFleetConfig::fast_test();
    staged.replicas = 20;
    staged.window_insns = 6_000;
    staged.pushes_per_hour = 0.0;
    let name = service.name().to_lowercase();
    let fleet_seed = IdentitySeed::new(SEED)
        .field(&name)
        .field(&domain.to_string())
        .finish();
    let fleet = StagedFleet::new(profile, baseline, candidate.clone(), staged, fleet_seed).unwrap();
    ServicePlan {
        name,
        fleet,
        candidate,
        needs_reboot: false,
        domain,
    }
}

/// Chaos that only sends correlated code-push waves.
fn waves_only(rate_per_day: f64) -> ChaosConfig {
    ChaosConfig {
        push_wave_rate_per_day: rate_per_day,
        push_wave_erosion: 0.08,
        ..ChaosConfig::none()
    }
}

/// The demo campaign (4 services, 2 pools, all four fault families)
/// completes without panics, records every fault in the `chaos.*` ledger,
/// quarantines with exponential backoff, and is bit-identical between a
/// serial and an 8-worker run.
#[test]
fn demo_campaign_survives_chaos_bit_identically() {
    let serial = run_demo(SEED, 1);
    let wide = run_demo(SEED, 8);
    assert_eq!(
        format!("{serial:?}"),
        format!("{wide:?}"),
        "coordinator outcomes must not depend on worker count"
    );

    assert!(serial.converged(), "{}", serial.render());
    assert_eq!(serial.services.len(), 4);
    for (family, injected) in serial.faults.iter().enumerate() {
        assert!(*injected > 0, "fault family {family} never fired");
    }

    // Every injected fault is a `chaos.*` ledger entry — count them back
    // out of the ledger and match the injection counters exactly.
    let families = [
        "chaos.brownout",
        "chaos.push_wave",
        "chaos.canary_crash",
        "chaos.stall",
    ];
    for (metric, injected) in families.iter().zip(serial.faults) {
        let logged: usize = serial
            .ledger
            .keys()
            .filter(|k| k.metric() == *metric)
            .map(|k| serial.ledger.len(k))
            .sum();
        assert_eq!(logged as u64, injected, "{metric} entries");
    }

    // Quarantine backs off exponentially: each successive entry for the
    // same service doubles the previous wait.
    let quarantined: Vec<&SeriesKey> = serial
        .ledger
        .keys()
        .filter(|k| k.metric() == "coordinator.quarantine")
        .collect();
    assert!(!quarantined.is_empty(), "campaign must quarantine someone");
    let mut saw_backoff_growth = false;
    for key in quarantined {
        let waits: Vec<f64> = serial
            .ledger
            .raw_points(key)
            .iter()
            .map(|&(_, backoff)| backoff)
            .collect();
        for pair in waits.windows(2) {
            assert_eq!(pair[1], pair[0] * 2.0, "backoff must double per strike");
            saw_backoff_growth = true;
        }
    }
    assert!(saw_backoff_growth, "need at least one repeated quarantine");
    assert!(
        serial.services.iter().any(|s| s.retries > 0),
        "a quarantined service must get a retry"
    );
}

/// A correlated code-push wave storm rolls back several same-pool services
/// inside the breaker window and trips the fleet-wide circuit breaker;
/// each trip's freeze pauses retries, so over a fixed horizon the guarded
/// fleet burns strictly fewer rollbacks into the storm than the same fleet
/// with the breaker disabled.
#[test]
fn correlated_push_waves_trip_the_breaker() {
    let topology = FleetTopology::paper_pools();
    let plans = || {
        vec![
            quiet_plan(
                Microservice::Feed1,
                PlatformKind::Skylake18,
                FailureDomain::new("skl18", "r0"),
            ),
            quiet_plan(
                Microservice::Ads1,
                PlatformKind::Skylake18,
                FailureDomain::new("skl18", "r0"),
            ),
            quiet_plan(
                Microservice::Cache2,
                PlatformKind::Skylake18,
                FailureDomain::new("skl18", "r1"),
            ),
        ]
    };
    // A persistent storm — every retry is doomed by the next wave — with
    // demotion pushed out of reach so the two runs differ only in whether
    // the breaker throttles the retry cadence over the fixed horizon.
    let chaos = waves_only(48.0);
    let mut guarded_cfg = CoordinatorConfig::fast_test();
    guarded_cfg.max_strikes = 12;
    guarded_cfg.quarantine_backoff_ticks = 4;
    guarded_cfg.breaker_freeze_ticks = 36;
    guarded_cfg.max_ticks = 240;
    let mut unguarded_cfg = guarded_cfg.clone();
    unguarded_cfg.breaker_rollbacks = usize::MAX;

    let guarded = FleetCoordinator::new(guarded_cfg)
        .with_workers(NonZeroUsize::new(2).unwrap())
        .run(&topology, chaos, plans(), SEED)
        .unwrap();
    assert!(
        guarded.breaker_trips >= 1,
        "correlated rollbacks must trip the breaker:\n{}",
        guarded.render()
    );
    assert_eq!(
        guarded
            .ledger
            .len(&SeriesKey::new("fleet", "coordinator.breaker_trip")) as u64,
        guarded.breaker_trips
    );
    assert!(
        guarded.quarantines >= 1,
        "storm survivors must pass through quarantine"
    );

    let unguarded = FleetCoordinator::new(unguarded_cfg)
        .with_workers(NonZeroUsize::new(2).unwrap())
        .run(&topology, chaos, plans(), SEED)
        .unwrap();
    assert_eq!(unguarded.breaker_trips, 0);
    assert!(
        unguarded.rollbacks > guarded.rollbacks,
        "breaker off must burn more rollbacks: {} vs {} with it on",
        unguarded.rollbacks,
        guarded.rollbacks
    );
}

/// One early push wave rolls a service back once; quarantine-and-retry
/// redeploys it against current code and the rollout completes. The same
/// campaign with `max_strikes = 1` (quarantine effectively off) demotes
/// the service on that first strike instead.
#[test]
fn quarantine_retry_rescues_what_demotion_would_kill() {
    let topology = FleetTopology::paper_pools();
    let plans = || {
        vec![quiet_plan(
            Microservice::Web,
            PlatformKind::Skylake18,
            FailureDomain::new("skl18", "r0"),
        )]
    };
    let chaos = waves_only(6.0);
    let seed = 1;

    let patient = FleetCoordinator::new(CoordinatorConfig::fast_test())
        .run(&topology, chaos, plans(), seed)
        .unwrap();
    let s = &patient.services[0];
    assert!(s.rollbacks >= 1, "the wave must cause a strike:\n{s:?}");
    assert!(s.retries >= 1, "quarantine must grant a retry:\n{s:?}");
    assert!(
        s.deployed(),
        "the retry must complete the rollout:\n{}",
        patient.render()
    );

    let mut strict_cfg = CoordinatorConfig::fast_test();
    strict_cfg.max_strikes = 1;
    let strict = FleetCoordinator::new(strict_cfg)
        .run(&topology, chaos, plans(), seed)
        .unwrap();
    assert_eq!(
        strict.services[0].phase,
        ServicePhase::Demoted,
        "one-strike demotion must kill the same rollout quarantine saved"
    );
    assert_eq!(strict.services[0].retries, 0);
}

/// The per-tick canary budget paces exposure: a chaos-free rollout under a
/// one-replica-per-tick budget takes strictly more coordinator ticks than
/// the identical rollout with the budget unlimited.
#[test]
fn canary_budget_paces_the_ramp() {
    let topology = FleetTopology::paper_pools();
    let plans = || {
        vec![quiet_plan(
            Microservice::Web,
            PlatformKind::Skylake18,
            FailureDomain::new("skl18", "r1"),
        )]
    };

    let mut paced_cfg = CoordinatorConfig::fast_test();
    paced_cfg.budget.growth_per_tick = 1;
    let paced = FleetCoordinator::new(paced_cfg)
        .run(&topology, ChaosConfig::none(), plans(), SEED)
        .unwrap();

    let mut open_cfg = CoordinatorConfig::fast_test();
    open_cfg.budget = CanaryBudget::unlimited();
    let open = FleetCoordinator::new(open_cfg)
        .run(&topology, ChaosConfig::none(), plans(), SEED)
        .unwrap();

    assert!(paced.converged() && open.converged());
    assert!(paced.services[0].deployed() && open.services[0].deployed());
    assert!(
        paced.ticks > open.ticks,
        "budget pacing must lengthen the ramp: {} vs {} unmetered",
        paced.ticks,
        open.ticks
    );
}
