//! Determinism suite for the parallel tuning scheduler (ISSUE satellite):
//! the same sweep must produce verdict-for-verdict identical design-space
//! maps — and the same composed configuration — for any worker count,
//! because each test's replica seed derives from the test's identity, not
//! from scheduling. Also pins the parallel sweep to the serial strategy's
//! winners, with and without injected production hazards.

use softsku::cluster::{AbEnvironment, EnvConfig, HazardConfig};
use softsku::knobs::{Knob, KnobSpace};
use softsku::usku::metric::PerformanceMetric;
use softsku::usku::scheduler::{parallel_exhaustive_sweep, parallel_independent_sweep, Schedule};
use softsku::usku::search::{independent_sweep, SearchOutcome};
use softsku::usku::{AbTestConfig, AbTester};
use softsku::workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;

const SEED: u64 = 21;
const KNOBS: [Knob; 2] = [Knob::Thp, Knob::Shp];

fn setup(env_config: EnvConfig) -> (AbTester, AbEnvironment, KnobSpace) {
    let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
    let space = KnobSpace::for_platform(&profile.production_config.platform, profile.constraints);
    let env = AbEnvironment::new(profile, env_config, SEED).unwrap();
    let tester = AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips);
    (tester, env, space)
}

fn independent_with(workers: usize, env_config: EnvConfig) -> SearchOutcome {
    let (tester, mut env, space) = setup(env_config);
    let baseline = env.profile().production_config.clone();
    parallel_independent_sweep(
        &tester,
        &mut env,
        &baseline,
        &space,
        &KNOBS,
        Schedule::new(SEED).with_workers(NonZeroUsize::new(workers).unwrap()),
    )
    .unwrap()
}

fn exhaustive_with(workers: usize, env_config: EnvConfig) -> SearchOutcome {
    let (tester, mut env, space) = setup(env_config);
    let baseline = env.profile().production_config.clone();
    parallel_exhaustive_sweep(
        &tester,
        &mut env,
        &baseline,
        &space,
        &[Knob::Thp, Knob::CoreFrequency],
        6,
        Schedule::new(SEED).with_workers(NonZeroUsize::new(workers).unwrap()),
    )
    .unwrap()
}

/// Bit-level equality of two outcomes: every verdict and sample count (via
/// the rendered map), every selection (knob, setting, exact gain), and the
/// composed configuration.
fn assert_identical(a: &SearchOutcome, b: &SearchOutcome, what: &str) {
    assert_eq!(a.map.render(), b.map.render(), "{what}: maps diverged");
    assert_eq!(a.best_config, b.best_config, "{what}: best_config diverged");
    assert_eq!(
        a.selected.len(),
        b.selected.len(),
        "{what}: selection count diverged"
    );
    for (sa, sb) in a.selected.iter().zip(&b.selected) {
        assert_eq!(sa.0, sb.0, "{what}: selected knob diverged");
        assert_eq!(sa.1, sb.1, "{what}: selected setting diverged");
        assert_eq!(
            sa.2.to_bits(),
            sb.2.to_bits(),
            "{what}: selected gain not bit-identical"
        );
    }
}

#[test]
fn independent_sweep_is_bit_identical_across_worker_counts() {
    let one = independent_with(1, EnvConfig::fast_test());
    let two = independent_with(2, EnvConfig::fast_test());
    let eight = independent_with(8, EnvConfig::fast_test());
    assert_identical(&one, &two, "1 vs 2 workers");
    assert_identical(&one, &eight, "1 vs 8 workers");
    assert!(one.map.test_count() >= 7, "sweep actually ran tests");
}

#[test]
fn independent_sweep_stays_deterministic_under_hazards() {
    let mut config = EnvConfig::fast_test();
    config.hazards = HazardConfig::moderate();
    let one = independent_with(1, config);
    let two = independent_with(2, config);
    let eight = independent_with(8, config);
    assert_identical(&one, &two, "hazards, 1 vs 2 workers");
    assert_identical(&one, &eight, "hazards, 1 vs 8 workers");
}

#[test]
fn parallel_sweep_matches_the_serial_strategy_winners() {
    let (tester, mut env, space) = setup(EnvConfig::fast_test());
    let baseline = env.profile().production_config.clone();
    let serial = independent_sweep(&tester, &mut env, &baseline, &space, &KNOBS).unwrap();
    let parallel = independent_with(4, EnvConfig::fast_test());
    // The serial sweep samples one shared environment, so bit-level maps
    // differ; the *decisions* — composed config and chosen settings — must
    // agree.
    assert_eq!(serial.best_config, parallel.best_config);
    let serial_picks: Vec<_> = serial.selected.iter().map(|s| (s.0, s.1)).collect();
    let parallel_picks: Vec<_> = parallel.selected.iter().map(|s| (s.0, s.1)).collect();
    assert_eq!(serial_picks, parallel_picks);
}

#[test]
fn exhaustive_sweep_is_bit_identical_across_worker_counts() {
    let one = exhaustive_with(1, EnvConfig::fast_test());
    let three = exhaustive_with(3, EnvConfig::fast_test());
    assert_identical(&one, &three, "exhaustive, 1 vs 3 workers");
    assert!(
        !one.map.joint_results().is_empty(),
        "exhaustive sweep recorded joint configurations"
    );
}
