//! Tuning through production hazards: Ads1 under crashes and load spikes.
//!
//! ```text
//! cargo run --release --example hazard_tuning
//! ```
//!
//! Production fleets are not lab benches: machines crash mid-experiment,
//! telemetry daemons drop samples, diurnal load is punctuated by spikes, and
//! fleet tooling flakes while applying knobs. This example runs the same
//! Ads1 sweep as `tune_ads1`, but against an environment that injects a
//! deterministic, seeded schedule of those hazards — and shows the
//! self-healing A/B tester absorbing them: every injected disruption is
//! paired with the recovery actions (waits, re-warmups, retries, outlier
//! rejections) the tester took to survive it.

use softsku::cluster::HazardConfig;
use softsku::usku::{InputFile, Usku, UskuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = InputFile::parse(
        "microservice = ads1\nplatform = skylake18\nsweep = independent\nseed = 9\n",
    )?;

    let mut config = UskuConfig::fast_test();
    // Crash-heavy, spike-heavy weather on top of the moderate preset.
    config.env.hazards = HazardConfig {
        crash_rate_per_hour: 0.5,
        crash_outage_s: 600.0,
        spike_rate_per_hour: 1.0,
        spike_duration_s: 600.0,
        spike_magnitude: 0.3,
        ..HazardConfig::moderate()
    };

    let report = Usku::with_config(input, config).run()?;
    println!("{}", report.render());

    // Injected hazards vs the recovery actions that absorbed them.
    let count = |name: &str| {
        report
            .hazard_counts
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |&(_, n)| n)
    };
    println!("hazard ledger (injected -> recovered):");
    println!(
        "  arm crashes      {:>6}   waits + re-warmups {:>6}",
        count("hazards/injected.arm_down"),
        count("recovery/arm_down"),
    );
    println!(
        "  dropouts         {:>6}   resampled          {:>6}",
        count("hazards/injected.dropout"),
        count("recovery/dropout"),
    );
    println!(
        "  corrupted        {:>6}   MAD-rejected       {:>6}",
        count("hazards/injected.outlier"),
        count("recovery/outlier_rejected"),
    );
    println!(
        "  knob failures    {:>6}   retried OK         {:>6}",
        count("hazards/injected.knob_failure"),
        count("recovery/knob_retry_ok"),
    );
    println!("  load spikes      {:>6}", count("hazards/injected.spike"));

    let injected: u64 = report
        .hazard_counts
        .iter()
        .filter(|(k, _)| k.starts_with("hazards/"))
        .map(|&(_, n)| n)
        .sum();
    let recovered: u64 = report
        .hazard_counts
        .iter()
        .filter(|(k, _)| k.starts_with("recovery/"))
        .map(|&(_, n)| n)
        .sum();
    println!("  total: {injected} injected, {recovered} recovery actions");
    println!(
        "  verdicts: {} tests, {} inconclusive under hazards",
        report.map.test_count(),
        report.map.inconclusive()
    );
    Ok(())
}
