//! Energy-efficiency tuning: the paper's Sec. 7 perf-per-watt extension.
//!
//! ```text
//! cargo run --release --example energy_tuning
//! ```
//!
//! The µSKU prototype optimizes throughput only; Sec. 7 notes it "can be
//! extended to perform energy- or power-efficiency optimization". This
//! example sweeps core frequency for Feed2 under both objectives and shows
//! where they disagree: raw throughput always wants the maximum frequency,
//! while perf-per-watt discounts the cubic dynamic-power cost and can settle
//! lower.

use softsku::archsim::engine::Engine;
use softsku::usku::{Objective, PowerModel};
use softsku::workloads::{Microservice, PlatformKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = Microservice::Feed2;
    let profile = service.profile(PlatformKind::Skylake18)?;
    let model = PowerModel::default();

    println!(
        "{:<10} {:>12} {:>10} {:>14} {:>14}",
        "core GHz", "MIPS", "watts", "MIPS (norm)", "MIPS/W (norm)"
    );
    let mut rows = Vec::new();
    for f in [1.6, 1.7, 1.8, 1.9, 2.0, 2.1, 2.2] {
        let mut cfg = profile.production_config.clone();
        cfg.core_freq_ghz = f;
        let engine = Engine::new(cfg.clone(), profile.stream.clone(), 42)?;
        let report = engine.run_window(250_000, profile.peak_utilization)?;
        let tput = Objective::Throughput.score(&model, &cfg, &report, profile.peak_utilization);
        let ppw = Objective::PerfPerWatt.score(&model, &cfg, &report, profile.peak_utilization);
        let watts = model.watts(&cfg, &report, profile.peak_utilization);
        rows.push((f, tput, ppw, watts));
    }
    let max_tput = rows.iter().map(|r| r.1).fold(f64::MIN, f64::max);
    let max_ppw = rows.iter().map(|r| r.2).fold(f64::MIN, f64::max);
    for (f, tput, ppw, watts) in &rows {
        println!(
            "{:<10.1} {:>12.0} {:>10.1} {:>13.1}% {:>13.1}%",
            f,
            tput,
            watts,
            tput / max_tput * 100.0,
            ppw / max_ppw * 100.0
        );
    }

    let best_tput = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows non-empty");
    let best_ppw = rows
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("rows non-empty");
    println!(
        "\nThroughput objective picks {:.1} GHz; perf-per-watt picks {:.1} GHz.",
        best_tput.0, best_ppw.0
    );
    println!(
        "At scale, single-digit perf-per-watt gains translate directly into\n\
         provisioning savings — the paper's motivation for soft SKUs."
    );
    Ok(())
}
