//! What-if study: LLC code/data prioritization on two hardware generations.
//!
//! ```text
//! cargo run --release --example whatif_cdp
//! ```
//!
//! The paper's most interesting knob asymmetry (Figs. 16–17): partitioning
//! LLC ways between code and data buys Web ~4.5% on Skylake, but nothing on
//! Broadwell — the older platform is memory-bandwidth saturated, so CDP's
//! trade (fewer code misses for more data misses, i.e. *more total traffic*)
//! has no headroom to pay for itself. This example sweeps the partition on
//! both platforms directly against the simulator, bypassing the A/B
//! machinery, so the raw mechanics are visible.

use softsku::archsim::cache::CdpPartition;
use softsku::archsim::engine::Engine;
use softsku::workloads::{Microservice, PlatformKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for platform in [PlatformKind::Skylake18, PlatformKind::Broadwell16] {
        let profile = Microservice::Web.profile(platform)?;
        let production = profile.production_config.clone();

        let run = |cfg: &softsku::archsim::engine::ServerConfig| {
            let engine =
                Engine::new(cfg.clone(), profile.stream.clone(), 42).expect("valid configuration");
            engine
                .run_window(300_000, profile.peak_utilization)
                .expect("window simulates")
        };

        let base = run(&production);
        println!(
            "\nWeb on {platform}: production (CDP off) = {:.0} MIPS, mem util {:.0}%{}",
            base.mips_total,
            base.mem_utilization * 100.0,
            if base.bandwidth_bound {
                "  [bandwidth-bound]"
            } else {
                ""
            }
        );
        println!(
            "{:>10} {:>9} {:>9} {:>9} {:>9}",
            "{data,code}", "ΔMIPS%", "LLCc", "LLCd", "lat(ns)"
        );
        for partition in CdpPartition::sweep(production.llc_ways_enabled) {
            let mut cfg = production.clone();
            cfg.cdp = Some(partition);
            let r = run(&cfg);
            println!(
                "{:>10} {:>+8.1}% {:>9.2} {:>9.2} {:>9.0}",
                partition.to_string(),
                (r.mips_total / base.mips_total - 1.0) * 100.0,
                r.counters.llc_code_mpki(),
                r.counters.llc_data_mpki(),
                r.mem_latency_ns,
            );
        }
    }
    println!(
        "\nReading: on Skylake the interior partitions win (code misses are expensive,\n\
         unhidden front-end stalls); on Broadwell every partition fights the bandwidth\n\
         wall, so the paper's µSKU leaves CDP off there."
    );
    Ok(())
}
