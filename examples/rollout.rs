//! The closed soft-SKU lifecycle: tune → compose → staged rollout → drift
//! watch → scoped re-tune.
//!
//! ```text
//! cargo run --release --example rollout
//! ```
//!
//! The paper's end state (Secs. 5.3/6/7) is a *composed* soft SKU serving a
//! service's fleet, revalidated as code pushes land. This example drives
//! one service through the whole loop: the fleet tuner finds per-knob
//! winners, the composer validates them jointly (demoting to the best
//! single knob when interactions bite), the staged rollout walks the SKU
//! through 1 % → 25 % → 100 % canary stages under Welch/MAD guardrails, and
//! the drift monitor watches the deployed fleet while an aggressive
//! code-push schedule erodes the SKU's advantage — which triggers the
//! scoped re-tune that closes the loop. Every stream derives from the one
//! base seed, so the run replays bit-identically.

use softsku::knobs::Knob;
use softsku::rollout::{PipelineConfig, RolloutPipeline};
use softsku::telemetry::SeriesKey;
use softsku::workloads::{Microservice, PlatformKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = PipelineConfig::fast_test(21);
    // Brisk code churn with mild per-push drift: slow enough to survive the
    // staged rollout, fast enough that the drift monitor's rolling windows
    // catch the decay within the example's horizon.
    config.staged.pushes_per_hour = 2.0;
    config.staged.push_magnitude = 0.005;
    config.staged.drift_per_push = 0.0005;

    let pipeline = RolloutPipeline::new(config);
    let report = pipeline.run(
        Microservice::Web,
        PlatformKind::Skylake18,
        &[Knob::Thp, Knob::Shp],
    )?;
    println!("{}", report.render());

    println!("joint validations (composed vs best single knob):");
    for v in &report.initial.composition.validations {
        println!(
            "  {:<24} gain {:+.2}%  {}/{} Better  {}",
            v.label,
            v.gain * 100.0,
            v.better_votes,
            v.replicas,
            if v.accepted { "accepted" } else { "rejected" },
        );
    }
    if let Some(drift) = &report.drift {
        println!("drift windows (relative gain over the holdback group):");
        for w in &drift.windows {
            println!(
                "  window {}  gain {:+.2}%  upper CI {:+.2}%",
                w.window,
                w.gain * 100.0,
                w.upper_ci * 100.0
            );
        }
    }

    println!("rollout.* ledger:");
    let service = report.service.name();
    for metric in [
        "rollout.stage",
        "rollout.promote",
        "rollout.violation",
        "rollout.rollback",
        "rollout.deployed",
        "rollout.drift_gain",
        "rollout.drift",
        "rollout.retune",
    ] {
        let key = SeriesKey::new(service, metric);
        let n = report.rollout_ods.len(&key);
        if n > 0 {
            println!("  {metric:<20} {n} points");
        }
    }
    Ok(())
}
