//! Tuning under constraints: Ads1.
//!
//! ```text
//! cargo run --release --example tune_ads1
//! ```
//!
//! Ads1 is the paper's constrained evaluation target: its AVX-dense ranking
//! code pays a power-budget frequency tax (it runs at 2.0 GHz with the knob
//! set to 2.2), it never calls the SHP APIs (so the SHP knob is
//! inapplicable), and its load-balancer design fails QoS below full core
//! count (so µSKU excludes the core-count sweep). This example shows how
//! those constraints flow through the configurator and what the tuned SKU
//! looks like.

use softsku::knobs::Knob;
use softsku::usku::{AbTestConfigurator, InputFile, Usku, UskuConfig};
use softsku::workloads::Microservice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = InputFile::parse(
        "microservice = ads1\nplatform = skylake18\nsweep = independent\nseed = 9\n",
    )?;

    // Inspect what the configurator plans before running anything.
    let configurator = AbTestConfigurator::new(input.clone());
    let knobs = configurator.knobs()?;
    println!("Knobs in the Ads1 sweep: {knobs:?}");
    assert!(
        !knobs.contains(&Knob::Shp),
        "SHP must be gated: Ads1 never allocates through the hugetlbfs APIs"
    );

    // The AVX tax is a property of the workload, not a knob: the effective
    // frequency under the production configuration is already 2.0 GHz.
    let profile = Microservice::Ads1.profile(input.platform)?;
    let fp = profile.stream.mix.fp;
    let effective = profile.production_config.effective_core_freq_ghz(fp);
    println!(
        "AVX power-budget tax: knob at {:.1} GHz, effective {:.1} GHz (fp fraction {:.0}%)",
        profile.production_config.core_freq_ghz,
        effective,
        fp * 100.0
    );

    // Run the sweep with reduced budgets.
    let mut config = UskuConfig::fast_test();
    config.validate_days = 0.5;
    let report = Usku::with_config(input, config).run()?;
    println!("\n{}", report.render());

    // The paper's headline for Ads1: ~+2.5% vs both stock and production,
    // with the CDP knob as the main contributor.
    if let Some((_, setting, gain)) = report
        .soft_sku
        .selections
        .iter()
        .find(|(k, _, _)| *k == Knob::Cdp)
    {
        println!(
            "CDP winner: {} ({:+.2}%) — the paper found {{9, 2}} at +2.5%",
            setting,
            gain * 100.0
        );
    }
    Ok(())
}
