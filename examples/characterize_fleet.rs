//! Fleet characterization: the paper's Sec. 2 study, reproduced.
//!
//! ```text
//! cargo run --release --example characterize_fleet
//! ```
//!
//! Runs every production microservice at its peak operating point on its
//! characterization platform and prints the system-level and architectural
//! traits the paper reports: IPC, TMAM split, cache/TLB MPKI, bandwidth,
//! context-switch time, and the QoS-capped utilization.

use softsku::archsim::engine::Engine;
use softsku::workloads::Microservice;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>5} {:>22} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6} {:>9} {:>8} {:>6}",
        "service",
        "IPC",
        "TMAM r/f/b/b (%)",
        "L1i",
        "LLCc",
        "LLCd",
        "ITLB",
        "DTLB",
        "util%",
        "bw(GB/s)",
        "lat(ns)",
        "cs%"
    );
    for service in Microservice::ALL {
        let platform = service.default_platform();
        let profile = service.profile(platform)?;
        let engine = Engine::new(
            profile.production_config.clone(),
            profile.stream.clone(),
            42,
        )?;
        let report = engine.run_window(400_000, profile.peak_utilization)?;
        let c = &report.counters;
        let t = report.tmam.as_percentages();
        println!(
            "{:<8} {:>5.2} {:>6.0}/{:>3.0}/{:>3.0}/{:>3.0} {:>12.1} {:>7.2} {:>7.2} {:>7.1} {:>6.1} {:>6.0} {:>9.1} {:>8.0} {:>6.1}",
            service.name(),
            report.ipc_core,
            t[0], t[1], t[2], t[3],
            c.l1i_code_mpki(),
            c.llc_code_mpki(),
            c.llc_data_mpki(),
            c.itlb_mpki(),
            c.dtlb_load_mpki() + c.dtlb_store_mpki(),
            profile.peak_utilization * 100.0,
            report.bandwidth_gbps,
            report.mem_latency_ns,
            report.context_switch_fraction * 100.0,
        );
    }

    println!("\nKey diversity findings (paper Sec. 2.5):");
    println!("  * Web and the Cache tiers are front-end bound; Feed1/Ads are back-end bound.");
    println!("  * Web is the only service with substantial LLC *code* misses (JIT code cache).");
    println!("  * Cache tiers spend up to ~18% of CPU time context switching.");
    println!("  * Feed1 is FP-dominated; Web and Cache execute no floating point at all.");
    println!("  * Every service under-utilizes memory bandwidth to protect its latency SLO.");
    Ok(())
}
