//! Quickstart: run µSKU end-to-end on the Web microservice.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Parses the paper's three-parameter input file, sweeps a compact knob
//! subset with the A/B tester, composes the soft SKU, and prints the report
//! (per-knob winners, composite gain vs stock/production, fleet validation).

use softsku::usku::{InputFile, Usku, UskuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Sec. 4 input file: target microservice, platform, sweep.
    let input = InputFile::parse(
        "\
# µSKU input file
microservice = web
platform     = skylake18
sweep        = independent
knobs        = thp, shp, cdp
seed         = 42
",
    )?;

    println!(
        "Tuning {} on {} with a {} sweep…\n",
        input.microservice, input.platform, input.sweep
    );

    // Paper-scale budgets take simulated hours; this quickstart uses a
    // reduced configuration that finishes in well under a minute.
    let mut config = UskuConfig::fast_test();
    config.validate_days = 1.0;
    let report = Usku::with_config(input, config).run()?;

    println!("{}", report.render());
    println!("Design-space map:\n{}", report.map.render());
    Ok(())
}
