//! Co-location and µSKU-aware scheduling (paper Sec. 7 future work).
//!
//! ```text
//! cargo run --release --example colocation
//! ```
//!
//! The paper's services run on dedicated bare metal; Sec. 7 asks what a
//! scheduler that understands each service's architectural appetite could do
//! under co-location. This example couples pairs of services through the
//! shared LLC and memory queue, shows who hurts whom, and lets the toy
//! scheduler place four services onto two servers.

use softsku::cluster::colocation::{best_pairing, ColocatedPair};
use softsku::workloads::Microservice;

const WINDOW: u64 = 150_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Pairwise interference on Skylake18 (9 + 9 cores):\n");
    println!(
        "{:<18} {:>12} {:>12} {:>10}",
        "pair", "retention A", "retention B", "socket ρ"
    );
    let pairs = [
        (Microservice::Web, Microservice::Feed1),
        (Microservice::Web, Microservice::Feed2),
        (Microservice::Feed1, Microservice::Ads1),
        (Microservice::Feed2, Microservice::Ads1),
    ];
    for (a, b) in pairs {
        let pair = ColocatedPair::new(
            a.profile(a.default_platform())?,
            b.profile(b.default_platform())?,
            9,
            9,
            WINDOW,
            42,
        )?;
        let out = pair.evaluate()?;
        println!(
            "{:<18} {:>11.1}% {:>11.1}% {:>9.0}%",
            format!("{a}+{b}"),
            out.retention_a * 100.0,
            out.retention_b * 100.0,
            out.socket_mem_utilization * 100.0
        );
    }

    println!("\nScheduling Web, Feed1, Feed2, Ads1 onto two servers:");
    let pairing = best_pairing(
        [
            Microservice::Web,
            Microservice::Feed1,
            Microservice::Feed2,
            Microservice::Ads1,
        ],
        WINDOW,
        42,
    )?;
    println!(
        "  best pairing: [{} + {}] and [{} + {}]  (total retention {:.2} / 4.00)",
        pairing.server1.0,
        pairing.server1.1,
        pairing.server2.0,
        pairing.server2.1,
        pairing.total_retention
    );
    println!(
        "\nEach service's knob preferences survive co-location — a µSKU-aware\n\
         scheduler would co-locate services whose soft SKUs agree (and whose\n\
         bandwidth appetites do not collide)."
    );
    Ok(())
}
