//! Fleet-wide tuning: all seven services on one parallel scheduler.
//!
//! ```text
//! cargo run --release --example fleet_tuning
//! ```
//!
//! The paper tunes one microservice at a time; a real deployment would tune
//! the whole fleet. This example hands every (service, platform) target to
//! the `FleetTuner`, which flattens their independent-sweep test matrices
//! into one plan and shards it across the machine's hardware threads — each
//! A/B test on its own forked environment replica, seeded from the test's
//! identity so the results match tuning each service alone, bit for bit.
//! Afterwards it prints the per-service winners and the ODS-style tuning
//! counters the scheduler records (wall-clock and simulated machine-time
//! per service).

use softsku::knobs::Knob;
use softsku::telemetry::SeriesKey;
use softsku::usku::scheduler::FleetTuner;
use softsku::usku::AbTestConfig;
use softsku_cluster::EnvConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let targets = FleetTuner::default_targets();
    let tuner = FleetTuner::new(AbTestConfig::fast_test(), EnvConfig::fast_test(), 21)
        .with_knobs(vec![Knob::Thp, Knob::Shp, Knob::CoreFrequency]);

    println!(
        "tuning {} services concurrently on {} workers...\n",
        targets.len(),
        softsku::usku::scheduler::default_workers()
    );
    let fleet = tuner.tune(&targets)?;
    println!("{}", fleet.render());

    println!("ODS tuning counters (per service):");
    for s in &fleet.services {
        let entity = format!("{}@{}", s.service, s.platform);
        let wall = fleet.ods.len(&SeriesKey::new(&entity, "tune.wall_s"));
        let sim = fleet.ods.len(&SeriesKey::new(&entity, "tune.sim_s"));
        println!(
            "  {entity:<24} tune.wall_s[{wall}]  tune.sim_s[{sim}]  total {:.2} s wall / {:.1} sim-h",
            s.wall_s,
            s.sim_time_s / 3600.0
        );
    }
    Ok(())
}
