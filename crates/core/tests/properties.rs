//! Property-based tests on µSKU's input parsing and report plumbing.

use proptest::prelude::*;
use usku::{InputFile, PerformanceMetric, SweepConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser never panics on arbitrary input; it returns a structured
    /// error or a valid configuration.
    #[test]
    fn parser_never_panics(text in "\\PC{0,400}") {
        let _ = InputFile::parse(&text);
    }

    /// Same, with line-structured noise resembling real input files.
    #[test]
    fn parser_never_panics_on_keyish_lines(
        lines in proptest::collection::vec(
            ("[a-z_]{0,12}", "[ =a-z0-9_,#]{0,24}"),
            0..12,
        )
    ) {
        let text: String = lines
            .iter()
            .map(|(k, v)| format!("{k} = {v}\n"))
            .collect();
        let _ = InputFile::parse(&text);
    }

    /// A canonical render of any parsed input re-parses to the same value
    /// (the input format round-trips).
    #[test]
    fn inputs_roundtrip_through_rendering(
        svc in prop_oneof![
            Just("web"), Just("feed1"), Just("feed2"), Just("ads1"),
            Just("ads2"), Just("cache1"), Just("cache2"),
        ],
        sweep in prop_oneof![
            Just("independent"), Just("exhaustive"), Just("hill_climbing"),
        ],
        metric in prop_oneof![Just("mips"), Just("qps"), Just("mips_per_watt")],
        seed in any::<u64>(),
    ) {
        let text = format!(
            "microservice = {svc}\nsweep = {sweep}\nmetric = {metric}\nseed = {seed}\n"
        );
        let a = InputFile::parse(&text).unwrap();
        // Re-render canonically and re-parse.
        let re = format!(
            "microservice = {}\nplatform = {}\nsweep = {}\nmetric = {}\nseed = {}\n",
            a.microservice.name().to_lowercase(),
            a.platform.to_string().to_lowercase(),
            a.sweep,
            a.metric,
            a.seed,
        );
        let b = InputFile::parse(&re).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Whitespace and comments never change the parse.
    #[test]
    fn comments_and_whitespace_are_ignored(pad in "[ \\t]{0,6}", comment in "[a-z ]{0,20}") {
        let plain = "microservice = web\nsweep = independent\n";
        let noisy = format!(
            "{pad}# {comment}\n{pad}microservice{pad}={pad}web{pad}# {comment}\n\n{pad}sweep = independent\n"
        );
        let a = InputFile::parse(plain).unwrap();
        let b = InputFile::parse(&noisy).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn enums_cover_all_names() {
    for s in ["independent", "exhaustive", "hill_climbing"] {
        let text = format!("microservice = web\nsweep = {s}\n");
        assert!(InputFile::parse(&text).is_ok(), "{s}");
    }
    for m in ["mips", "qps", "mips_per_watt"] {
        assert!(PerformanceMetric::from_name(m).is_some());
    }
    let _ = SweepConfig::Independent;
}
