//! Deterministic parallel tuning scheduler.
//!
//! The paper's prototype tunes one service at a time, one A/B test at a
//! time, and Sec. 7 concedes that the exhaustive design space "requires an
//! impractically large number of A/B tests" — serial execution is the
//! bottleneck. But every test of an independent sweep is, by construction,
//! independent: it compares one candidate setting against the production
//! baseline on its own server pair. Real fleets have thousands of such
//! pairs; this module simulates exactly that scale-out by sharding the
//! tests of a sweep across a [`std::thread::scope`] worker pool, one forked
//! [`AbEnvironment`] replica per test.
//!
//! **Determinism is the contract.** Each test's replica is seeded from
//! [`derive_seed`]`(base, service, knob, setting)` — a pure function of the
//! test's *identity*, not of scheduling. Workers pull tests from a shared
//! queue in whatever order the OS runs them, record results into
//! plan-indexed slots, and the scheduler merges those slots back into the
//! [`DesignSpaceMap`] in canonical plan order. Verdicts, maps, and composed
//! configurations are therefore bit-identical for 1, 2, or 64 workers,
//! with or without injected hazards — the property pinned down by
//! `tests/parallel_determinism.rs`.
//!
//! [`FleetTuner`] stacks a second axis on top: all services × platforms
//! tuned concurrently on one worker pool (the fleet-wide µSKU deployment
//! the paper envisions), with per-service wall-clock/throughput counters
//! recorded in an ODS-style ledger.

use crate::abtest::{AbTestConfig, AbTestResult, AbTester};
use crate::error::UskuError;
use crate::map::DesignSpaceMap;
use crate::metric::PerformanceMetric;
use crate::profile::{ArmCpiStacks, ALL_BOUNDS};
use crate::search::{compose, SearchOutcome};
use softsku_archsim::engine::ServerConfig;
use softsku_cluster::{AbEnvironment, Arm, EnvConfig};
use softsku_knobs::{Knob, KnobSetting, KnobSpace};
use softsku_telemetry::streams::IdentitySeed;
use softsku_telemetry::trace::{AttrValue, SpanHandle, TraceSink};
use softsku_telemetry::{Ods, SeriesKey};
use softsku_workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Derives the replica seed for one scheduled A/B test from the tuning base
/// seed and the test's identity `(service, knob, setting)`.
///
/// The derivation hashes the *display names* (stable, human-auditable)
/// through the seed-stream registry's [`IdentitySeed`] FNV-1a builder, so
/// the seed depends only on what is being tested — never on worker count,
/// queue position, or completion order. Two sweeps over the same space with
/// the same base seed replay bit-identically.
pub fn derive_seed(base: u64, service: &str, knob: Knob, setting_label: &str) -> u64 {
    IdentitySeed::new(base)
        .field(service)
        .field(&knob.to_string())
        .field(setting_label)
        .finish()
}

/// Seed for a joint (multi-knob) configuration: the same scheme folded over
/// every constituent setting in sweep order.
pub fn derive_joint_seed(base: u64, service: &str, settings: &[KnobSetting]) -> u64 {
    let mut h = IdentitySeed::new(base).field(service);
    for s in settings {
        h = h.field(&s.knob().to_string()).field(&s.to_string());
    }
    h.finish()
}

/// One schedulable A/B test of an independent sweep: a candidate setting
/// plus the replica seed derived from its identity.
#[derive(Debug, Clone)]
pub struct TestUnit {
    /// The candidate setting to test against the baseline.
    pub setting: KnobSetting,
    /// Replica seed ([`derive_seed`]).
    pub seed: u64,
}

/// One schedulable test of an exhaustive sweep: a whole joint configuration.
#[derive(Debug, Clone)]
pub struct JointUnit {
    /// The joint candidate configuration.
    pub config: ServerConfig,
    /// The constituent setting of every swept knob, in sweep order.
    pub settings: Vec<KnobSetting>,
    /// Replica seed ([`derive_joint_seed`]).
    pub seed: u64,
}

/// Plans the independent sweep in canonical order: knobs in the order
/// given, candidates in knob-space order, skipping the baseline's own value
/// of each knob (it is the control) — exactly the tests
/// [`crate::search::independent_sweep`] would run serially.
pub fn plan_independent(
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
    service: &str,
    base_seed: u64,
) -> Vec<TestUnit> {
    let mut plan = Vec::new();
    for &knob in knobs {
        for &setting in space.candidates(knob) {
            if KnobSetting::read_from(knob, baseline) == setting {
                continue;
            }
            plan.push(TestUnit {
                setting,
                seed: derive_seed(base_seed, service, knob, &setting.to_string()),
            });
        }
    }
    plan
}

/// Plans the exhaustive cross-product sweep in canonical (mixed-radix)
/// order, bounded by `budget` — the same enumeration, validity gating, and
/// budget accounting as the serial [`crate::search::exhaustive_sweep`].
pub fn plan_exhaustive(
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
    budget: usize,
    service: &str,
    base_seed: u64,
) -> Vec<JointUnit> {
    let candidate_lists: Vec<&[KnobSetting]> = knobs.iter().map(|&k| space.candidates(k)).collect();
    let mut plan = Vec::new();
    let mut indices = vec![0usize; knobs.len()];
    'outer: loop {
        let mut config = baseline.clone();
        let mut settings = Vec::with_capacity(knobs.len());
        let mut valid = true;
        for (i, list) in candidate_lists.iter().enumerate() {
            if list.is_empty() {
                valid = false;
                break;
            }
            let setting = list[indices[i]];
            if setting.apply(&mut config).is_err() {
                valid = false;
                break;
            }
            settings.push(setting);
        }
        if valid && config != *baseline {
            if plan.len() >= budget {
                break 'outer;
            }
            let seed = derive_joint_seed(base_seed, service, &settings);
            plan.push(JointUnit {
                config,
                settings,
                seed,
            });
        }
        let mut i = 0;
        loop {
            if i == knobs.len() {
                break 'outer;
            }
            indices[i] += 1;
            if indices[i] < candidate_lists[i].len().max(1) {
                break;
            }
            indices[i] = 0;
            i += 1;
        }
    }
    plan
}

/// What a replica closure hands back to the scheduler: the A/B verdict,
/// the simulated time consumed, and (when tracing asked for it) the
/// per-arm CPI stacks captured after the test.
#[derive(Debug)]
pub struct ReplicaOutput {
    /// The A/B verdict the replica produced.
    pub result: AbTestResult,
    /// Simulated machine-seconds the replica consumed.
    pub sim_time_s: f64,
    /// Per-arm CPI stacks ([`ArmCpiStacks::capture`]), probed only when a
    /// trace consumer wants them — results are identical either way since
    /// the probe is a read-only cache lookup.
    pub cpi: Option<ArmCpiStacks>,
}

impl ReplicaOutput {
    /// An output with no CPI profile attached.
    pub fn new(result: AbTestResult, sim_time_s: f64) -> Self {
        ReplicaOutput {
            result,
            sim_time_s,
            cpi: None,
        }
    }
}

/// Completed run of one scheduled unit.
#[derive(Debug)]
pub struct ReplicaRun {
    /// The A/B verdict the replica produced.
    pub result: AbTestResult,
    /// Simulated machine-seconds the replica consumed.
    pub sim_time_s: f64,
    /// Real wall-clock seconds the test took on its worker.
    pub wall_s: f64,
    /// Per-arm CPI stacks, when the closure probed them.
    pub cpi: Option<ArmCpiStacks>,
}

/// Runs arbitrary `units` on a scoped worker pool and returns one result
/// per unit **in plan order**, regardless of which worker ran what or when
/// it finished. Workers pull from a shared atomic cursor (work stealing
/// keeps them busy through uneven task lengths) and deposit into
/// plan-indexed slots; nothing about the output depends on scheduling.
///
/// This is the determinism-preserving primitive every parallel consumer in
/// the workspace builds on: [`run_replicas`] wraps it for A/B replicas, and
/// the rollout coordinator drives concurrent staged fleets through it
/// directly (its per-service runtimes are not A/B tests, so the result type
/// is generic).
///
/// Errors are also deterministic: every unit either completes or the pool
/// drains early, and the error reported is the one at the lowest plan
/// index, not the first to lose a race.
///
/// # Errors
///
/// Returns the lowest-plan-index error produced by `run_one`, if any.
pub fn run_tasks<T, R, F>(units: &[T], workers: usize, run_one: F) -> Result<Vec<R>, UskuError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> Result<R, UskuError> + Sync,
{
    let workers = workers.max(1).min(units.len().max(1));
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Mutex<Vec<Option<Result<R, UskuError>>>> =
        Mutex::new((0..units.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let outcome = run_one(&units[i]);
                if outcome.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                // detlint::allow(panic_path): lock poisoning requires a prior
                // worker panic; propagating it is the correct response.
                slots.lock().expect("no panics hold the slot lock")[i] = Some(outcome);
            });
        }
    });

    let mut runs = Vec::with_capacity(units.len());
    // detlint::allow(panic_path): scope guarantees every worker has joined;
    // a poisoned mutex here means a worker already panicked.
    for slot in slots.into_inner().expect("workers joined") {
        match slot {
            Some(Ok(run)) => runs.push(run),
            Some(Err(e)) => return Err(e),
            // A later unit may be unstarted after an early failure; only
            // reachable when some slot errored, which the scan above hits
            // first only if it sits at a lower index — so scan on.
            None => break,
        }
    }
    Ok(runs)
}

/// [`run_tasks`] specialized to A/B replicas: wraps each unit's
/// [`ReplicaOutput`] into a [`ReplicaRun`] with the wall-clock seconds its
/// worker spent on it.
///
/// # Errors
///
/// Returns the lowest-plan-index error produced by `run_one`, if any.
pub fn run_replicas<T, F>(
    units: &[T],
    workers: usize,
    run_one: F,
) -> Result<Vec<ReplicaRun>, UskuError>
where
    T: Sync,
    F: Fn(&T) -> Result<ReplicaOutput, UskuError> + Sync,
{
    run_tasks(units, workers, |unit| {
        // detlint::allow(wall_clock): tune.wall_s telemetry only —
        // wall time is reported to ODS, never fed into a result.
        let t0 = Instant::now();
        run_one(unit).map(|out| ReplicaRun {
            result: out.result,
            sim_time_s: out.sim_time_s,
            wall_s: t0.elapsed().as_secs_f64(),
            cpi: out.cpi,
        })
    })
}

/// Records one completed A/B test as a trace span on the sink's current
/// track: name = the candidate setting, interval = `[start_s, start_s +
/// sim_time_s)` on the campaign's cumulative sim-time axis, attributes =
/// the full statistical record (verdict, gain, p-value, relative CI,
/// sample counts, replica seed) plus both arms' TMAM shares and the bound
/// the candidate relieved, when the replica probed CPI stacks.
///
/// Wall-clock time is deliberately absent: spans are part of the
/// deterministic view, and `wall_s` is telemetry-only by the workspace
/// contract.
pub fn trace_test_span(
    sink: &mut TraceSink,
    service: &str,
    platform: &str,
    run: &ReplicaRun,
    seed: u64,
    start_s: f64,
    confidence: f64,
) -> SpanHandle {
    if !sink.is_enabled() {
        return SpanHandle::NONE;
    }
    let r = &run.result;
    let h = sink.open("abtest", &r.setting.to_string(), start_s);
    sink.attr(h, "service", AttrValue::Str(service.to_string()));
    sink.attr(h, "platform", AttrValue::Str(platform.to_string()));
    sink.attr(h, "knob", AttrValue::Str(r.setting.knob().to_string()));
    sink.attr(h, "setting", AttrValue::Str(r.setting.to_string()));
    sink.attr(h, "verdict", AttrValue::Str(r.verdict.label().to_string()));
    if let Some(rel) = r.relative_diff() {
        sink.attr(h, "gain", AttrValue::F64(rel));
    }
    if let Some(w) = &r.welch {
        sink.attr(h, "p_value", AttrValue::F64(w.p_value));
        if let (Some(b), Some(c)) = (&r.baseline, &r.candidate) {
            if b.mean() != 0.0 {
                let (lo, hi) = w.diff_ci(c, b, confidence);
                sink.attr(h, "ci_lo", AttrValue::F64(lo / b.mean()));
                sink.attr(h, "ci_hi", AttrValue::F64(hi / b.mean()));
            }
        }
    }
    sink.attr(h, "samples", AttrValue::Int(r.samples as i64));
    sink.attr(h, "attempts", AttrValue::Int(r.attempts as i64));
    sink.attr(
        h,
        "rejected_outliers",
        AttrValue::Int(r.rejected_outliers as i64),
    );
    sink.attr(h, "seed", AttrValue::Str(format!("{seed:#018x}")));
    if let Some(cpi) = &run.cpi {
        for (arm, stack) in [("baseline", cpi.baseline), ("candidate", cpi.candidate)] {
            for bound in ALL_BOUNDS {
                sink.attr(
                    h,
                    &format!("tmam.{arm}.{}", bound.label()),
                    AttrValue::F64(stack.share(bound)),
                );
            }
        }
        if let Some((bound, drop)) = cpi.relieved() {
            sink.attr(
                h,
                "tmam.relieved",
                AttrValue::Str(bound.label().to_string()),
            );
            sink.attr(h, "tmam.relieved_drop", AttrValue::F64(drop));
        }
    }
    sink.close(h, start_s + run.sim_time_s);
    h
}

/// Pre-evaluates the baseline load curve on the proto environment so every
/// fork inherits it from the cloned arm instead of re-running the engine.
/// Best-effort: a replica that misses the warm cache just evaluates lazily.
fn warm_baseline(proto: &mut AbEnvironment, baseline: &ServerConfig) {
    let arm = proto.arm_mut(Arm::A);
    if arm.reconfigure(baseline.clone(), false).is_ok() {
        let _ = arm.mips(1.0);
    }
}

/// The number of workers to use when the caller does not care: one per
/// available hardware thread.
pub fn default_workers() -> NonZeroUsize {
    const FALLBACK: NonZeroUsize = match NonZeroUsize::new(4) {
        Some(n) => n,
        None => NonZeroUsize::MIN,
    };
    std::thread::available_parallelism().unwrap_or(FALLBACK)
}

/// Scheduling parameters shared by the parallel sweeps: the base seed the
/// per-test replica seeds derive from, and the worker-pool size. Only the
/// seed affects results; workers affect wall-clock alone.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    /// Base seed for [`derive_seed`] / [`derive_joint_seed`].
    pub base_seed: u64,
    /// Worker-pool size.
    pub workers: NonZeroUsize,
}

impl Schedule {
    /// A schedule with the given base seed and one worker per available
    /// hardware thread.
    pub fn new(base_seed: u64) -> Self {
        Schedule {
            base_seed,
            workers: default_workers(),
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: NonZeroUsize) -> Self {
        self.workers = workers;
        self
    }
}

/// Parallel independent per-knob sweep.
///
/// Runs the same test plan as [`crate::search::independent_sweep`], but
/// each test executes on its own [`AbEnvironment::fork`] replica seeded by
/// [`derive_seed`], sharded across the schedule's worker pool. Results are
/// merged into the [`DesignSpaceMap`] in canonical plan order, so the
/// outcome — every verdict, the map, and the composed `best_config` — is
/// bit-identical for any worker count. With one worker this *is* the
/// serial sweep under the derived-seed scheme (the reference the
/// determinism suite compares against).
///
/// # Errors
///
/// Propagates tester/environment errors (deterministically: the failing
/// unit at the lowest plan index wins).
pub fn parallel_independent_sweep(
    tester: &AbTester,
    proto: &mut AbEnvironment,
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
    schedule: Schedule,
) -> Result<SearchOutcome, UskuError> {
    let service = proto.profile().service.name().to_string();
    let plan = plan_independent(baseline, space, knobs, &service, schedule.base_seed);
    warm_baseline(proto, baseline);
    let proto = &*proto;
    let runs = run_replicas(&plan, schedule.workers.get(), |unit: &TestUnit| {
        let mut env = proto.fork(unit.seed);
        let result = tester.run(&mut env, baseline, unit.setting)?;
        let sim_time_s = env.time_s();
        Ok(ReplicaOutput::new(result, sim_time_s))
    })?;
    let mut map = DesignSpaceMap::new();
    for run in runs {
        map.record(run.result);
    }
    let (best_config, selected) = compose(baseline, &map, knobs);
    Ok(SearchOutcome {
        map,
        best_config,
        selected,
    })
}

/// Parallel exhaustive cross-product sweep over a (small) knob subset.
///
/// Same enumeration and budget as [`crate::search::exhaustive_sweep`], with
/// each joint configuration measured on its own forked replica. Joint
/// results land in the map's joint ledger in canonical order; the winner is
/// the earliest-planned maximum gain, so it cannot depend on which worker
/// finished first.
///
/// # Errors
///
/// Propagates tester/environment errors.
pub fn parallel_exhaustive_sweep(
    tester: &AbTester,
    proto: &mut AbEnvironment,
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
    budget: usize,
    schedule: Schedule,
) -> Result<SearchOutcome, UskuError> {
    let service = proto.profile().service.name().to_string();
    let plan = plan_exhaustive(baseline, space, knobs, budget, &service, schedule.base_seed);
    warm_baseline(proto, baseline);
    let proto = &*proto;
    let runs = run_replicas(&plan, schedule.workers.get(), |unit: &JointUnit| {
        let mut env = proto.fork(unit.seed);
        let needs_reboot = unit.config.active_cores != baseline.active_cores
            || unit.config.shp_pages != baseline.shp_pages;
        // detlint::allow(panic_path): plan_exhaustive emits only non-empty
        // joint units; an empty one is a planner bug worth aborting on.
        let label = *unit.settings.last().expect("joint units are non-empty");
        let result = tester.run_config(&mut env, baseline, &unit.config, needs_reboot, label)?;
        let sim_time_s = env.time_s();
        Ok(ReplicaOutput::new(result, sim_time_s))
    })?;
    let mut map = DesignSpaceMap::new();
    for (unit, run) in plan.iter().zip(runs) {
        map.record_joint(unit.settings.clone(), run.result);
    }
    let (best_config, selected) = match map.best_joint() {
        Some((joint, gain)) => {
            let mut config = baseline.clone();
            let mut selected = Vec::with_capacity(joint.settings.len());
            for s in &joint.settings {
                // detlint::allow(panic_path): every planned setting was
                // validated against the same baseline when the plan was built.
                s.apply(&mut config).expect("planned settings are valid");
                selected.push((s.knob(), *s, gain));
            }
            (config, selected)
        }
        None => (baseline.clone(), Vec::new()),
    };
    Ok(SearchOutcome {
        map,
        best_config,
        selected,
    })
}

/// The tuning outcome for one (service, platform) fleet target.
#[derive(Debug)]
pub struct ServiceTuning {
    /// The tuned service.
    pub service: Microservice,
    /// The platform it was tuned on.
    pub platform: PlatformKind,
    /// The sweep outcome (map, best config, selections).
    pub outcome: SearchOutcome,
    /// Simulated machine-seconds consumed across this service's replicas
    /// (the fleet "cost" of the tuning campaign).
    pub sim_time_s: f64,
    /// Real wall-clock seconds spent on this service's tests, summed over
    /// workers.
    pub wall_s: f64,
}

/// Outcome of a fleet-wide tuning campaign.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-target results, in the order the targets were given.
    pub services: Vec<ServiceTuning>,
    /// ODS-style per-service counters: series
    /// `<service>@<platform>/tune.wall_s` and `tune.sim_s` carry one point
    /// per test (indexed by canonical plan position).
    pub ods: Ods,
    /// End-to-end wall-clock of the whole campaign, seconds.
    pub wall_s: f64,
}

impl FleetOutcome {
    /// Total A/B tests run across the fleet.
    pub fn test_count(&self) -> usize {
        self.services
            .iter()
            .map(|s| s.outcome.map.test_count())
            .sum()
    }

    /// Fleet-wide tuning throughput, tests per wall-clock second.
    pub fn tests_per_second(&self) -> f64 {
        self.test_count() as f64 / self.wall_s.max(1e-9)
    }

    /// Renders a per-service summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fleet tuning — {} tests in {:.2} s wall ({:.1} tests/s)\n",
            self.test_count(),
            self.wall_s,
            self.tests_per_second()
        );
        for s in &self.services {
            out.push_str(&format!(
                "  {:<8} on {:<12} {:>3} tests  {:>7} samples  {:>6.1} sim-h  {:>6.2} s wall  {} knobs selected\n",
                s.service.to_string(),
                s.platform.to_string(),
                s.outcome.map.test_count(),
                s.outcome.map.sample_count(),
                s.sim_time_s / 3600.0,
                s.wall_s,
                s.outcome.selected.len()
            ));
            for (knob, setting, gain) in &s.outcome.selected {
                out.push_str(&format!(
                    "      {:<16} -> {:<24} ({:+.2}%)\n",
                    knob.to_string(),
                    setting.to_string(),
                    gain * 100.0
                ));
            }
        }
        out
    }
}

/// Tunes every fleet target concurrently on one worker pool.
///
/// This is the fleet-scale front-end the ROADMAP's north star asks for: the
/// full independent-sweep test matrix of all targets (each service with its
/// constraint-gated knob set and its recommended metric) is flattened into
/// one global plan and executed by [`run_replicas`] — so a long Web sweep
/// overlaps with short Cache sweeps instead of serializing behind them.
/// Per-test replica seeds are derived from `(service, knob, setting)`, so
/// fleet results are bit-identical to tuning each service alone.
#[derive(Debug, Clone)]
pub struct FleetTuner {
    abtest: AbTestConfig,
    env: EnvConfig,
    base_seed: u64,
    workers: NonZeroUsize,
    knobs: Option<Vec<Knob>>,
}

impl FleetTuner {
    /// Creates a fleet tuner with the given A/B stopping rules and
    /// environment parameters, using every available hardware thread.
    pub fn new(abtest: AbTestConfig, env: EnvConfig, base_seed: u64) -> Self {
        FleetTuner {
            abtest,
            env,
            base_seed,
            workers: default_workers(),
            knobs: None,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: NonZeroUsize) -> Self {
        self.workers = workers;
        self
    }

    /// Restricts the sweep to a knob subset (intersected with each
    /// service's active knobs); `None` sweeps every active knob.
    pub fn with_knobs(mut self, knobs: Vec<Knob>) -> Self {
        self.knobs = Some(knobs);
        self
    }

    /// Every service on its first supported platform — the paper's
    /// seven-service fleet.
    pub fn default_targets() -> Vec<(Microservice, PlatformKind)> {
        Microservice::ALL
            .iter()
            .map(|&s| (s, s.supported_platforms()[0]))
            .collect()
    }

    /// Tunes all `targets` concurrently and returns per-service outcomes
    /// plus the ODS tuning-telemetry ledger.
    ///
    /// # Errors
    ///
    /// Workload-resolution, environment, and tester errors.
    pub fn tune(
        &self,
        targets: &[(Microservice, PlatformKind)],
    ) -> Result<FleetOutcome, UskuError> {
        self.tune_traced(targets, &mut TraceSink::disabled())
    }

    /// [`FleetTuner::tune`] with observability: every A/B test becomes a
    /// span under a per-target campaign span, on a `tune:<service>@<platform>`
    /// track whose time axis is the campaign's *cumulative simulated
    /// machine-seconds* (test N starts where test N−1's sim time ended).
    /// When the sink is enabled, replicas also probe per-arm CPI stacks so
    /// each span carries TMAM attribution ([`trace_test_span`]).
    ///
    /// Spans are recorded here, post-merge, in canonical plan order — never
    /// from workers — so the trace is bit-identical for any worker count,
    /// and results are bit-identical with tracing on or off.
    ///
    /// # Errors
    ///
    /// Workload-resolution, environment, and tester errors.
    pub fn tune_traced(
        &self,
        targets: &[(Microservice, PlatformKind)],
        sink: &mut TraceSink,
    ) -> Result<FleetOutcome, UskuError> {
        struct Target {
            service: Microservice,
            platform: PlatformKind,
            baseline: ServerConfig,
            tester: AbTester,
            knobs: Vec<Knob>,
            proto: AbEnvironment,
        }
        /// One entry of the flattened fleet-wide plan.
        struct FleetUnit {
            target_idx: usize,
            unit: TestUnit,
        }

        // detlint::allow(wall_clock): tune.wall_s telemetry only — reported
        // to ODS for operators, never fed into a simulated result.
        let t0 = Instant::now();
        let mut prepared = Vec::with_capacity(targets.len());
        let mut plan: Vec<FleetUnit> = Vec::new();
        for (target_idx, &(service, platform)) in targets.iter().enumerate() {
            let profile = service.profile(platform)?;
            let baseline = profile.production_config.clone();
            let space = KnobSpace::for_platform(&baseline.platform, profile.constraints);
            let mut knobs = space.active_knobs();
            if let Some(subset) = &self.knobs {
                knobs.retain(|k| subset.contains(k));
            }
            // The proto replica every per-test fork clones; its seed is
            // itself derived from the target identity.
            let env_seed = derive_seed(
                self.base_seed,
                service.name(),
                Knob::CoreFrequency,
                &format!("fleet-proto@{platform}"),
            );
            let mut proto = AbEnvironment::new(profile, self.env, env_seed)?;
            warm_baseline(&mut proto, &baseline);
            let units = plan_independent(&baseline, &space, &knobs, service.name(), self.base_seed);
            plan.extend(units.into_iter().map(|unit| FleetUnit { target_idx, unit }));
            prepared.push(Target {
                service,
                platform,
                baseline,
                tester: AbTester::new(self.abtest, PerformanceMetric::recommended_for(service)),
                knobs,
                proto,
            });
        }

        let prepared_ref = &prepared;
        let probe_cpi = sink.is_enabled();
        let runs = run_replicas(&plan, self.workers.get(), |fu: &FleetUnit| {
            let target = &prepared_ref[fu.target_idx];
            let mut env = target.proto.fork(fu.unit.seed);
            let result = target
                .tester
                .run(&mut env, &target.baseline, fu.unit.setting)?;
            // Read sim time before the (read-only) CPI probe so traced and
            // untraced runs report identical numbers.
            let sim_time_s = env.time_s();
            let mut out = ReplicaOutput::new(result, sim_time_s);
            if probe_cpi {
                out.cpi = ArmCpiStacks::capture(&mut env);
            }
            Ok(out)
        })?;

        // Reassemble per target in canonical order and lay down the ODS
        // tuning counters (one point per test, indexed by plan position).
        let mut ods = Ods::new();
        let mut maps: Vec<DesignSpaceMap> =
            (0..prepared.len()).map(|_| DesignSpaceMap::new()).collect();
        let mut sim_time: Vec<f64> = vec![0.0; prepared.len()];
        let mut wall: Vec<f64> = vec![0.0; prepared.len()];
        let mut per_target_idx: Vec<usize> = vec![0; prepared.len()];
        for (fu, run) in plan.iter().zip(&runs) {
            let target = &prepared[fu.target_idx];
            let entity = format!("{}@{}", target.service, target.platform);
            let idx = per_target_idx[fu.target_idx];
            per_target_idx[fu.target_idx] += 1;
            ods.append(
                &SeriesKey::new(&entity, "tune.wall_s"),
                idx as f64,
                run.wall_s,
            )
            // detlint::allow(panic_path): the per-target index increments
            // monotonically, so the ODS append cannot be out of order.
            .expect("plan index is monotone per series");
            ods.append(
                &SeriesKey::new(&entity, "tune.sim_s"),
                idx as f64,
                run.sim_time_s,
            )
            // detlint::allow(panic_path): same monotone index as above.
            .expect("plan index is monotone per series");
            sim_time[fu.target_idx] += run.sim_time_s;
            wall[fu.target_idx] += run.wall_s;
            maps[fu.target_idx].record(run.result.clone());
        }

        // Lay down the trace: one campaign span per target on its own
        // track, one child span per test at its cumulative sim-time offset.
        // Plan order groups units by target, so campaigns never interleave.
        if sink.is_enabled() {
            let mut cursor: Vec<f64> = vec![0.0; prepared.len()];
            let mut open: Option<(usize, SpanHandle)> = None;
            for (fu, run) in plan.iter().zip(&runs) {
                if open.map(|(t, _)| t) != Some(fu.target_idx) {
                    if let Some((t, h)) = open.take() {
                        sink.close(h, sim_time[t]);
                    }
                    let target = &prepared[fu.target_idx];
                    let entity = format!("{}@{}", target.service.name(), target.platform);
                    let track = sink.track(&format!("tune:{entity}"));
                    sink.set_track(track);
                    let h = sink.open("tune", &format!("campaign {entity}"), 0.0);
                    sink.attr(
                        h,
                        "service",
                        AttrValue::Str(target.service.name().to_string()),
                    );
                    sink.attr(h, "platform", AttrValue::Str(target.platform.to_string()));
                    open = Some((fu.target_idx, h));
                }
                let target = &prepared[fu.target_idx];
                trace_test_span(
                    sink,
                    target.service.name(),
                    &target.platform.to_string(),
                    run,
                    fu.unit.seed,
                    cursor[fu.target_idx],
                    self.abtest.confidence,
                );
                cursor[fu.target_idx] += run.sim_time_s;
            }
            if let Some((t, h)) = open.take() {
                sink.close(h, sim_time[t]);
            }
        }

        let mut services = Vec::with_capacity(prepared.len());
        for (i, target) in prepared.into_iter().enumerate() {
            let map = std::mem::take(&mut maps[i]);
            let (best_config, selected) = compose(&target.baseline, &map, &target.knobs);
            services.push(ServiceTuning {
                service: target.service,
                platform: target.platform,
                outcome: SearchOutcome {
                    map,
                    best_config,
                    selected,
                },
                sim_time_s: sim_time[i],
                wall_s: wall[i],
            });
        }
        Ok(FleetOutcome {
            services,
            ods,
            wall_s: t0.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::PerformanceMetric;
    use softsku_knobs::WorkloadConstraints;
    use softsku_workloads::{Microservice, PlatformKind};

    fn setup() -> (AbTester, AbEnvironment, ServerConfig, KnobSpace) {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let space = KnobSpace::for_platform(
            &profile.production_config.platform,
            WorkloadConstraints::permissive(),
        );
        let env = AbEnvironment::new(profile, EnvConfig::fast_test(), 21).unwrap();
        let tester = AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips);
        (tester, env, baseline, space)
    }

    #[test]
    fn seeds_depend_on_identity_not_position() {
        let a = derive_seed(7, "Web", Knob::Thp, "thp=always");
        let b = derive_seed(7, "Web", Knob::Thp, "thp=always");
        assert_eq!(a, b, "same identity, same seed");
        assert_ne!(a, derive_seed(8, "Web", Knob::Thp, "thp=always"));
        assert_ne!(a, derive_seed(7, "Ads1", Knob::Thp, "thp=always"));
        assert_ne!(a, derive_seed(7, "Web", Knob::Shp, "thp=always"));
        assert_ne!(a, derive_seed(7, "Web", Knob::Thp, "thp=never"));
        // Separator discipline: shifting a character across the field
        // boundary must change the hash.
        assert_ne!(
            derive_seed(7, "ab", Knob::Thp, "c"),
            derive_seed(7, "a", Knob::Thp, "bc")
        );
    }

    #[test]
    fn independent_plan_is_canonical_and_skips_the_control() {
        let (_, env, baseline, space) = setup();
        let knobs = [Knob::Thp, Knob::Shp];
        let service = env.profile().service.name();
        let plan = plan_independent(&baseline, &space, &knobs, service, 5);
        let replay = plan_independent(&baseline, &space, &knobs, service, 5);
        assert_eq!(plan.len(), replay.len());
        for (a, b) in plan.iter().zip(&replay) {
            assert_eq!(a.setting, b.setting);
            assert_eq!(a.seed, b.seed);
        }
        // The baseline's own settings are the control and never planned.
        for unit in &plan {
            assert_ne!(
                KnobSetting::read_from(unit.setting.knob(), &baseline),
                unit.setting
            );
        }
        // Seeds are pairwise distinct across the plan.
        let mut seeds: Vec<u64> = plan.iter().map(|u| u.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), plan.len());
    }

    #[test]
    fn exhaustive_plan_matches_serial_budget_semantics() {
        let (_, env, baseline, space) = setup();
        let service = env.profile().service.name();
        let plan = plan_exhaustive(&baseline, &space, &[Knob::Thp], 2, service, 5);
        assert!(plan.len() <= 2);
        for unit in &plan {
            assert_eq!(unit.settings.len(), 1);
            assert_ne!(unit.config, baseline);
        }
    }

    #[test]
    fn parallel_sweep_finds_the_same_winners_as_the_serial_strategy() {
        let (tester, mut env, baseline, space) = setup();
        let out = parallel_independent_sweep(
            &tester,
            &mut env,
            &baseline,
            &space,
            &[Knob::Thp, Knob::Shp],
            Schedule::new(21).with_workers(NonZeroUsize::new(4).unwrap()),
        )
        .unwrap();
        // Same winners the serial independent_sweep test pins down.
        assert_eq!(out.best_config.shp_pages, 300);
        assert_eq!(out.best_config.thp, softsku_archsim::ThpMode::AlwaysOn);
        assert!(out.map.test_count() >= 7);
    }

    #[test]
    fn fleet_tuner_tunes_multiple_services_concurrently() {
        let tuner = FleetTuner::new(AbTestConfig::fast_test(), EnvConfig::fast_test(), 11)
            .with_knobs(vec![Knob::Thp, Knob::CoreFrequency])
            .with_workers(NonZeroUsize::new(4).unwrap());
        let targets = [
            (Microservice::Web, PlatformKind::Skylake18),
            (Microservice::Cache2, PlatformKind::Skylake18),
        ];
        let fleet = tuner.tune(&targets).unwrap();
        assert_eq!(fleet.services.len(), 2);
        assert!(fleet.test_count() > 0);
        assert!(fleet.wall_s > 0.0);
        for s in &fleet.services {
            assert!(s.outcome.map.test_count() > 0, "{}", s.service);
            assert!(s.sim_time_s > 0.0);
            let entity = format!("{}@{}", s.service, s.platform);
            let key = SeriesKey::new(&entity, "tune.wall_s");
            assert_eq!(fleet.ods.len(&key), s.outcome.map.test_count());
        }
        let rendered = fleet.render();
        assert!(rendered.contains("fleet tuning"));
        assert!(rendered.contains("Web"));
    }
}
