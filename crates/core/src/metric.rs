//! Performance metrics for A/B decisions.
//!
//! The µSKU prototype "estimates performance by measuring the Millions of
//! Instructions per Second (MIPS) rate … which we have confirmed is
//! proportional to several key microservices' throughput (e.g., Web and
//! Ads1)" (paper Sec. 4). MIPS is invalid for the Cache tiers, whose
//! exception handlers make instructions-per-query vary with performance; the
//! Sec. 7 extension measures QPS instead. Both metrics are implemented here.

use crate::error::UskuError;
use crate::objective::PowerModel;
use softsku_cluster::{AbEnvironment, Arm};

/// Which observable the A/B tester optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PerformanceMetric {
    /// Millions of instructions per second (the paper's prototype metric).
    #[default]
    Mips,
    /// Queries per second (the Sec. 7 extension; required for services whose
    /// instruction counts are performance-introspective, like Cache).
    Qps,
    /// Throughput per watt (the Sec. 7 energy extension): MIPS divided by
    /// the arm's modeled wall power, so the A/B decision trades performance
    /// against the power cost of the configuration it came from.
    MipsPerWatt,
}

impl PerformanceMetric {
    /// Parses a metric name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "mips" => Some(PerformanceMetric::Mips),
            "qps" => Some(PerformanceMetric::Qps),
            "mips_per_watt" | "perf_per_watt" => Some(PerformanceMetric::MipsPerWatt),
            _ => None,
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PerformanceMetric::Mips => "mips",
            PerformanceMetric::Qps => "qps",
            PerformanceMetric::MipsPerWatt => "mips_per_watt",
        }
    }

    /// The metric appropriate for a service: QPS for the Cache tiers, MIPS
    /// otherwise (Sec. 7's recommendation).
    pub fn recommended_for(service: softsku_workloads::Microservice) -> Self {
        match service {
            softsku_workloads::Microservice::Cache1 | softsku_workloads::Microservice::Cache2 => {
                PerformanceMetric::Qps
            }
            _ => PerformanceMetric::Mips,
        }
    }

    /// Takes one paired measurement `(arm_a, arm_b)` from the environment.
    ///
    /// # Errors
    ///
    /// Propagates environment/engine errors.
    pub fn sample(self, env: &mut AbEnvironment) -> Result<(f64, f64), UskuError> {
        let pair = env.sample_pair()?;
        match self {
            PerformanceMetric::Mips => Ok((pair.a_mips, pair.b_mips)),
            PerformanceMetric::Qps => {
                // QPS derives from the same throughput measurement through
                // each arm's path length; the pair sample already carries the
                // correlated noise.
                let qa = env.qps_now(Arm::A)?;
                let qb = env.qps_now(Arm::B)?;
                // Scale by the same relative noise the MIPS channel saw.
                let mean_a = pair.a_mips;
                let mean_b = pair.b_mips;
                let base_a = env.arm_mut(Arm::A).mips(pair.load)?;
                let base_b = env.arm_mut(Arm::B).mips(pair.load)?;
                let na = if base_a > 0.0 { mean_a / base_a } else { 1.0 };
                let nb = if base_b > 0.0 { mean_b / base_b } else { 1.0 };
                Ok((qa * na, qb * nb))
            }
            PerformanceMetric::MipsPerWatt => {
                let model = PowerModel::default();
                let watts = |env: &mut AbEnvironment, arm: Arm| -> Result<f64, UskuError> {
                    let cfg = env.arm_config(arm).clone();
                    let report = env.arm_mut(arm).peak_report()?;
                    Ok(model.watts(&cfg, &report, pair.load))
                };
                let wa = watts(env, Arm::A)?;
                let wb = watts(env, Arm::B)?;
                Ok((pair.a_mips / wa.max(1.0), pair.b_mips / wb.max(1.0)))
            }
        }
    }
}

impl std::fmt::Display for PerformanceMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_cluster::EnvConfig;
    use softsku_workloads::{Microservice, PlatformKind};

    #[test]
    fn names_roundtrip() {
        for m in [
            PerformanceMetric::Mips,
            PerformanceMetric::Qps,
            PerformanceMetric::MipsPerWatt,
        ] {
            assert_eq!(PerformanceMetric::from_name(m.name()), Some(m));
        }
        assert_eq!(PerformanceMetric::from_name("latency"), None);
    }

    #[test]
    fn recommendation_matches_paper() {
        assert_eq!(
            PerformanceMetric::recommended_for(Microservice::Web),
            PerformanceMetric::Mips
        );
        assert_eq!(
            PerformanceMetric::recommended_for(Microservice::Cache1),
            PerformanceMetric::Qps
        );
    }

    #[test]
    fn both_metrics_sample_positive_pairs() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut env = AbEnvironment::new(profile, EnvConfig::fast_test(), 5).unwrap();
        for metric in [
            PerformanceMetric::Mips,
            PerformanceMetric::Qps,
            PerformanceMetric::MipsPerWatt,
        ] {
            let (a, b) = metric.sample(&mut env).unwrap();
            assert!(a > 0.0 && b > 0.0, "{metric}: ({a}, {b})");
        }
    }
}
