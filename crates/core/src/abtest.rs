//! The A/B tester (paper Sec. 4, Fig. 13).
//!
//! For each point of the sweep, the tester applies the knob setting to the
//! candidate arm, discards a warm-up phase "to avoid cold start bias",
//! records spaced performance samples, and stops when 95 % confidence is
//! achieved — or gives up after ~30 000 observations and declares no
//! statistically significant difference. QoS-violating settings are
//! discarded, and reboot-requiring settings are skipped for services that
//! cannot tolerate them.

use crate::error::UskuError;
use crate::metric::PerformanceMetric;
use softsku_cluster::{AbEnvironment, Arm, ClusterError};
use softsku_knobs::KnobSetting;
use softsku_telemetry::stats::{welch_test, RunningStats, Summary, WelchResult};

/// Stopping rules for one A/B test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbTestConfig {
    /// Warm-up samples discarded after a configuration change.
    pub warmup_samples: usize,
    /// Minimum samples per arm before any verdict.
    pub min_samples: usize,
    /// Sample budget; reaching it ⇒ "no statistically significant
    /// difference" (the paper's ~30 000-observation rule).
    pub max_samples: usize,
    /// Confidence level for the Welch test (the paper uses 95 %).
    pub confidence: f64,
    /// Relative difference below which two settings are considered
    /// practically indistinguishable even if statistically significant.
    pub min_effect: f64,
    /// How many samples between statistical checks.
    pub batch: usize,
}

impl Default for AbTestConfig {
    fn default() -> Self {
        AbTestConfig {
            warmup_samples: 12,
            min_samples: 120,
            max_samples: 30_000,
            confidence: 0.95,
            min_effect: 0.0015,
            batch: 60,
        }
    }
}

impl AbTestConfig {
    /// A small-budget configuration for unit tests.
    pub fn fast_test() -> Self {
        AbTestConfig {
            warmup_samples: 4,
            min_samples: 60,
            max_samples: 2_000,
            confidence: 0.95,
            min_effect: 0.002,
            batch: 30,
        }
    }
}

/// Outcome category of one A/B comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The candidate beats the baseline with statistical significance.
    Better {
        /// Relative gain of candidate over baseline.
        gain: f64,
    },
    /// The candidate loses with statistical significance.
    Worse {
        /// Relative loss (negative value).
        loss: f64,
    },
    /// No statistically significant difference within the sample budget.
    NoDifference,
    /// The setting violates the service's QoS and was discarded (paper
    /// Sec. 7: "we discard parts of the µSKU tuning space that lead to
    /// violations").
    QosViolated,
    /// The setting requires a reboot the service cannot tolerate.
    SkippedRebootIntolerant,
}

impl Verdict {
    /// Relative gain if positive and significant, else `None`.
    pub fn gain(&self) -> Option<f64> {
        match self {
            Verdict::Better { gain } => Some(*gain),
            _ => None,
        }
    }
}

/// Full record of one A/B test.
#[derive(Debug, Clone)]
pub struct AbTestResult {
    /// The setting that was applied to the candidate arm.
    pub setting: KnobSetting,
    /// Baseline-arm sample summary.
    pub baseline: Option<Summary>,
    /// Candidate-arm sample summary.
    pub candidate: Option<Summary>,
    /// Welch test at stop time.
    pub welch: Option<WelchResult>,
    /// The verdict.
    pub verdict: Verdict,
    /// Samples collected per arm.
    pub samples: usize,
}

impl AbTestResult {
    /// Relative mean difference (candidate/baseline − 1) when measured.
    pub fn relative_diff(&self) -> Option<f64> {
        match (&self.baseline, &self.candidate) {
            (Some(a), Some(b)) if a.mean() != 0.0 => Some(b.mean() / a.mean() - 1.0),
            _ => None,
        }
    }
}

/// Runs A/B tests against an [`AbEnvironment`].
#[derive(Debug)]
pub struct AbTester {
    config: AbTestConfig,
    metric: PerformanceMetric,
}

impl AbTester {
    /// Creates a tester with the given stopping rules and metric.
    pub fn new(config: AbTestConfig, metric: PerformanceMetric) -> Self {
        AbTester { config, metric }
    }

    /// The stopping rules in effect.
    pub fn config(&self) -> &AbTestConfig {
        &self.config
    }

    /// Tests `setting` applied on top of `baseline_config` against
    /// `baseline_config` itself.
    ///
    /// The baseline arm (A) keeps `baseline_config`; the candidate arm (B)
    /// gets `baseline_config + setting`. Both arms face the same traffic.
    ///
    /// # Errors
    ///
    /// Environment/engine errors. Invalid-but-expected situations (QoS
    /// violation, reboot intolerance) are verdicts, not errors.
    pub fn run(
        &self,
        env: &mut AbEnvironment,
        baseline_config: &softsku_archsim::engine::ServerConfig,
        setting: KnobSetting,
    ) -> Result<AbTestResult, UskuError> {
        // Build the candidate configuration.
        let mut candidate_config = baseline_config.clone();
        if let Err(e) = setting.apply(&mut candidate_config) {
            // Platform-invalid settings are configurator bugs — surface them.
            return Err(UskuError::Knob(e));
        }
        let needs_reboot = setting.knob().requires_reboot();
        self.run_config(env, baseline_config, &candidate_config, needs_reboot, setting)
    }

    /// Tests an arbitrary whole candidate configuration against the baseline
    /// (used by the exhaustive sweep and final soft-SKU validation). The
    /// result is labelled with `label` for the design-space map.
    ///
    /// # Errors
    ///
    /// Environment/engine errors; QoS and reboot outcomes are verdicts.
    pub fn run_config(
        &self,
        env: &mut AbEnvironment,
        baseline_config: &softsku_archsim::engine::ServerConfig,
        candidate_config: &softsku_archsim::engine::ServerConfig,
        needs_reboot: bool,
        label: KnobSetting,
    ) -> Result<AbTestResult, UskuError> {
        let setting = label;
        // Reboot gating.
        match env.reconfigure(Arm::B, candidate_config.clone(), needs_reboot) {
            Ok(()) => {}
            Err(ClusterError::RebootNotTolerated { .. }) => {
                return Ok(AbTestResult {
                    setting,
                    baseline: None,
                    candidate: None,
                    welch: None,
                    verdict: Verdict::SkippedRebootIntolerant,
                    samples: 0,
                });
            }
            Err(e) => return Err(e.into()),
        }
        env.reconfigure(Arm::A, baseline_config.clone(), false)?;

        // QoS guard before spending samples.
        if !env.qos_ok(Arm::B)? {
            return Ok(AbTestResult {
                setting,
                baseline: None,
                candidate: None,
                welch: None,
                verdict: Verdict::QosViolated,
                samples: 0,
            });
        }

        // Warm-up discard.
        for _ in 0..self.config.warmup_samples {
            let _ = self.metric.sample(env)?;
        }

        let mut acc_a = RunningStats::new();
        let mut acc_b = RunningStats::new();
        loop {
            for _ in 0..self.config.batch {
                let (a, b) = self.metric.sample(env)?;
                acc_a.push(a);
                acc_b.push(b);
            }
            let n = acc_a.count() as usize;
            if n < self.config.min_samples {
                continue;
            }
            let sa = acc_a.summary()?;
            let sb = acc_b.summary()?;
            let w = welch_test(&sb, &sa); // candidate minus baseline
            let rel = sb.mean() / sa.mean() - 1.0;
            let significant = w.significant_at(self.config.confidence);

            if significant && rel.abs() >= self.config.min_effect {
                let verdict = if rel > 0.0 {
                    Verdict::Better { gain: rel }
                } else {
                    Verdict::Worse { loss: rel }
                };
                return Ok(AbTestResult {
                    setting,
                    baseline: Some(sa),
                    candidate: Some(sb),
                    welch: Some(w),
                    verdict,
                    samples: n,
                });
            }

            // Converged-to-equality check: the CI on the relative difference
            // is narrower than the minimum effect we care about.
            let (lo, hi) = w.diff_ci(&sb, &sa, self.config.confidence);
            let half_rel = ((hi - lo) / 2.0 / sa.mean()).abs();
            if half_rel < self.config.min_effect || n >= self.config.max_samples {
                return Ok(AbTestResult {
                    setting,
                    baseline: Some(sa),
                    candidate: Some(sb),
                    welch: Some(w),
                    verdict: Verdict::NoDifference,
                    samples: n,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_cluster::EnvConfig;
    use softsku_knobs::KnobSetting;
    use softsku_workloads::{Microservice, PlatformKind};

    fn env(service: Microservice, platform: PlatformKind, seed: u64) -> AbEnvironment {
        let profile = service.profile(platform).unwrap();
        AbEnvironment::new(profile, EnvConfig::fast_test(), seed).unwrap()
    }

    fn tester() -> AbTester {
        AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips)
    }

    #[test]
    fn clear_regression_is_detected_quickly() {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 3);
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(1.6))
            .unwrap();
        match r.verdict {
            Verdict::Worse { loss } => {
                assert!(loss < -0.10, "1.6 GHz should lose >10%: {loss}");
            }
            other => panic!("expected Worse, got {other:?}"),
        }
        assert!(r.samples < 1000, "clear effects need few samples: {}", r.samples);
    }

    #[test]
    fn identical_setting_converges_to_no_difference() {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 5);
        let base = e.profile().production_config.clone();
        // Re-apply the production core frequency: a true null effect.
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(base.core_freq_ghz))
            .unwrap();
        assert_eq!(r.verdict, Verdict::NoDifference, "diff {:?}", r.relative_diff());
    }

    #[test]
    fn shp_improvement_is_detected() {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 7);
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::ShpPages(300))
            .unwrap();
        match r.verdict {
            Verdict::Better { gain } => assert!(gain > 0.02, "gain {gain}"),
            other => panic!("expected Better, got {other:?} ({:?})", r.relative_diff()),
        }
    }

    #[test]
    fn reboot_intolerant_service_skips_reboot_knobs() {
        let mut e = env(Microservice::Cache2, PlatformKind::Skylake18, 9);
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreCount(8))
            .unwrap();
        assert_eq!(r.verdict, Verdict::SkippedRebootIntolerant);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn qos_violating_setting_is_discarded() {
        // Cache fails QoS with a starved LLC (Fig. 10's exclusion); CAT is
        // not a reboot knob, so it reaches the QoS guard.
        let mut e = env(Microservice::Cache2, PlatformKind::Skylake18, 11);
        let mut base = e.profile().production_config.clone();
        base.llc_ways_enabled = 2;
        // Probe via a no-reboot knob on the already-starved baseline.
        let r = tester()
            .run(&mut e, &base, KnobSetting::Thp(softsku_archsim::ThpMode::Madvise))
            .unwrap();
        assert_eq!(r.verdict, Verdict::QosViolated);
    }
}
