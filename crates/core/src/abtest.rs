//! The A/B tester (paper Sec. 4, Fig. 13).
//!
//! For each point of the sweep, the tester applies the knob setting to the
//! candidate arm, discards a warm-up phase "to avoid cold start bias",
//! records spaced performance samples, and stops when 95 % confidence is
//! achieved — or gives up after ~30 000 observations and declares no
//! statistically significant difference. QoS-violating settings are
//! discarded, and reboot-requiring settings are skipped for services that
//! cannot tolerate them.
//!
//! The tester is also *self-healing* against injected production hazards
//! (see [`softsku_cluster::hazards`]): knob-apply failures are retried with
//! exponential backoff, arm outages are waited out and followed by an
//! automatic re-warmup, corrupted samples are screened by a rolling
//! [`MadFilter`] before they reach the accumulators, a QoS guardrail rolls
//! the candidate back to production when it keeps violating the SLO while
//! the baseline does not, and when the disruption budget runs out the test
//! degrades gracefully to [`Verdict::Inconclusive`] — it never panics and
//! never loops forever.

use crate::error::UskuError;
use crate::metric::PerformanceMetric;
use softsku_cluster::{AbEnvironment, Arm, ClusterError};
use softsku_knobs::KnobSetting;
use softsku_telemetry::stats::{welch_test, MadFilter, RunningStats, Summary, WelchResult};

/// Stopping rules for one A/B test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbTestConfig {
    /// Warm-up samples discarded after a configuration change.
    pub warmup_samples: usize,
    /// Minimum samples per arm before any verdict.
    pub min_samples: usize,
    /// Sample budget; reaching it ⇒ "no statistically significant
    /// difference" (the paper's ~30 000-observation rule).
    pub max_samples: usize,
    /// Confidence level for the Welch test (the paper uses 95 %).
    pub confidence: f64,
    /// Relative difference below which two settings are considered
    /// practically indistinguishable even if statistically significant.
    pub min_effect: f64,
    /// How many samples between statistical checks.
    pub batch: usize,
    /// Retries for a transiently failing knob application (exponential
    /// backoff between attempts) before the test is declared inconclusive.
    pub max_retries: usize,
    /// Base backoff between knob-apply retries, seconds (doubled per retry).
    pub backoff_base_s: f64,
    /// Rolling window of the MAD outlier filter (accepted samples tracked
    /// per arm).
    pub mad_window: usize,
    /// MAD multiples beyond which a sample is rejected as corrupted. ~8 is
    /// inert on clean data (a ≳5σ event) but catches injected outliers.
    pub mad_k: f64,
    /// Consecutive candidate-only QoS failures that trigger a rollback to
    /// production (the guardrail ignores spikes that hurt both arms).
    pub qos_guardrail_k: usize,
}

impl Default for AbTestConfig {
    fn default() -> Self {
        AbTestConfig {
            warmup_samples: 12,
            min_samples: 120,
            max_samples: 30_000,
            confidence: 0.95,
            min_effect: 0.0015,
            batch: 60,
            max_retries: 6,
            backoff_base_s: 60.0,
            mad_window: 64,
            mad_k: 8.0,
            qos_guardrail_k: 3,
        }
    }
}

impl AbTestConfig {
    /// A small-budget configuration for unit tests.
    pub fn fast_test() -> Self {
        AbTestConfig {
            warmup_samples: 4,
            min_samples: 60,
            max_samples: 2_000,
            confidence: 0.95,
            min_effect: 0.002,
            batch: 30,
            max_retries: 6,
            backoff_base_s: 30.0,
            mad_window: 48,
            mad_k: 8.0,
            qos_guardrail_k: 3,
        }
    }

    /// Hard ceiling on environment samples spent on one test, disruptions
    /// included: twice the statistical budget.
    fn attempt_budget(&self) -> usize {
        self.max_samples.saturating_mul(2)
    }
}

/// Why a test ended without a statistical verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InconclusiveReason {
    /// Disruptions ate the sample budget (2 × `max_samples` attempts spent)
    /// before the stopping rules fired.
    SampleBudgetExhausted,
    /// An arm stayed down past every recovery attempt.
    ArmUnrecoverable,
    /// The knob never applied within the retry budget.
    KnobApplyFailed,
}

impl std::fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InconclusiveReason::SampleBudgetExhausted => {
                f.write_str("disruptions exhausted the sample budget")
            }
            InconclusiveReason::ArmUnrecoverable => f.write_str("arm did not recover"),
            InconclusiveReason::KnobApplyFailed => {
                f.write_str("knob application failed past the retry budget")
            }
        }
    }
}

/// Outcome category of one A/B comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The candidate beats the baseline with statistical significance.
    Better {
        /// Relative gain of candidate over baseline.
        gain: f64,
    },
    /// The candidate loses with statistical significance.
    Worse {
        /// Relative loss (negative value).
        loss: f64,
    },
    /// No statistically significant difference within the sample budget.
    NoDifference,
    /// The setting violates the service's QoS and was discarded (paper
    /// Sec. 7: "we discard parts of the µSKU tuning space that lead to
    /// violations").
    QosViolated,
    /// The setting requires a reboot the service cannot tolerate.
    SkippedRebootIntolerant,
    /// Hazards disrupted the test beyond repair; no statistical claim is
    /// made either way (graceful degradation, never a panic).
    Inconclusive {
        /// What ended the test.
        reason: InconclusiveReason,
    },
}

impl Verdict {
    /// Relative gain if positive and significant, else `None`.
    pub fn gain(&self) -> Option<f64> {
        match self {
            Verdict::Better { gain } => Some(*gain),
            _ => None,
        }
    }

    /// Stable lowercase category label, used as a trace attribute and in
    /// `skuctl` output.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Better { .. } => "better",
            Verdict::Worse { .. } => "worse",
            Verdict::NoDifference => "no-difference",
            Verdict::QosViolated => "qos-violated",
            Verdict::SkippedRebootIntolerant => "skipped-reboot-intolerant",
            Verdict::Inconclusive { .. } => "inconclusive",
        }
    }
}

/// Full record of one A/B test.
#[derive(Debug, Clone)]
pub struct AbTestResult {
    /// The setting that was applied to the candidate arm.
    pub setting: KnobSetting,
    /// Baseline-arm sample summary.
    pub baseline: Option<Summary>,
    /// Candidate-arm sample summary.
    pub candidate: Option<Summary>,
    /// Welch test at stop time.
    pub welch: Option<WelchResult>,
    /// The verdict.
    pub verdict: Verdict,
    /// Samples collected per arm.
    pub samples: usize,
    /// Environment samples attempted, disruptions and warm-ups included
    /// (bounded at 2 × `max_samples`).
    pub attempts: usize,
    /// Paired samples rejected by the MAD outlier filter.
    pub rejected_outliers: usize,
}

impl AbTestResult {
    /// Relative mean difference (candidate/baseline − 1) when measured.
    pub fn relative_diff(&self) -> Option<f64> {
        match (&self.baseline, &self.candidate) {
            (Some(a), Some(b)) if a.mean() != 0.0 => Some(b.mean() / a.mean() - 1.0),
            _ => None,
        }
    }
}

/// Runs A/B tests against an [`AbEnvironment`].
#[derive(Debug)]
pub struct AbTester {
    config: AbTestConfig,
    metric: PerformanceMetric,
}

impl AbTester {
    /// Creates a tester with the given stopping rules and metric.
    pub fn new(config: AbTestConfig, metric: PerformanceMetric) -> Self {
        AbTester { config, metric }
    }

    /// The stopping rules in effect.
    pub fn config(&self) -> &AbTestConfig {
        &self.config
    }

    /// Tests `setting` applied on top of `baseline_config` against
    /// `baseline_config` itself.
    ///
    /// The baseline arm (A) keeps `baseline_config`; the candidate arm (B)
    /// gets `baseline_config + setting`. Both arms face the same traffic.
    ///
    /// # Errors
    ///
    /// Environment/engine errors. Invalid-but-expected situations (QoS
    /// violation, reboot intolerance) are verdicts, not errors.
    pub fn run(
        &self,
        env: &mut AbEnvironment,
        baseline_config: &softsku_archsim::engine::ServerConfig,
        setting: KnobSetting,
    ) -> Result<AbTestResult, UskuError> {
        // Build the candidate configuration.
        let mut candidate_config = baseline_config.clone();
        if let Err(e) = setting.apply(&mut candidate_config) {
            // Platform-invalid settings are configurator bugs — surface them.
            return Err(UskuError::Knob(e));
        }
        let needs_reboot = setting.knob().requires_reboot();
        self.run_config(
            env,
            baseline_config,
            &candidate_config,
            needs_reboot,
            setting,
        )
    }

    /// Tests an arbitrary whole candidate configuration against the baseline
    /// (used by the exhaustive sweep and final soft-SKU validation). The
    /// result is labelled with `label` for the design-space map.
    ///
    /// # Errors
    ///
    /// Environment/engine errors; QoS and reboot outcomes are verdicts.
    pub fn run_config(
        &self,
        env: &mut AbEnvironment,
        baseline_config: &softsku_archsim::engine::ServerConfig,
        candidate_config: &softsku_archsim::engine::ServerConfig,
        needs_reboot: bool,
        label: KnobSetting,
    ) -> Result<AbTestResult, UskuError> {
        let setting = label;
        let early = |verdict: Verdict| AbTestResult {
            setting,
            baseline: None,
            candidate: None,
            welch: None,
            verdict,
            samples: 0,
            attempts: 0,
            rejected_outliers: 0,
        };

        // Reboot gating + knob application with bounded retry (fleet
        // tooling flakes transiently under injected hazards).
        match self.reconfigure_with_retry(env, Arm::B, candidate_config, needs_reboot) {
            Ok(true) => {}
            Ok(false) => {
                return Ok(early(Verdict::Inconclusive {
                    reason: InconclusiveReason::KnobApplyFailed,
                }));
            }
            Err(UskuError::Cluster(ClusterError::RebootNotTolerated { .. })) => {
                return Ok(early(Verdict::SkippedRebootIntolerant));
            }
            Err(e) => return Err(e),
        }
        if !self.reconfigure_with_retry(env, Arm::A, baseline_config, false)? {
            return Ok(early(Verdict::Inconclusive {
                reason: InconclusiveReason::KnobApplyFailed,
            }));
        }

        // QoS guard before spending samples.
        if !env.qos_ok(Arm::B)? {
            return Ok(early(Verdict::QosViolated));
        }

        let mut acc_a = RunningStats::new();
        let mut acc_b = RunningStats::new();
        let mut mad_a = MadFilter::new(self.config.mad_window, self.config.mad_k);
        let mut mad_b = MadFilter::new(self.config.mad_window, self.config.mad_k);
        let mut attempts = 0usize;
        let mut rejected_outliers = 0usize;
        // Initial warm-up, and re-warm after every outage: an arm that just
        // came back serves cold caches.
        let mut rewarm = self.config.warmup_samples;
        let mut qos_strikes = 0usize;
        let budget = self.config.attempt_budget();

        let finish = |verdict: Verdict,
                      acc_a: &RunningStats,
                      acc_b: &RunningStats,
                      attempts: usize,
                      rejected_outliers: usize| {
            let sa = acc_a.summary().ok();
            let sb = acc_b.summary().ok();
            let welch = match (&sa, &sb) {
                (Some(a), Some(b)) => Some(welch_test(b, a)),
                _ => None,
            };
            AbTestResult {
                setting,
                baseline: sa,
                candidate: sb,
                welch,
                verdict,
                samples: acc_a.count() as usize,
                attempts,
                rejected_outliers,
            }
        };

        loop {
            // Collect one batch, healing around disruptions as they land.
            let mut collected = 0usize;
            while collected < self.config.batch {
                if attempts >= budget {
                    return Ok(finish(
                        Verdict::Inconclusive {
                            reason: InconclusiveReason::SampleBudgetExhausted,
                        },
                        &acc_a,
                        &acc_b,
                        attempts,
                        rejected_outliers,
                    ));
                }
                attempts += 1;
                match self.metric.sample(env) {
                    Ok((a, b)) => {
                        if rewarm > 0 {
                            rewarm -= 1;
                            continue;
                        }
                        // Screen both readings; a corrupted reading on either
                        // arm drops the whole pair so the arms stay paired.
                        let ok_a = mad_a.accept(a);
                        let ok_b = mad_b.accept(b);
                        if ok_a && ok_b {
                            acc_a.push(a);
                            acc_b.push(b);
                            collected += 1;
                        } else {
                            rejected_outliers += 1;
                            env.record_event("recovery", "outlier_rejected");
                        }
                    }
                    Err(UskuError::Cluster(ClusterError::ArmDown { until_s, .. })) => {
                        // Wait out the outage, then re-warm the returned arm.
                        let gap = (until_s - env.time_s()).max(0.0);
                        env.wait(gap);
                        env.record_event("recovery", "arm_down");
                        rewarm = self.config.warmup_samples;
                    }
                    Err(UskuError::Cluster(ClusterError::TelemetryDropout { .. })) => {
                        // The sample is gone but the clock advanced; the next
                        // one is independent. Nothing to heal beyond noting it.
                        env.record_event("recovery", "dropout");
                    }
                    Err(e) => return Err(e),
                }
            }

            // QoS guardrail: a candidate that keeps violating the SLO while
            // the baseline (same load, spikes included) does not is rolled
            // back to production immediately — fleet safety beats finishing
            // the measurement.
            let b_ok = env.qos_ok_now(Arm::B)?;
            let a_ok = env.qos_ok_now(Arm::A)?;
            if !b_ok && a_ok {
                qos_strikes += 1;
            } else {
                qos_strikes = 0;
            }
            if qos_strikes >= self.config.qos_guardrail_k.max(1) {
                // Best-effort rollback; the verdict stands either way.
                let _ = self.reconfigure_with_retry(env, Arm::B, baseline_config, false);
                env.record_event("recovery", "qos_rollback");
                return Ok(finish(
                    Verdict::QosViolated,
                    &acc_a,
                    &acc_b,
                    attempts,
                    rejected_outliers,
                ));
            }

            let n = acc_a.count() as usize;
            if n < self.config.min_samples {
                continue;
            }
            let sa = acc_a.summary()?;
            let sb = acc_b.summary()?;
            let w = welch_test(&sb, &sa); // candidate minus baseline
            let rel = sb.mean() / sa.mean() - 1.0;
            let significant = w.significant_at(self.config.confidence);

            if significant && rel.abs() >= self.config.min_effect {
                let verdict = if rel > 0.0 {
                    Verdict::Better { gain: rel }
                } else {
                    Verdict::Worse { loss: rel }
                };
                return Ok(AbTestResult {
                    setting,
                    baseline: Some(sa),
                    candidate: Some(sb),
                    welch: Some(w),
                    verdict,
                    samples: n,
                    attempts,
                    rejected_outliers,
                });
            }

            // Converged-to-equality check: the CI on the relative difference
            // is narrower than the minimum effect we care about.
            let (lo, hi) = w.diff_ci(&sb, &sa, self.config.confidence);
            let half_rel = ((hi - lo) / 2.0 / sa.mean()).abs();
            if half_rel < self.config.min_effect || n >= self.config.max_samples {
                return Ok(AbTestResult {
                    setting,
                    baseline: Some(sa),
                    candidate: Some(sb),
                    welch: Some(w),
                    verdict: Verdict::NoDifference,
                    samples: n,
                    attempts,
                    rejected_outliers,
                });
            }
        }
    }

    /// Applies `config` to `arm`, retrying transient knob-apply failures
    /// with exponential backoff. Returns `Ok(false)` when the retry budget
    /// is exhausted (the caller degrades to an inconclusive verdict).
    ///
    /// # Errors
    ///
    /// Non-transient environment errors (reboot intolerance, engine
    /// validation) propagate untouched.
    fn reconfigure_with_retry(
        &self,
        env: &mut AbEnvironment,
        arm: Arm,
        config: &softsku_archsim::engine::ServerConfig,
        needs_reboot: bool,
    ) -> Result<bool, UskuError> {
        for attempt in 0..=self.config.max_retries {
            match env.reconfigure(arm, config.clone(), needs_reboot) {
                Ok(()) => {
                    if attempt > 0 {
                        env.record_event("recovery", "knob_retry_ok");
                    }
                    return Ok(true);
                }
                Err(ClusterError::KnobApplyFailed { .. }) => {
                    let backoff =
                        self.config.backoff_base_s.max(1.0) * f64::powi(2.0, attempt as i32);
                    env.wait(backoff);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_cluster::EnvConfig;
    use softsku_knobs::KnobSetting;
    use softsku_workloads::{Microservice, PlatformKind};

    fn env(service: Microservice, platform: PlatformKind, seed: u64) -> AbEnvironment {
        let profile = service.profile(platform).unwrap();
        AbEnvironment::new(profile, EnvConfig::fast_test(), seed).unwrap()
    }

    fn tester() -> AbTester {
        AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips)
    }

    #[test]
    fn clear_regression_is_detected_quickly() {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 3);
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(1.6))
            .unwrap();
        match r.verdict {
            Verdict::Worse { loss } => {
                assert!(loss < -0.10, "1.6 GHz should lose >10%: {loss}");
            }
            other => panic!("expected Worse, got {other:?}"),
        }
        assert!(
            r.samples < 1000,
            "clear effects need few samples: {}",
            r.samples
        );
    }

    #[test]
    fn identical_setting_converges_to_no_difference() {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 5);
        let base = e.profile().production_config.clone();
        // Re-apply the production core frequency: a true null effect.
        let r = tester()
            .run(
                &mut e,
                &base,
                KnobSetting::CoreFrequencyGhz(base.core_freq_ghz),
            )
            .unwrap();
        assert_eq!(
            r.verdict,
            Verdict::NoDifference,
            "diff {:?}",
            r.relative_diff()
        );
    }

    #[test]
    fn shp_improvement_is_detected() {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 7);
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::ShpPages(300))
            .unwrap();
        match r.verdict {
            Verdict::Better { gain } => assert!(gain > 0.02, "gain {gain}"),
            other => panic!("expected Better, got {other:?} ({:?})", r.relative_diff()),
        }
    }

    #[test]
    fn reboot_intolerant_service_skips_reboot_knobs() {
        let mut e = env(Microservice::Cache2, PlatformKind::Skylake18, 9);
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreCount(8))
            .unwrap();
        assert_eq!(r.verdict, Verdict::SkippedRebootIntolerant);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn qos_violating_setting_is_discarded() {
        // Cache fails QoS with a starved LLC (Fig. 10's exclusion); CAT is
        // not a reboot knob, so it reaches the QoS guard.
        let mut e = env(Microservice::Cache2, PlatformKind::Skylake18, 11);
        let mut base = e.profile().production_config.clone();
        base.llc_ways_enabled = 2;
        // Probe via a no-reboot knob on the already-starved baseline.
        let r = tester()
            .run(
                &mut e,
                &base,
                KnobSetting::Thp(softsku_archsim::ThpMode::Madvise),
            )
            .unwrap();
        assert_eq!(r.verdict, Verdict::QosViolated);
    }

    fn hazardous_env(hazards: softsku_cluster::HazardConfig, seed: u64) -> AbEnvironment {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut cfg = EnvConfig::fast_test();
        cfg.hazards = hazards;
        AbEnvironment::new(profile, cfg, seed).unwrap()
    }

    #[test]
    fn survives_crashes_dropouts_and_outliers() {
        use softsku_cluster::HazardConfig;
        let mut e = hazardous_env(
            HazardConfig {
                crash_rate_per_hour: 1.0,
                crash_outage_s: 300.0,
                dropout_prob: 0.05,
                outlier_prob: 0.05,
                outlier_magnitude: 0.8,
                ..HazardConfig::none()
            },
            3,
        );
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(1.6))
            .unwrap();
        // The regression is huge; hazards must not flip or hide it.
        match r.verdict {
            Verdict::Worse { loss } => assert!(loss < -0.10, "loss {loss}"),
            other => panic!("expected Worse despite hazards, got {other:?}"),
        }
        assert!(r.attempts >= r.samples);
        assert!(
            r.attempts <= tester().config().attempt_budget(),
            "attempts {} over budget",
            r.attempts
        );
        assert!(r.rejected_outliers > 0, "80 % outliers must get screened");
    }

    #[test]
    fn outliers_do_not_flip_a_null_effect() {
        use softsku_cluster::HazardConfig;
        let mut e = hazardous_env(
            HazardConfig {
                outlier_prob: 0.04,
                outlier_magnitude: 1.0,
                ..HazardConfig::none()
            },
            5,
        );
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(
                &mut e,
                &base,
                KnobSetting::CoreFrequencyGhz(base.core_freq_ghz),
            )
            .unwrap();
        assert_eq!(
            r.verdict,
            Verdict::NoDifference,
            "diff {:?}",
            r.relative_diff()
        );
        assert!(r.rejected_outliers > 0);
    }

    #[test]
    fn knob_failures_retry_then_succeed_or_degrade() {
        use softsku_cluster::HazardConfig;
        // Flaky-but-workable tooling: retries succeed.
        let mut e = hazardous_env(
            HazardConfig {
                knob_failure_prob: 0.5,
                ..HazardConfig::none()
            },
            7,
        );
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(1.6))
            .unwrap();
        assert!(
            matches!(r.verdict, Verdict::Worse { .. }),
            "retries should land the knob: {:?}",
            r.verdict
        );

        // Hopeless tooling (validated cap is 0.9): the test must degrade to
        // an inconclusive verdict, not loop forever or panic.
        let mut e = hazardous_env(
            HazardConfig {
                knob_failure_prob: 0.9,
                ..HazardConfig::none()
            },
            1,
        );
        let mut saw_inconclusive = false;
        for seed_extra in 0..6 {
            let _ = seed_extra;
            let r = tester()
                .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(1.6))
                .unwrap();
            if let Verdict::Inconclusive { reason } = r.verdict {
                assert_eq!(reason, InconclusiveReason::KnobApplyFailed);
                assert_eq!(r.samples, 0);
                saw_inconclusive = true;
                break;
            }
        }
        assert!(
            saw_inconclusive,
            "p=0.9 across 7 attempts should fail at least once in 6 runs"
        );
    }

    #[test]
    fn heavy_dropouts_exhaust_budget_gracefully() {
        use softsku_cluster::HazardConfig;
        // 90 % dropouts (validation cap): a null-effect test cannot converge
        // within 2× max_samples attempts, so it must degrade, not hang.
        let mut e = hazardous_env(
            HazardConfig {
                dropout_prob: 0.95,
                ..HazardConfig::none()
            },
            9,
        );
        let base = e.profile().production_config.clone();
        let mut cfg = AbTestConfig::fast_test();
        cfg.max_samples = 300;
        let t = AbTester::new(cfg, PerformanceMetric::Mips);
        let r = t
            .run(
                &mut e,
                &base,
                KnobSetting::CoreFrequencyGhz(base.core_freq_ghz),
            )
            .unwrap();
        match r.verdict {
            Verdict::Inconclusive { reason } => {
                assert_eq!(reason, InconclusiveReason::SampleBudgetExhausted);
                assert!(r.attempts <= cfg.attempt_budget());
            }
            // With ~10 % of samples surviving it may still converge; both
            // are acceptable — what matters is neither panic nor hang.
            Verdict::NoDifference => {}
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn qos_guardrail_rolls_back_candidate_only_violations() {
        use softsku_cluster::HazardConfig;
        // Constant heavy spikes push the load to the cap; a near-QoS-edge
        // candidate then violates while the production baseline holds.
        let mut e = hazardous_env(
            HazardConfig {
                spike_rate_per_hour: 60.0,
                spike_duration_s: 600.0,
                spike_magnitude: 0.5,
                ..HazardConfig::none()
            },
            11,
        );
        let base = e.profile().production_config.clone();
        let r = tester()
            .run(&mut e, &base, KnobSetting::CoreFrequencyGhz(1.6))
            .unwrap();
        match r.verdict {
            // Either the guardrail fires (rolled back, QosViolated) or the
            // huge regression is detected first — both are self-healing.
            Verdict::QosViolated | Verdict::Worse { .. } => {}
            other => panic!("unexpected verdict {other:?}"),
        }
        if r.verdict == Verdict::QosViolated {
            // Candidate was rolled back to the production configuration.
            assert_eq!(e.arm_config(Arm::B), &base);
        }
    }
}
