//! The soft-SKU generator (paper Sec. 4, Fig. 13).
//!
//! "The A/B tester's design space map is fed to the soft SKU generator,
//! which selects the most performant knob configurations. It then applies
//! this configuration to live servers running the microservice. Once the
//! selected soft SKU is deployed, µSKU performs further A/B tests by
//! comparing the QPS achieved (via ODS) by soft-SKU servers against
//! hand-tuned production servers for prolonged durations … to validate that
//! the soft SKU offers a stable advantage."

use crate::abtest::{AbTester, Verdict};
use crate::error::UskuError;
use crate::search::SearchOutcome;
use softsku_archsim::engine::ServerConfig;
use softsku_cluster::{AbEnvironment, ValidationFleet, ValidationOutcome};
use softsku_knobs::{Knob, KnobSetting};
use softsku_workloads::WorkloadProfile;

/// A deployable soft SKU: the composed configuration plus provenance.
#[derive(Debug, Clone)]
pub struct SoftSku {
    /// The composed server configuration.
    pub config: ServerConfig,
    /// Per-knob selections and the individual gains measured for them.
    pub selections: Vec<(Knob, KnobSetting, f64)>,
    /// Measured composite gain over the hand-tuned production baseline.
    pub gain_vs_production: f64,
    /// Measured composite gain over the stock configuration.
    pub gain_vs_stock: f64,
}

impl SoftSku {
    /// Sum of the individual per-knob gains — compared against the measured
    /// composite gain, this quantifies the paper's "gains are not strictly
    /// additive" observation.
    pub fn additive_prediction(&self) -> f64 {
        self.selections.iter().map(|(_, _, g)| g).sum()
    }
}

/// Builds, measures, and validates soft SKUs.
#[derive(Debug)]
pub struct SoftSkuGenerator<'a> {
    tester: &'a AbTester,
}

impl<'a> SoftSkuGenerator<'a> {
    /// Creates a generator that uses `tester` for composite measurements.
    pub fn new(tester: &'a AbTester) -> Self {
        SoftSkuGenerator { tester }
    }

    /// Composes the search outcome into a soft SKU and measures it against
    /// both the production and stock baselines (paper Fig. 19).
    ///
    /// # Errors
    ///
    /// Environment/engine errors.
    pub fn generate(
        &self,
        env: &mut AbEnvironment,
        outcome: &SearchOutcome,
        production: &ServerConfig,
        stock: &ServerConfig,
    ) -> Result<SoftSku, UskuError> {
        let config = outcome.best_config.clone();
        let label = KnobSetting::Thp(config.thp); // provenance label only
        let needs_reboot = config.active_cores != production.active_cores
            || config.shp_pages != production.shp_pages;

        let vs_prod = self
            .tester
            .run_config(env, production, &config, needs_reboot, label)?;
        let gain_vs_production = match vs_prod.verdict {
            Verdict::Better { gain } => gain,
            Verdict::Worse { loss } => loss,
            _ => vs_prod.relative_diff().unwrap_or(0.0),
        };

        let needs_reboot_stock =
            config.active_cores != stock.active_cores || config.shp_pages != stock.shp_pages;
        let vs_stock = self
            .tester
            .run_config(env, stock, &config, needs_reboot_stock, label)?;
        let gain_vs_stock = match vs_stock.verdict {
            Verdict::Better { gain } => gain,
            Verdict::Worse { loss } => loss,
            _ => vs_stock.relative_diff().unwrap_or(0.0),
        };

        Ok(SoftSku {
            config,
            selections: outcome.selected.clone(),
            gain_vs_production,
            gain_vs_stock,
        })
    }

    /// Long-horizon deployment validation: soft-SKU servers vs hand-tuned
    /// production servers under diurnal load and code pushes, compared by
    /// fleet QPS via ODS.
    ///
    /// # Errors
    ///
    /// Environment/engine errors.
    pub fn validate(
        &self,
        profile: WorkloadProfile,
        soft_sku: &SoftSku,
        production: &ServerConfig,
        duration_s: f64,
        window_insns: u64,
        seed: u64,
    ) -> Result<ValidationOutcome, UskuError> {
        let mut fleet = ValidationFleet::new(
            profile,
            production.clone(),
            soft_sku.config.clone(),
            window_insns,
            1800.0,
            seed,
        )?;
        Ok(fleet.run(duration_s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abtest::AbTestConfig;
    use crate::metric::PerformanceMetric;
    use crate::search::independent_sweep;
    use softsku_cluster::EnvConfig;
    use softsku_knobs::{KnobSpace, WorkloadConstraints};
    use softsku_workloads::{Microservice, PlatformKind};

    #[test]
    fn generated_soft_sku_beats_both_baselines_for_web() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let production = profile.production_config.clone();
        let stock = profile.stock_config.clone();
        let space =
            KnobSpace::for_platform(&production.platform, WorkloadConstraints::permissive());
        let mut env = AbEnvironment::new(profile.clone(), EnvConfig::fast_test(), 31).unwrap();
        let tester = AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips);

        // Study two high-yield knobs only (full sweeps live in the bench
        // harness); SHP and THP both beat Web's production settings.
        let outcome = independent_sweep(
            &tester,
            &mut env,
            &production,
            &space,
            &[Knob::Thp, Knob::Shp],
        )
        .unwrap();
        let generator = SoftSkuGenerator::new(&tester);
        let sku = generator
            .generate(&mut env, &outcome, &production, &stock)
            .unwrap();
        assert!(
            sku.gain_vs_production > 0.02,
            "composite vs production: {:+.2}%",
            sku.gain_vs_production * 100.0
        );
        assert!(!sku.selections.is_empty());
        // Additivity is approximate, not exact.
        assert!(sku.additive_prediction() > 0.0);

        // Long-horizon validation holds up.
        let validation = generator
            .validate(profile, &sku, &production, 86_400.0, 50_000, 5)
            .unwrap();
        assert!(
            validation.relative_gain > 0.01,
            "validated gain {:+.2}%",
            validation.relative_gain * 100.0
        );
    }
}
