//! Search strategies over the soft-SKU design space.
//!
//! The paper's prototype sweeps knobs *independently* (one A/B test per
//! candidate setting against the production baseline), because "the
//! exhaustive approach requires an impractically large number of A/B tests"
//! (Sec. 4). Sec. 7 suggests better heuristics such as hill climbing for
//! capturing non-additive knob interactions; both extensions are implemented
//! here with explicit test budgets.

use crate::abtest::{AbTestResult, AbTester, Verdict};
use crate::error::UskuError;
use crate::map::DesignSpaceMap;
use softsku_archsim::engine::ServerConfig;
use softsku_cluster::AbEnvironment;
use softsku_knobs::{Knob, KnobSetting, KnobSpace};

/// Outcome of a search: the design-space map plus the selected composite
/// configuration.
#[derive(Debug)]
pub struct SearchOutcome {
    /// Every A/B test performed.
    pub map: DesignSpaceMap,
    /// The composed best configuration.
    pub best_config: ServerConfig,
    /// Per-knob winning settings actually applied. The `f64` is always a
    /// gain relative to the *original baseline*: the measured per-knob gain
    /// for the independent sweep, the joint-configuration gain for the
    /// exhaustive sweep, and the cumulative gain of the accepted
    /// configuration for hill climbing (each step measures against the
    /// then-current config; the cumulative product is reported so the three
    /// strategies' numbers are comparable).
    pub selected: Vec<(Knob, KnobSetting, f64)>,
}

/// Independent per-knob sweep (the paper's deployed strategy).
///
/// Each candidate setting of each knob is A/B-tested against the production
/// baseline; the per-knob winners are presumed additive and composed by the
/// soft-SKU generator.
///
/// # Errors
///
/// Propagates tester/environment errors.
pub fn independent_sweep(
    tester: &AbTester,
    env: &mut AbEnvironment,
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
) -> Result<SearchOutcome, UskuError> {
    let mut map = DesignSpaceMap::new();
    for &knob in knobs {
        for &setting in space.candidates(knob) {
            // Skip re-testing the exact baseline value: it is the control.
            if KnobSetting::read_from(knob, baseline) == setting {
                continue;
            }
            let result = tester.run(env, baseline, setting)?;
            map.record(result);
        }
    }
    let (best_config, selected) = compose(baseline, &map, knobs);
    Ok(SearchOutcome {
        map,
        best_config,
        selected,
    })
}

/// Exhaustive cross-product sweep over a (small) knob subset, bounded by
/// `budget` A/B tests. Returns the best *joint* setting found — capable of
/// capturing interactions the independent sweep misses, at a cost that
/// explodes combinatorially (which is the paper's point).
///
/// # Errors
///
/// Propagates tester/environment errors.
pub fn exhaustive_sweep(
    tester: &AbTester,
    env: &mut AbEnvironment,
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
    budget: usize,
) -> Result<SearchOutcome, UskuError> {
    let mut map = DesignSpaceMap::new();
    let candidate_lists: Vec<&[KnobSetting]> = knobs.iter().map(|&k| space.candidates(k)).collect();
    type JointBest = (ServerConfig, Vec<(Knob, KnobSetting, f64)>, f64);
    let mut best: Option<JointBest> = None;
    let mut tested = 0usize;

    let mut indices = vec![0usize; knobs.len()];
    'outer: loop {
        // Build the joint configuration for the current index vector.
        let mut config = baseline.clone();
        let mut settings = Vec::with_capacity(knobs.len());
        let mut valid = true;
        for (i, list) in candidate_lists.iter().enumerate() {
            if list.is_empty() {
                valid = false;
                break;
            }
            let setting = list[indices[i]];
            if setting.apply(&mut config).is_err() {
                valid = false;
                break;
            }
            settings.push(setting);
        }
        if valid && config != *baseline {
            if tested >= budget {
                break 'outer;
            }
            tested += 1;
            // Measure the joint configuration: apply it wholesale to arm B,
            // labelled by the last knob's setting for display. The result is
            // recorded in the map's dedicated joint ledger with *all*
            // constituent settings, so no single knob is credited with the
            // joint gain (per-knob `best_setting` stays honest).
            let result = run_joint(
                tester,
                env,
                baseline,
                &config,
                // detlint::allow(panic_path): the caller pushes a setting
                // before every recursive call, so the slice is non-empty.
                *settings.last().expect("non-empty"),
            )?;
            if let Verdict::Better { gain } = result.verdict {
                let is_better = best.as_ref().is_none_or(|(_, _, g)| gain > *g);
                if is_better {
                    let sel = knobs
                        .iter()
                        .zip(&settings)
                        .map(|(&k, &s)| (k, s, gain))
                        .collect();
                    best = Some((config.clone(), sel, gain));
                }
            }
            map.record_joint(settings.clone(), result);
        }
        // Advance the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == knobs.len() {
                break 'outer;
            }
            indices[i] += 1;
            if indices[i] < candidate_lists[i].len().max(1) {
                break;
            }
            indices[i] = 0;
            i += 1;
        }
    }

    let (best_config, selected) = match best {
        Some((cfg, sel, _)) => (cfg, sel),
        None => (baseline.clone(), Vec::new()),
    };
    Ok(SearchOutcome {
        map,
        best_config,
        selected,
    })
}

/// Hill climbing: start from the baseline and greedily accept the best
/// significant single-knob move until no move improves or `max_steps` is
/// reached (the Sec. 7 heuristic for non-additive interactions).
///
/// # Errors
///
/// Propagates tester/environment errors.
pub fn hill_climb(
    tester: &AbTester,
    env: &mut AbEnvironment,
    baseline: &ServerConfig,
    space: &KnobSpace,
    knobs: &[Knob],
    max_steps: usize,
) -> Result<SearchOutcome, UskuError> {
    let mut map = DesignSpaceMap::new();
    let mut current = baseline.clone();
    let mut selected: Vec<(Knob, KnobSetting, f64)> = Vec::new();
    // Each step's A/B test measures against the *current* config; the
    // cumulative product converts step gains into gains vs. the original
    // baseline, matching the `selected` semantics of the other strategies.
    let mut cumulative_factor = 1.0f64;

    for _ in 0..max_steps {
        let mut best_move: Option<(KnobSetting, f64)> = None;
        for &knob in knobs {
            for &setting in space.candidates(knob) {
                if KnobSetting::read_from(knob, &current) == setting {
                    continue;
                }
                let result = tester.run(env, &current, setting)?;
                if let Verdict::Better { gain } = result.verdict {
                    if best_move.is_none_or(|(_, g)| gain > g) {
                        best_move = Some((setting, gain));
                    }
                }
                map.record(result);
            }
        }
        match best_move {
            Some((setting, gain)) => {
                // detlint::allow(panic_path): the move was applied to a clone
                // of this very config when it was scored; apply cannot fail.
                setting
                    .apply(&mut current)
                    .expect("previously validated move");
                cumulative_factor *= 1.0 + gain;
                // Replace any earlier selection of the same knob; the stored
                // gain is the cumulative gain vs. the original baseline at
                // the time this move was accepted.
                selected.retain(|(k, _, _)| *k != setting.knob());
                selected.push((setting.knob(), setting, cumulative_factor - 1.0));
            }
            None => break,
        }
    }
    Ok(SearchOutcome {
        map,
        best_config: current,
        selected,
    })
}

/// Composes per-knob winners onto the baseline (the independent strategy's
/// additive assumption). Shared with the parallel scheduler.
pub(crate) fn compose(
    baseline: &ServerConfig,
    map: &DesignSpaceMap,
    knobs: &[Knob],
) -> (ServerConfig, Vec<(Knob, KnobSetting, f64)>) {
    let mut config = baseline.clone();
    let mut selected = Vec::new();
    for &knob in knobs {
        if let Some((setting, gain)) = map.best_setting(knob) {
            if setting.apply(&mut config).is_ok() {
                selected.push((knob, setting, gain));
            }
        }
    }
    (config, selected)
}

/// Runs one joint-configuration comparison; the map entry is labelled with
/// `label_setting` (the exhaustive sweep's bookkeeping).
fn run_joint(
    tester: &AbTester,
    env: &mut AbEnvironment,
    baseline: &ServerConfig,
    joint: &ServerConfig,
    label_setting: KnobSetting,
) -> Result<AbTestResult, UskuError> {
    let needs_reboot =
        joint.active_cores != baseline.active_cores || joint.shp_pages != baseline.shp_pages;
    tester.run_config(env, baseline, joint, needs_reboot, label_setting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abtest::AbTestConfig;
    use crate::metric::PerformanceMetric;
    use softsku_cluster::EnvConfig;
    use softsku_knobs::WorkloadConstraints;
    use softsku_workloads::{Microservice, PlatformKind};

    fn setup() -> (AbTester, AbEnvironment, ServerConfig, KnobSpace) {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let space = KnobSpace::for_platform(
            &profile.production_config.platform,
            WorkloadConstraints::permissive(),
        );
        let env = AbEnvironment::new(profile, EnvConfig::fast_test(), 21).unwrap();
        let tester = AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips);
        (tester, env, baseline, space)
    }

    #[test]
    fn independent_sweep_finds_the_shp_and_thp_wins() {
        let (tester, mut env, baseline, space) = setup();
        let out = independent_sweep(
            &tester,
            &mut env,
            &baseline,
            &space,
            &[Knob::Thp, Knob::Shp],
        )
        .unwrap();
        let knobs: Vec<Knob> = out.selected.iter().map(|(k, _, _)| *k).collect();
        assert!(knobs.contains(&Knob::Shp), "selected: {:?}", out.selected);
        assert!(knobs.contains(&Knob::Thp), "selected: {:?}", out.selected);
        // The composed config carries both winners.
        assert_eq!(out.best_config.shp_pages, 300);
        assert_eq!(out.best_config.thp, softsku_archsim::ThpMode::AlwaysOn);
        assert!(out.map.test_count() >= 7);
    }

    #[test]
    fn hill_climb_improves_over_baseline() {
        let (tester, mut env, baseline, space) = setup();
        let out = hill_climb(
            &tester,
            &mut env,
            &baseline,
            &space,
            &[Knob::Thp, Knob::Shp],
            2,
        )
        .unwrap();
        assert!(
            !out.selected.is_empty(),
            "hill climb should take at least one improving step"
        );
        assert_ne!(out.best_config, baseline);
    }

    #[test]
    fn exhaustive_respects_budget() {
        let (tester, mut env, baseline, space) = setup();
        let out = exhaustive_sweep(&tester, &mut env, &baseline, &space, &[Knob::Thp], 2).unwrap();
        assert!(out.map.test_count() <= 2);
    }

    #[test]
    fn exhaustive_records_joint_results_under_every_constituent_knob() {
        let (tester, mut env, baseline, space) = setup();
        let out = exhaustive_sweep(
            &tester,
            &mut env,
            &baseline,
            &space,
            &[Knob::Thp, Knob::Shp],
            8,
        )
        .unwrap();
        let joints = out.map.joint_results();
        assert!(!joints.is_empty(), "exhaustive sweep must record results");
        for j in joints {
            assert_eq!(
                j.settings.len(),
                2,
                "every joint entry carries all constituent settings"
            );
            assert_eq!(j.settings[0].knob(), Knob::Thp);
            assert_eq!(j.settings[1].knob(), Knob::Shp);
        }
        // Regression (the old code recorded the joint result under the
        // *last* knob only): no single knob may claim a joint gain.
        assert!(out.map.best_setting(Knob::Thp).is_none());
        assert!(out.map.best_setting(Knob::Shp).is_none());
        assert_eq!(out.map.knobs().count(), 0);
        assert_eq!(out.map.test_count(), joints.len());
        // The winner reported by the sweep is the joint-ledger winner.
        if let Some((best, gain)) = out.map.best_joint() {
            let sel_gain = out.selected.first().expect("winner selected").2;
            assert!((gain - sel_gain).abs() < 1e-12);
            let mut cfg = baseline.clone();
            for s in &best.settings {
                s.apply(&mut cfg).unwrap();
            }
            assert_eq!(cfg, out.best_config);
        }
    }

    #[test]
    fn hill_climb_reports_cumulative_gain_vs_original_baseline() {
        let (tester, mut env, baseline, space) = setup();
        let out = hill_climb(
            &tester,
            &mut env,
            &baseline,
            &space,
            &[Knob::Thp, Knob::Shp],
            2,
        )
        .unwrap();
        assert_eq!(
            out.selected.len(),
            2,
            "two-step climb accepts two distinct knobs: {:?}",
            out.selected
        );
        let first = out.selected[0].2;
        let last = out.selected[1].2;
        assert!(first > 0.0 && last > 0.0);
        assert!(
            last > first,
            "cumulative gain grows across accepted steps: {first} then {last}"
        );
        // Cross-check against ground truth: the last accepted move's stored
        // gain is the best_config's true gain vs. the original baseline
        // (within A/B measurement noise) — not the step-2 marginal, which is
        // several points smaller.
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut base_srv =
            softsku_cluster::SimServer::with_window(profile.clone(), baseline.clone(), 21, 60_000)
                .unwrap();
        let mut best_srv =
            softsku_cluster::SimServer::with_window(profile, out.best_config.clone(), 21, 60_000)
                .unwrap();
        let true_gain = best_srv.mips(1.0).unwrap() / base_srv.mips(1.0).unwrap() - 1.0;
        assert!(
            (last - true_gain).abs() < 0.05,
            "cumulative {last:+.4} vs true {true_gain:+.4}"
        );
    }
}
