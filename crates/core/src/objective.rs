//! Optimization objectives beyond raw throughput (paper Sec. 7).
//!
//! "With support to also measure system power/energy, µSKU can be extended
//! to perform energy- or power-efficiency optimization rather than
//! optimizing only for performance." This module provides that extension: a
//! simple server power model (static platform power plus an
//! activity-dependent core term cubic in frequency and a linear uncore
//! term) and an [`Objective`] that converts a measured operating point into
//! the scalar the A/B decision should maximize.

use softsku_archsim::engine::{ServerConfig, WindowReport};

/// What the tuner maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Raw throughput (the paper's prototype behaviour).
    #[default]
    Throughput,
    /// Throughput per watt (the Sec. 7 energy extension).
    PerfPerWatt,
}

/// Simple server power model; coefficients are representative of a 2-socket
/// class datacenter node and documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Non-CPU platform power (fans, NIC, DRAM idle), watts.
    pub static_watts: f64,
    /// Per-core dynamic coefficient, watts at 1 GHz and full utilization.
    pub core_watts_per_ghz3: f64,
    /// Per-core leakage/idle, watts.
    pub core_idle_watts: f64,
    /// Uncore power at nominal frequency, watts.
    pub uncore_watts: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_watts: 60.0,
            core_watts_per_ghz3: 0.55,
            core_idle_watts: 1.0,
            uncore_watts: 25.0,
        }
    }
}

impl PowerModel {
    /// Estimated wall power for an operating point.
    pub fn watts(&self, config: &ServerConfig, report: &WindowReport, load: f64) -> f64 {
        let f = report.effective_core_freq_ghz;
        let cores = config.active_cores as f64;
        let util = load.clamp(0.0, 1.0);
        let dynamic = cores * self.core_watts_per_ghz3 * f * f * f * util;
        let idle = cores * self.core_idle_watts;
        let uncore =
            self.uncore_watts * (config.uncore_freq_ghz / config.platform.uncore_freq_range_ghz.1);
        self.static_watts + dynamic + idle + uncore
    }
}

impl Objective {
    /// Scalar score for an operating point (higher is better).
    pub fn score(
        self,
        model: &PowerModel,
        config: &ServerConfig,
        report: &WindowReport,
        load: f64,
    ) -> f64 {
        match self {
            Objective::Throughput => report.mips_total,
            Objective::PerfPerWatt => report.mips_total / model.watts(config, report, load),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_archsim::engine::Engine;
    use softsku_workloads::{Microservice, PlatformKind};

    fn report_for(freq: f64) -> (ServerConfig, WindowReport) {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut cfg = profile.production_config.clone();
        cfg.core_freq_ghz = freq;
        let engine = Engine::new(cfg.clone(), profile.stream.clone(), 3).unwrap();
        let report = engine.run_window(80_000, profile.peak_utilization).unwrap();
        (cfg, report)
    }

    #[test]
    fn power_grows_with_frequency_and_cores() {
        let model = PowerModel::default();
        let (cfg_hi, rep_hi) = report_for(2.2);
        let (cfg_lo, rep_lo) = report_for(1.6);
        let hi = model.watts(&cfg_hi, &rep_hi, 0.6);
        let lo = model.watts(&cfg_lo, &rep_lo, 0.6);
        assert!(hi > lo, "2.2 GHz {hi}W vs 1.6 GHz {lo}W");

        let mut fewer = cfg_hi.clone();
        fewer.active_cores = 4;
        let small = model.watts(&fewer, &rep_hi, 0.6);
        assert!(small < hi);
    }

    #[test]
    fn perf_per_watt_can_prefer_lower_frequency() {
        // Throughput always prefers 2.2 GHz; perf/watt narrows the gap
        // because dynamic power is cubic in frequency.
        let model = PowerModel::default();
        let (cfg_hi, rep_hi) = report_for(2.2);
        let (cfg_lo, rep_lo) = report_for(1.8);
        let tput_ratio = Objective::Throughput.score(&model, &cfg_hi, &rep_hi, 0.6)
            / Objective::Throughput.score(&model, &cfg_lo, &rep_lo, 0.6);
        let ppw_ratio = Objective::PerfPerWatt.score(&model, &cfg_hi, &rep_hi, 0.6)
            / Objective::PerfPerWatt.score(&model, &cfg_lo, &rep_lo, 0.6);
        assert!(tput_ratio > 1.0);
        assert!(
            ppw_ratio < tput_ratio,
            "perf/watt must discount the frequency win: {ppw_ratio} vs {tput_ratio}"
        );
    }
}
