//! µSKU command-line tool: reads a paper-style input file and runs the full
//! pipeline.
//!
//! ```text
//! usku path/to/input.usku [--fast] [--render-map]
//! ```
//!
//! Input file format (paper Sec. 4):
//!
//! ```text
//! microservice = web          # web|feed1|feed2|ads1|ads2|cache1|cache2
//! platform     = skylake18    # skylake18|skylake20|broadwell16
//! sweep        = independent  # independent|exhaustive|hill_climbing
//! knobs        = cdp, thp     # optional subset
//! metric       = mips         # mips|qps
//! seed         = 42
//! ```

use usku::{InputFile, Usku, UskuConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let render_map = args.iter().any(|a| a == "--render-map");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let Some(path) = paths.first() else {
        eprintln!("usage: usku <input-file> [--fast] [--render-map]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("usku: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let input = match InputFile::parse(&text) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("usku: {e}");
            std::process::exit(2);
        }
    };
    let config = if fast {
        let mut c = UskuConfig::fast_test();
        c.validate_days = 1.0;
        c
    } else {
        UskuConfig::default()
    };
    eprintln!(
        "usku: tuning {} on {} ({} sweep){}",
        input.microservice,
        input.platform,
        input.sweep,
        if fast { " [fast budgets]" } else { "" }
    );
    match Usku::with_config(input, config).run() {
        Ok(report) => {
            println!("{}", report.render());
            if render_map {
                println!("{}", report.map.render());
            }
        }
        Err(e) => {
            eprintln!("usku: {e}");
            std::process::exit(1);
        }
    }
}
