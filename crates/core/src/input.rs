//! µSKU input files (paper Sec. 4, Fig. 13).
//!
//! "The user provides an input file with the following three input
//! parameters": the target microservice, the processor platform, and the
//! sweep configuration (independent vs. exhaustive). This module parses a
//! simple `key = value` file format and resolves it against the workload
//! registry.
//!
//! ```text
//! # µSKU input file
//! microservice = web
//! platform     = skylake18
//! sweep        = independent
//! # optional:
//! knobs        = core_frequency, cdp, thp
//! metric       = mips
//! seed         = 42
//! ```

use crate::error::UskuError;
use crate::metric::PerformanceMetric;
use softsku_archsim::platform::PlatformKind;
use softsku_knobs::Knob;
use softsku_workloads::Microservice;

/// Sweep configuration (paper Sec. 4, input parameter 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepConfig {
    /// Scale knobs one-by-one, presuming additive effects (the practical
    /// default: "we have had success in tuning knobs independently").
    Independent,
    /// Explore the cross product of knob settings ("requires an
    /// impractically large number of A/B tests" — bounded by a test budget).
    Exhaustive,
    /// Hill climbing over single-knob moves (the Sec. 7 extension).
    HillClimbing,
}

impl SweepConfig {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "independent" => Some(SweepConfig::Independent),
            "exhaustive" => Some(SweepConfig::Exhaustive),
            "hill_climbing" | "hillclimbing" => Some(SweepConfig::HillClimbing),
            _ => None,
        }
    }
}

impl std::fmt::Display for SweepConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SweepConfig::Independent => "independent",
            SweepConfig::Exhaustive => "exhaustive",
            SweepConfig::HillClimbing => "hill_climbing",
        };
        f.write_str(s)
    }
}

/// Parsed and validated µSKU input.
#[derive(Debug, Clone, PartialEq)]
pub struct InputFile {
    /// Target microservice (input parameter 1).
    pub microservice: Microservice,
    /// Processor platform (input parameter 2).
    pub platform: PlatformKind,
    /// Sweep configuration (input parameter 3).
    pub sweep: SweepConfig,
    /// Knob subset to study; `None` = all applicable knobs.
    pub knobs: Option<Vec<Knob>>,
    /// Performance metric for the A/B tests.
    pub metric: PerformanceMetric,
    /// RNG seed for the whole experiment.
    pub seed: u64,
}

impl InputFile {
    /// Builds an input directly (API use; the file parser delegates here).
    pub fn new(microservice: Microservice, platform: PlatformKind, sweep: SweepConfig) -> Self {
        InputFile {
            microservice,
            platform,
            sweep,
            knobs: None,
            metric: PerformanceMetric::Mips,
            seed: 42,
        }
    }

    /// Parses the `key = value` input format.
    ///
    /// # Errors
    ///
    /// [`UskuError::InputParse`] with the offending line for unknown keys,
    /// bad values, missing required keys, or duplicates.
    ///
    /// # Example
    ///
    /// ```
    /// use usku::input::InputFile;
    ///
    /// let input = InputFile::parse(
    ///     "microservice = web\nplatform = skylake18\nsweep = independent\n",
    /// )
    /// .unwrap();
    /// assert_eq!(input.microservice.name(), "Web");
    /// ```
    pub fn parse(text: &str) -> Result<Self, UskuError> {
        let mut microservice = None;
        let mut platform = None;
        let mut sweep = None;
        let mut knobs = None;
        let mut metric = PerformanceMetric::Mips;
        let mut seed = 42u64;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(UskuError::InputParse {
                    line: line_no,
                    detail: format!("expected `key = value`, got {line:?}"),
                });
            };
            let key = key.trim().to_lowercase();
            let value = value.trim();
            let dup = |name: &str| UskuError::InputParse {
                line: line_no,
                detail: format!("duplicate key {name:?}"),
            };
            match key.as_str() {
                "microservice" | "service" => {
                    if microservice.is_some() {
                        return Err(dup("microservice"));
                    }
                    microservice = Some(Microservice::from_name(value).map_err(|e| {
                        UskuError::InputParse {
                            line: line_no,
                            detail: e.to_string(),
                        }
                    })?);
                }
                "platform" => {
                    if platform.is_some() {
                        return Err(dup("platform"));
                    }
                    platform =
                        Some(parse_platform(value).ok_or_else(|| UskuError::InputParse {
                            line: line_no,
                            detail: format!("unknown platform {value:?}"),
                        })?);
                }
                "sweep" => {
                    if sweep.is_some() {
                        return Err(dup("sweep"));
                    }
                    sweep = Some(SweepConfig::parse(&value.to_lowercase()).ok_or_else(|| {
                        UskuError::InputParse {
                            line: line_no,
                            detail: format!(
                                "unknown sweep {value:?} (independent | exhaustive | hill_climbing)"
                            ),
                        }
                    })?);
                }
                "knobs" => {
                    let mut list = Vec::new();
                    for item in value.split(',') {
                        let name = item.trim().to_lowercase();
                        if name.is_empty() {
                            continue;
                        }
                        let knob = Knob::from_name(&name).ok_or_else(|| UskuError::InputParse {
                            line: line_no,
                            detail: format!("unknown knob {name:?}"),
                        })?;
                        list.push(knob);
                    }
                    if list.is_empty() {
                        return Err(UskuError::InputParse {
                            line: line_no,
                            detail: "empty knob list".into(),
                        });
                    }
                    knobs = Some(list);
                }
                "metric" => {
                    metric =
                        PerformanceMetric::from_name(&value.to_lowercase()).ok_or_else(|| {
                            UskuError::InputParse {
                                line: line_no,
                                detail: format!(
                                    "unknown metric {value:?} (mips | qps | mips_per_watt)"
                                ),
                            }
                        })?;
                }
                "seed" => {
                    seed = value.parse().map_err(|_| UskuError::InputParse {
                        line: line_no,
                        detail: format!("seed must be an unsigned integer, got {value:?}"),
                    })?;
                }
                other => {
                    return Err(UskuError::InputParse {
                        line: line_no,
                        detail: format!("unknown key {other:?}"),
                    });
                }
            }
        }

        let microservice = microservice.ok_or(UskuError::InputParse {
            line: 0,
            detail: "missing required key `microservice`".into(),
        })?;
        let platform = platform.unwrap_or_else(|| microservice.default_platform());
        let sweep = sweep.unwrap_or(SweepConfig::Independent);
        // Validate the combination early.
        microservice.profile(platform)?;
        Ok(InputFile {
            microservice,
            platform,
            sweep,
            knobs,
            metric,
            seed,
        })
    }
}

fn parse_platform(s: &str) -> Option<PlatformKind> {
    match s.to_lowercase().as_str() {
        "skylake18" => Some(PlatformKind::Skylake18),
        "skylake20" => Some(PlatformKind::Skylake20),
        "broadwell16" => Some(PlatformKind::Broadwell16),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_file_parses_with_defaults() {
        let input = InputFile::parse("microservice = ads1\n").unwrap();
        assert_eq!(input.microservice, Microservice::Ads1);
        assert_eq!(input.platform, PlatformKind::Skylake18);
        assert_eq!(input.sweep, SweepConfig::Independent);
        assert!(input.knobs.is_none());
        assert_eq!(input.metric, PerformanceMetric::Mips);
    }

    #[test]
    fn full_file_parses() {
        let text = "\
# comment
microservice = web     # trailing comment
platform = broadwell16
sweep = hill_climbing
knobs = core_frequency, cdp , thp
metric = qps
seed = 7
";
        let input = InputFile::parse(text).unwrap();
        assert_eq!(input.platform, PlatformKind::Broadwell16);
        assert_eq!(input.sweep, SweepConfig::HillClimbing);
        assert_eq!(
            input.knobs.as_deref(),
            Some(&[Knob::CoreFrequency, Knob::Cdp, Knob::Thp][..])
        );
        assert_eq!(input.metric, PerformanceMetric::Qps);
        assert_eq!(input.seed, 7);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = InputFile::parse("microservice = web\nbogus_key = 1\n").unwrap_err();
        match err {
            UskuError::InputParse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_bad_values() {
        assert!(InputFile::parse("microservice = webb\n").is_err());
        assert!(InputFile::parse("microservice = web\nplatform = epyc\n").is_err());
        assert!(InputFile::parse("microservice = web\nsweep = random\n").is_err());
        assert!(InputFile::parse("microservice = web\nknobs = turbo\n").is_err());
        assert!(InputFile::parse("microservice = web\nseed = -1\n").is_err());
        assert!(
            InputFile::parse("platform = skylake18\n").is_err(),
            "service required"
        );
        assert!(InputFile::parse("microservice = web\nmicroservice = ads1\n").is_err());
        assert!(InputFile::parse("just a line\n").is_err());
    }

    #[test]
    fn rejects_unsupported_combination() {
        // Cache1 runs only on Skylake20.
        assert!(InputFile::parse("microservice = cache1\nplatform = skylake18\n").is_err());
    }
}
