//! Per-arm CPI-stack capture and knob-win attribution.
//!
//! The paper attributes each knob's win to the microarchitectural bound it
//! relieved — front-end, memory, or core — by comparing TMAM top-down
//! breakdowns between configurations (Figs. 7–10). This module reproduces
//! that attribution for A/B arms: after a test completes,
//! [`ArmCpiStacks::capture`] reads
//! both arms' peak-load window reports (a pure cache lookup — the
//! simulation already computed them while the test ran, so probing is
//! free of RNG side effects and cannot perturb results), and
//! [`ArmCpiStacks::relieved`] names the bound whose share shrank most.
//!
//! The backend category splits into memory and core using the engine's CPI
//! parts: `backend_memory / total` is the memory-bound share of cycles, and
//! whatever remains of the TMAM backend fraction is core-bound. That is the
//! simulator's analogue of the sub-level TMAM drill-down the paper's EMON
//! methodology performs.

use softsku_archsim::engine::WindowReport;
use softsku_archsim::tmam::TmamBreakdown;
use softsku_cluster::env::{AbEnvironment, Arm};

/// The top-level bounds a knob win can be attributed to, matching the
/// paper's front-end / memory / core triad plus bad speculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmamBound {
    /// Front-end bound: fetch/decode starvation (i-cache, i-TLB, BPU).
    FrontEnd,
    /// Bad speculation: wasted issue slots from mispredicted paths.
    BadSpeculation,
    /// Backend, memory-bound: data-cache misses and DRAM latency.
    Memory,
    /// Backend, core-bound: execution-port and dependency stalls.
    Core,
}

impl TmamBound {
    /// Stable lowercase label used in trace attributes and `skuctl cpi`.
    pub fn label(self) -> &'static str {
        match self {
            TmamBound::FrontEnd => "front-end",
            TmamBound::BadSpeculation => "bad-speculation",
            TmamBound::Memory => "memory",
            TmamBound::Core => "core",
        }
    }
}

impl std::fmt::Display for TmamBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One arm's cycle-accounting profile at peak load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpiStack {
    /// TMAM top-down slot breakdown (fractions summing to 1).
    pub tmam: TmamBreakdown,
    /// Memory-bound share of total cycles (`cpi.backend_memory / cpi.total()`),
    /// used to split the TMAM backend fraction into memory vs core.
    pub memory_frac: f64,
}

impl CpiStack {
    /// Builds a stack from an engine window report.
    pub fn from_report(report: &WindowReport) -> CpiStack {
        let total = report.cpi.total();
        CpiStack {
            tmam: report.tmam,
            memory_frac: if total > 0.0 {
                report.cpi.backend_memory / total
            } else {
                0.0
            },
        }
    }

    /// The share of this stack attributed to `bound`. Backend splits into
    /// memory (from the CPI parts) and core (the remainder, floored at 0).
    pub fn share(&self, bound: TmamBound) -> f64 {
        match bound {
            TmamBound::FrontEnd => self.tmam.frontend,
            TmamBound::BadSpeculation => self.tmam.bad_speculation,
            TmamBound::Memory => self.memory_frac.min(self.tmam.backend),
            TmamBound::Core => (self.tmam.backend - self.memory_frac).max(0.0),
        }
    }
}

/// CPI stacks for both arms of a completed A/B test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmCpiStacks {
    /// The baseline arm's stack (arm A).
    pub baseline: CpiStack,
    /// The candidate arm's stack (arm B).
    pub candidate: CpiStack,
}

/// Every bound, in the fixed order attribution iterates them (ties go to
/// the earlier entry, so attribution is deterministic).
pub const ALL_BOUNDS: [TmamBound; 4] = [
    TmamBound::FrontEnd,
    TmamBound::BadSpeculation,
    TmamBound::Memory,
    TmamBound::Core,
];

impl ArmCpiStacks {
    /// Reads both arms' peak-load reports off the environment's simulation
    /// cache. Returns `None` when either arm's curve is unavailable (the
    /// probe is strictly best-effort — tracing must never fail a test).
    ///
    /// Call this **after** the A/B test ran: the curves were computed (and
    /// cached) during the test, so this is a read-only lookup with no RNG
    /// side effects, keeping traced and untraced runs bit-identical.
    pub fn capture(env: &mut AbEnvironment) -> Option<ArmCpiStacks> {
        let baseline = env.arm_mut(Arm::A).peak_report().ok()?;
        let candidate = env.arm_mut(Arm::B).peak_report().ok()?;
        Some(ArmCpiStacks {
            baseline: CpiStack::from_report(&baseline),
            candidate: CpiStack::from_report(&candidate),
        })
    }

    /// The bound the candidate relieved most: the largest positive drop in
    /// share from baseline to candidate, with its magnitude. `None` when no
    /// bound's share shrank (the win, if any, came from elsewhere — e.g.
    /// frequency scaling cycles faster without changing their mix).
    pub fn relieved(&self) -> Option<(TmamBound, f64)> {
        let mut best: Option<(TmamBound, f64)> = None;
        for bound in ALL_BOUNDS {
            let drop = self.baseline.share(bound) - self.candidate.share(bound);
            if drop > 0.0 && best.is_none_or(|(_, d)| drop > d) {
                best = Some((bound, drop));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(frontend: f64, bad_spec: f64, backend: f64, memory_frac: f64) -> CpiStack {
        CpiStack {
            tmam: TmamBreakdown {
                retiring: 1.0 - frontend - bad_spec - backend,
                frontend,
                bad_speculation: bad_spec,
                backend,
            },
            memory_frac,
        }
    }

    #[test]
    fn backend_splits_into_memory_and_core() {
        let s = stack(0.2, 0.1, 0.5, 0.3);
        assert!((s.share(TmamBound::Memory) - 0.3).abs() < 1e-12);
        assert!((s.share(TmamBound::Core) - 0.2).abs() < 1e-12);
        // Memory share can never exceed the whole backend fraction.
        let clamped = stack(0.2, 0.1, 0.3, 0.9);
        assert!((clamped.share(TmamBound::Memory) - 0.3).abs() < 1e-12);
        assert_eq!(clamped.share(TmamBound::Core), 0.0);
    }

    #[test]
    fn relieved_picks_the_largest_positive_drop() {
        let stacks = ArmCpiStacks {
            baseline: stack(0.30, 0.05, 0.40, 0.25),
            candidate: stack(0.12, 0.05, 0.40, 0.25),
        };
        let (bound, drop) = stacks.relieved().expect("front-end clearly relieved");
        assert_eq!(bound, TmamBound::FrontEnd);
        assert!((drop - 0.18).abs() < 1e-12);
    }

    #[test]
    fn relieved_is_none_when_nothing_improves() {
        let s = stack(0.2, 0.1, 0.4, 0.25);
        let stacks = ArmCpiStacks {
            baseline: s,
            candidate: s,
        };
        assert_eq!(stacks.relieved(), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TmamBound::FrontEnd.to_string(), "front-end");
        assert_eq!(TmamBound::Memory.label(), "memory");
        assert_eq!(ALL_BOUNDS.len(), 4);
    }
}
