//! µSKU: an automated design tool for microservice-specific *soft* server
//! SKUs — the primary contribution of "SoftSKU: Optimizing Server
//! Architectures for Microservice Diversity @Scale" (ISCA 2019).
//!
//! Data-center operators keep hardware SKU diversity low for fungibility and
//! procurement reasons, yet microservices have wildly diverse bottlenecks.
//! µSKU bridges the gap by tuning seven coarse-grain configuration knobs
//! (core/uncore frequency, core count, LLC code/data prioritization,
//! prefetchers, THP, SHP) per microservice via automated A/B testing on
//! production traffic, with statistical confidence tests that can detect
//! single-digit-percent effects under noise.
//!
//! Pipeline (paper Fig. 13):
//!
//! 1. [`input::InputFile`] — the three-parameter input file.
//! 2. [`usku::AbTestConfigurator`] — resolves the knob space and sweep plan.
//! 3. [`abtest::AbTester`] — warm-up discard, spaced noisy samples, Welch
//!    95 % tests, ~30 k-sample give-up, QoS and reboot gating.
//! 4. [`map::DesignSpaceMap`] — per-knob results and winners.
//! 5. [`generator::SoftSkuGenerator`] — composes winners, measures the
//!    composite vs stock and production, and validates the deployment at
//!    fleet scale via ODS-style QPS comparison.
//!
//! Extensions from the paper's Sec. 7 are included: exhaustive and
//! hill-climbing searches ([`search`]), a QPS metric for services where
//! MIPS is invalid ([`metric`]), and a perf-per-watt objective
//! ([`objective`]).
//!
//! For fleet-scale tuning, [`scheduler`] shards the A/B tests of a sweep
//! across a worker pool — each test on its own forked environment replica
//! with a seed derived from the test's identity — so parallel sweeps are
//! bit-identical to serial ones regardless of worker count, and a
//! [`scheduler::FleetTuner`] can tune all seven services concurrently.
//!
//! # Example
//!
//! ```no_run
//! use usku::{InputFile, Usku};
//!
//! let input = InputFile::parse(
//!     "microservice = web\nplatform = skylake18\nsweep = independent\n",
//! )?;
//! let report = Usku::new(input).run()?;
//! println!("{}", report.render());
//! # Ok::<(), usku::UskuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abtest;
pub mod error;
pub mod generator;
pub mod input;
pub mod map;
pub mod metric;
pub mod objective;
pub mod profile;
pub mod scheduler;
pub mod search;
pub mod usku;

pub use abtest::{AbTestConfig, AbTestResult, AbTester, InconclusiveReason, Verdict};
pub use error::UskuError;
pub use generator::{SoftSku, SoftSkuGenerator};
pub use input::{InputFile, SweepConfig};
pub use map::DesignSpaceMap;
pub use metric::PerformanceMetric;
pub use objective::{Objective, PowerModel};
pub use profile::{ArmCpiStacks, CpiStack, TmamBound, ALL_BOUNDS};
pub use scheduler::{
    default_workers, derive_joint_seed, derive_seed, parallel_exhaustive_sweep,
    parallel_independent_sweep, plan_exhaustive, plan_independent, run_replicas, run_tasks,
    trace_test_span, FleetOutcome, FleetTuner, JointUnit, ReplicaOutput, ReplicaRun, Schedule,
    ServiceTuning, TestUnit,
};
pub use search::{exhaustive_sweep, hill_climb, independent_sweep, SearchOutcome};
pub use usku::{AbTestConfigurator, Usku, UskuConfig, UskuReport};
