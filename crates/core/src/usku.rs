//! The end-to-end µSKU pipeline (paper Fig. 13): input file → A/B test
//! configurator → A/B tester → soft SKU generator.

use crate::abtest::{AbTestConfig, AbTester};
use crate::error::UskuError;
use crate::generator::{SoftSku, SoftSkuGenerator};
use crate::input::{InputFile, SweepConfig};
use crate::map::DesignSpaceMap;
use crate::search::{exhaustive_sweep, hill_climb, independent_sweep, SearchOutcome};
use softsku_cluster::{AbEnvironment, EnvConfig, ValidationOutcome};
use softsku_knobs::{Knob, KnobSpace};
use softsku_telemetry::streams::{stream_seed, StreamFamily};

/// The A/B test configurator (Fig. 13): resolves the input file into the
/// concrete sweep plan — which knobs, which candidates, which strategy.
#[derive(Debug)]
pub struct AbTestConfigurator {
    input: InputFile,
}

impl AbTestConfigurator {
    /// Creates a configurator for a parsed input file.
    pub fn new(input: InputFile) -> Self {
        AbTestConfigurator { input }
    }

    /// The knob space for this service/platform, with service constraints
    /// applied (reboot tolerance, SHP API usage, QoS core floors).
    ///
    /// # Errors
    ///
    /// Workload resolution errors.
    pub fn knob_space(&self) -> Result<KnobSpace, UskuError> {
        let profile = self.input.microservice.profile(self.input.platform)?;
        Ok(KnobSpace::for_platform(
            &profile.production_config.platform,
            profile.constraints,
        ))
    }

    /// The knobs to study: the user's subset intersected with the knobs the
    /// constraints leave active.
    ///
    /// # Errors
    ///
    /// Workload resolution errors.
    pub fn knobs(&self) -> Result<Vec<Knob>, UskuError> {
        let space = self.knob_space()?;
        let active = space.active_knobs();
        Ok(match &self.input.knobs {
            None => active,
            Some(requested) => requested
                .iter()
                .copied()
                .filter(|k| active.contains(k))
                .collect(),
        })
    }
}

/// Full report of one µSKU run.
#[derive(Debug)]
pub struct UskuReport {
    /// The input that drove the run.
    pub input: InputFile,
    /// Every A/B test performed.
    pub map: DesignSpaceMap,
    /// The generated soft SKU.
    pub soft_sku: SoftSku,
    /// Long-horizon deployment validation vs hand-tuned production.
    pub validation: Option<ValidationOutcome>,
    /// Simulated wall-clock the search consumed, seconds (the paper's
    /// prototype takes "5-10 hours" per service).
    pub search_time_s: f64,
    /// Injected-hazard and recovery event counts from the A/B environment
    /// (`"hazards/injected.spike"` → n), empty for hazard-free runs.
    pub hazard_counts: Vec<(String, u64)>,
}

/// Tunables for a full µSKU run.
#[derive(Debug, Clone, Copy)]
pub struct UskuConfig {
    /// A/B stopping rules.
    pub abtest: AbTestConfig,
    /// Environment parameters.
    pub env: EnvConfig,
    /// Budget for the exhaustive strategy.
    pub exhaustive_budget: usize,
    /// Step limit for hill climbing.
    pub hill_climb_steps: usize,
    /// Run the long-horizon fleet validation (simulated days; skippable for
    /// quick sweeps).
    pub validate_days: f64,
}

impl Default for UskuConfig {
    fn default() -> Self {
        UskuConfig {
            abtest: AbTestConfig::default(),
            env: EnvConfig::default(),
            exhaustive_budget: 500,
            hill_climb_steps: 3,
            validate_days: 2.0,
        }
    }
}

impl UskuConfig {
    /// Small-budget settings for unit tests.
    pub fn fast_test() -> Self {
        UskuConfig {
            abtest: AbTestConfig::fast_test(),
            env: EnvConfig::fast_test(),
            exhaustive_budget: 10,
            hill_climb_steps: 1,
            validate_days: 0.0,
        }
    }
}

/// The µSKU design tool.
#[derive(Debug)]
pub struct Usku {
    input: InputFile,
    config: UskuConfig,
}

impl Usku {
    /// Creates the tool from a parsed input file with default tunables.
    pub fn new(input: InputFile) -> Self {
        Self::with_config(input, UskuConfig::default())
    }

    /// Creates the tool with explicit tunables.
    pub fn with_config(input: InputFile, config: UskuConfig) -> Self {
        Usku { input, config }
    }

    /// Runs the full pipeline: sweep, compose, measure vs baselines, and
    /// (optionally) validate at fleet scale.
    ///
    /// # Errors
    ///
    /// Any pipeline error.
    pub fn run(&self) -> Result<UskuReport, UskuError> {
        let configurator = AbTestConfigurator::new(self.input.clone());
        let profile = self.input.microservice.profile(self.input.platform)?;
        let production = profile.production_config.clone();
        let stock = profile.stock_config.clone();
        let space = configurator.knob_space()?;
        let knobs = configurator.knobs()?;

        let mut env = AbEnvironment::new(profile.clone(), self.config.env, self.input.seed)?;
        let tester = AbTester::new(self.config.abtest, self.input.metric);

        let outcome: SearchOutcome = match self.input.sweep {
            SweepConfig::Independent => {
                independent_sweep(&tester, &mut env, &production, &space, &knobs)?
            }
            SweepConfig::Exhaustive => exhaustive_sweep(
                &tester,
                &mut env,
                &production,
                &space,
                &knobs,
                self.config.exhaustive_budget,
            )?,
            SweepConfig::HillClimbing => hill_climb(
                &tester,
                &mut env,
                &production,
                &space,
                &knobs,
                self.config.hill_climb_steps,
            )?,
        };

        let generator = SoftSkuGenerator::new(&tester);
        let soft_sku = generator.generate(&mut env, &outcome, &production, &stock)?;
        let search_time_s = env.time_s();
        let hazard_counts = env.hazard_counts();

        let validation = if self.config.validate_days > 0.0 {
            Some(generator.validate(
                profile,
                &soft_sku,
                &production,
                self.config.validate_days * 86_400.0,
                self.config.env.window_insns,
                stream_seed(self.input.seed, StreamFamily::UskuValidation),
            )?)
        } else {
            None
        };

        Ok(UskuReport {
            input: self.input.clone(),
            map: outcome.map,
            soft_sku,
            validation,
            search_time_s,
            hazard_counts,
        })
    }
}

impl UskuReport {
    /// Renders the report in the shape of the paper's Sec. 6 summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "µSKU report — {} on {} ({} sweep, {} metric)\n",
            self.input.microservice, self.input.platform, self.input.sweep, self.input.metric
        ));
        out.push_str(&format!(
            "  tests: {} ({} samples; {} QoS discards, {} reboot skips, {} inconclusive)\n",
            self.map.test_count(),
            self.map.sample_count(),
            self.map.qos_discards(),
            self.map.reboot_skips(),
            self.map.inconclusive()
        ));
        if !self.hazard_counts.is_empty() {
            out.push_str("  hazards survived:\n");
            for (series, n) in &self.hazard_counts {
                out.push_str(&format!("    {series:<36} {n}\n"));
            }
        }
        out.push_str(&format!(
            "  search time: {:.1} simulated hours\n",
            self.search_time_s / 3600.0
        ));
        out.push_str("  selections:\n");
        for (knob, setting, gain) in &self.soft_sku.selections {
            out.push_str(&format!(
                "    {:<16} -> {:<24} ({:+.2}% individually)\n",
                knob.to_string(),
                setting.to_string(),
                gain * 100.0
            ));
        }
        out.push_str(&format!(
            "  soft SKU vs production: {:+.2}%   vs stock: {:+.2}%   (additive prediction {:+.2}%)\n",
            self.soft_sku.gain_vs_production * 100.0,
            self.soft_sku.gain_vs_stock * 100.0,
            self.soft_sku.additive_prediction() * 100.0
        ));
        if let Some(v) = &self.validation {
            out.push_str(&format!(
                "  fleet validation: {:+.2}% QPS over {} code pushes (stable: {})\n",
                v.relative_gain * 100.0,
                v.code_pushes,
                v.stable_across_days
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_workloads::Microservice;

    #[test]
    fn configurator_respects_constraints_and_subsets() {
        let input = InputFile::parse("microservice = ads1\n").unwrap();
        let c = AbTestConfigurator::new(input);
        let knobs = c.knobs().unwrap();
        // Ads1: SHP gated (no API use); core count restricted to the QoS
        // floor (a single candidate remains, so the knob stays "active" but
        // the sweep is trivial).
        assert!(!knobs.contains(&Knob::Shp));

        let input =
            InputFile::parse("microservice = web\nknobs = thp, shp, core_frequency\n").unwrap();
        let c = AbTestConfigurator::new(input);
        let knobs = c.knobs().unwrap();
        assert_eq!(knobs, vec![Knob::Thp, Knob::Shp, Knob::CoreFrequency]);
    }

    #[test]
    fn cache_knob_set_excludes_reboot_knobs() {
        let input = InputFile::parse("microservice = cache2\n").unwrap();
        let knobs = AbTestConfigurator::new(input).knobs().unwrap();
        assert!(!knobs.contains(&Knob::CoreCount));
        assert!(!knobs.contains(&Knob::Shp));
        assert!(knobs.contains(&Knob::CoreFrequency));
    }

    #[test]
    fn end_to_end_small_run_produces_winning_sku() {
        let input = InputFile::parse("microservice = web\nknobs = thp, shp\nseed = 13\n").unwrap();
        let usku = Usku::with_config(input, UskuConfig::fast_test());
        let report = usku.run().unwrap();
        assert!(
            report.soft_sku.gain_vs_production > 0.02,
            "{}",
            report.render()
        );
        assert!(report.map.test_count() >= 7);
        assert!(report.search_time_s > 0.0);
        let rendered = report.render();
        assert!(rendered.contains("soft SKU vs production"));
        assert!(rendered.contains("Web"));
    }

    #[test]
    fn recommended_metric_for_cache_is_qps() {
        use crate::metric::PerformanceMetric;
        assert_eq!(
            PerformanceMetric::recommended_for(Microservice::Cache1),
            PerformanceMetric::Qps
        );
    }
}
