//! Error type for µSKU.

use softsku_cluster::ClusterError;
use softsku_knobs::KnobError;
use softsku_telemetry::TelemetryError;
use softsku_workloads::WorkloadError;
use std::error::Error;
use std::fmt;

/// Errors raised by the µSKU tool.
#[derive(Debug)]
#[non_exhaustive]
pub enum UskuError {
    /// The input file could not be parsed.
    InputParse {
        /// 1-based line number of the offending line (0 = file-level).
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The requested workload/platform combination is invalid.
    Workload(WorkloadError),
    /// A knob operation failed.
    Knob(KnobError),
    /// The production environment failed.
    Cluster(ClusterError),
    /// A statistics routine failed.
    Stats(TelemetryError),
    /// The A/B tester could not collect any valid sample for a setting.
    NoSamples {
        /// The knob setting under test.
        setting: String,
    },
}

impl fmt::Display for UskuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UskuError::InputParse { line, detail } => {
                if *line == 0 {
                    write!(f, "input file: {detail}")
                } else {
                    write!(f, "input file line {line}: {detail}")
                }
            }
            UskuError::Workload(e) => write!(f, "workload: {e}"),
            UskuError::Knob(e) => write!(f, "knob: {e}"),
            UskuError::Cluster(e) => write!(f, "cluster: {e}"),
            UskuError::Stats(e) => write!(f, "statistics: {e}"),
            UskuError::NoSamples { setting } => {
                write!(f, "no valid samples collected for setting {setting}")
            }
        }
    }
}

impl Error for UskuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UskuError::Workload(e) => Some(e),
            UskuError::Knob(e) => Some(e),
            UskuError::Cluster(e) => Some(e),
            UskuError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkloadError> for UskuError {
    fn from(e: WorkloadError) -> Self {
        UskuError::Workload(e)
    }
}

impl From<KnobError> for UskuError {
    fn from(e: KnobError) -> Self {
        UskuError::Knob(e)
    }
}

impl From<ClusterError> for UskuError {
    fn from(e: ClusterError) -> Self {
        UskuError::Cluster(e)
    }
}

impl From<TelemetryError> for UskuError {
    fn from(e: TelemetryError) -> Self {
        UskuError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = UskuError::InputParse {
            line: 3,
            detail: "unknown key".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = UskuError::InputParse {
            line: 0,
            detail: "empty".into(),
        };
        assert!(!e.to_string().contains("line 0"));
        let e = UskuError::NoSamples {
            setting: "300 SHPs".into(),
        };
        assert!(e.to_string().contains("300 SHPs"));
    }
}
