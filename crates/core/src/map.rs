//! The design-space map (paper Sec. 4).
//!
//! "When the desired 95 % statistical confidence is achieved, the A/B tester
//! outputs mean estimates, which it records in a design space map. … The
//! final design space map helps identify (with a 95 % confidence) the most
//! performant knob configurations."

use crate::abtest::{AbTestResult, Verdict};
use softsku_knobs::{Knob, KnobSetting};
use std::collections::BTreeMap;

/// All A/B results for one experiment, organized per knob.
#[derive(Debug, Default)]
pub struct DesignSpaceMap {
    per_knob: BTreeMap<Knob, Vec<AbTestResult>>,
}

impl DesignSpaceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one A/B result.
    pub fn record(&mut self, result: AbTestResult) {
        self.per_knob
            .entry(result.setting.knob())
            .or_default()
            .push(result);
    }

    /// Knobs with at least one recorded result.
    pub fn knobs(&self) -> impl Iterator<Item = Knob> + '_ {
        self.per_knob.keys().copied()
    }

    /// All results for one knob, in test order.
    pub fn results(&self, knob: Knob) -> &[AbTestResult] {
        self.per_knob.get(&knob).map_or(&[], Vec::as_slice)
    }

    /// The most performant *significantly better* setting for a knob, if any
    /// setting beat the baseline.
    pub fn best_setting(&self, knob: Knob) -> Option<(KnobSetting, f64)> {
        self.results(knob)
            .iter()
            .filter_map(|r| r.verdict.gain().map(|g| (r.setting, g)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("gains are finite"))
    }

    /// Total A/B tests recorded.
    pub fn test_count(&self) -> usize {
        self.per_knob.values().map(Vec::len).sum()
    }

    /// Total samples consumed across all tests.
    pub fn sample_count(&self) -> usize {
        self.per_knob
            .values()
            .flat_map(|v| v.iter())
            .map(|r| r.samples)
            .sum()
    }

    /// Settings discarded for QoS violations.
    pub fn qos_discards(&self) -> usize {
        self.count_verdict(|v| matches!(v, Verdict::QosViolated))
    }

    /// Settings skipped because the service cannot tolerate reboots.
    pub fn reboot_skips(&self) -> usize {
        self.count_verdict(|v| matches!(v, Verdict::SkippedRebootIntolerant))
    }

    /// Tests that hazards disrupted beyond a statistical claim.
    pub fn inconclusive(&self) -> usize {
        self.count_verdict(|v| matches!(v, Verdict::Inconclusive { .. }))
    }

    fn count_verdict(&self, pred: impl Fn(&Verdict) -> bool) -> usize {
        self.per_knob
            .values()
            .flat_map(|v| v.iter())
            .filter(|r| pred(&r.verdict))
            .count()
    }

    /// Renders a human-readable table of the map (one line per test).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (knob, results) in &self.per_knob {
            out.push_str(&format!("knob {knob}:\n"));
            for r in results {
                let desc = match r.verdict {
                    Verdict::Better { gain } => format!("better {:+.2}%", gain * 100.0),
                    Verdict::Worse { loss } => format!("worse {:+.2}%", loss * 100.0),
                    Verdict::NoDifference => "no significant difference".to_string(),
                    Verdict::QosViolated => "discarded: QoS violation".to_string(),
                    Verdict::SkippedRebootIntolerant => "skipped: reboot not tolerated".to_string(),
                    Verdict::Inconclusive { reason } => format!("inconclusive: {reason}"),
                };
                out.push_str(&format!(
                    "  {:<28} {:<28} ({} samples)\n",
                    r.setting.to_string(),
                    desc,
                    r.samples
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_telemetry::stats::Summary;

    fn result(setting: KnobSetting, verdict: Verdict, samples: usize) -> AbTestResult {
        AbTestResult {
            setting,
            baseline: Some(Summary::from_moments(samples as u64, 100.0, 1.0)),
            candidate: Some(Summary::from_moments(samples as u64, 101.0, 1.0)),
            welch: None,
            verdict,
            samples,
            attempts: samples,
            rejected_outliers: 0,
        }
    }

    #[test]
    fn best_setting_picks_max_gain() {
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::ShpPages(100),
            Verdict::Better { gain: 0.01 },
            200,
        ));
        map.record(result(
            KnobSetting::ShpPages(300),
            Verdict::Better { gain: 0.06 },
            200,
        ));
        map.record(result(
            KnobSetting::ShpPages(600),
            Verdict::Worse { loss: -0.01 },
            200,
        ));
        let (setting, gain) = map.best_setting(Knob::Shp).unwrap();
        assert_eq!(setting, KnobSetting::ShpPages(300));
        assert!((gain - 0.06).abs() < 1e-12);
        assert_eq!(map.test_count(), 3);
        assert_eq!(map.sample_count(), 600);
    }

    #[test]
    fn no_winner_when_nothing_beats_baseline() {
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::CoreFrequencyGhz(1.8),
            Verdict::Worse { loss: -0.1 },
            100,
        ));
        map.record(result(
            KnobSetting::CoreFrequencyGhz(2.0),
            Verdict::NoDifference,
            2000,
        ));
        assert!(map.best_setting(Knob::CoreFrequency).is_none());
    }

    #[test]
    fn discard_and_skip_counting() {
        let mut map = DesignSpaceMap::new();
        map.record(result(KnobSetting::CoreCount(4), Verdict::QosViolated, 0));
        map.record(result(
            KnobSetting::CoreCount(8),
            Verdict::SkippedRebootIntolerant,
            0,
        ));
        assert_eq!(map.qos_discards(), 1);
        assert_eq!(map.reboot_skips(), 1);
        let rendered = map.render();
        assert!(rendered.contains("QoS violation"));
        assert!(rendered.contains("reboot not tolerated"));
    }

    #[test]
    fn inconclusive_results_are_counted_and_rendered() {
        use crate::abtest::InconclusiveReason;
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::ShpPages(100),
            Verdict::Inconclusive {
                reason: InconclusiveReason::SampleBudgetExhausted,
            },
            40,
        ));
        assert_eq!(map.inconclusive(), 1);
        assert!(map.best_setting(Knob::Shp).is_none());
        assert!(map.render().contains("inconclusive"));
    }

    #[test]
    fn empty_map_is_well_behaved() {
        let map = DesignSpaceMap::new();
        assert_eq!(map.test_count(), 0);
        assert_eq!(map.results(Knob::Cdp).len(), 0);
        assert!(map.best_setting(Knob::Thp).is_none());
        assert!(map.render().is_empty());
    }
}
