//! The design-space map (paper Sec. 4).
//!
//! "When the desired 95 % statistical confidence is achieved, the A/B tester
//! outputs mean estimates, which it records in a design space map. … The
//! final design space map helps identify (with a 95 % confidence) the most
//! performant knob configurations."

use crate::abtest::{AbTestResult, Verdict};
use softsku_knobs::{Knob, KnobSetting};
use std::collections::BTreeMap;

/// One measurement of a *joint* configuration (several knobs changed at
/// once, as the exhaustive sweep produces).
///
/// Joint results live in a dedicated ledger rather than under any single
/// knob: attributing a joint gain to one constituent knob would let
/// [`DesignSpaceMap::best_setting`] claim the whole interaction effect for
/// that knob alone.
#[derive(Debug, Clone)]
pub struct JointResult {
    /// The constituent setting of every swept knob, in sweep order.
    pub settings: Vec<KnobSetting>,
    /// The measurement; `result.setting` is a display label only.
    pub result: AbTestResult,
}

/// All A/B results for one experiment, organized per knob, with joint
/// (multi-knob) configurations in a separate ledger.
#[derive(Debug, Default)]
pub struct DesignSpaceMap {
    per_knob: BTreeMap<Knob, Vec<AbTestResult>>,
    joint: Vec<JointResult>,
}

impl DesignSpaceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one A/B result.
    pub fn record(&mut self, result: AbTestResult) {
        self.per_knob
            .entry(result.setting.knob())
            .or_default()
            .push(result);
    }

    /// Records one joint-configuration result under every constituent
    /// setting, in the dedicated joint ledger.
    pub fn record_joint(&mut self, settings: Vec<KnobSetting>, result: AbTestResult) {
        self.joint.push(JointResult { settings, result });
    }

    /// All joint-configuration results, in test order.
    pub fn joint_results(&self) -> &[JointResult] {
        &self.joint
    }

    /// The most performant *significantly better* joint configuration, if
    /// any beat the baseline. Ties keep the earliest-recorded entry, so the
    /// winner is independent of how a parallel sweep's shards completed.
    pub fn best_joint(&self) -> Option<(&JointResult, f64)> {
        let mut best: Option<(&JointResult, f64)> = None;
        for j in &self.joint {
            if let Some(gain) = j.result.verdict.gain() {
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((j, gain));
                }
            }
        }
        best
    }

    /// Appends every result of `other`, preserving `other`'s internal test
    /// order. The parallel scheduler merges worker maps with this in
    /// canonical (plan) order, which is what makes the merged map identical
    /// regardless of worker count or completion order.
    pub fn merge(&mut self, other: DesignSpaceMap) {
        for (knob, results) in other.per_knob {
            self.per_knob.entry(knob).or_default().extend(results);
        }
        self.joint.extend(other.joint);
    }

    /// Knobs with at least one recorded result.
    pub fn knobs(&self) -> impl Iterator<Item = Knob> + '_ {
        self.per_knob.keys().copied()
    }

    /// All results for one knob, in test order.
    pub fn results(&self, knob: Knob) -> &[AbTestResult] {
        self.per_knob.get(&knob).map_or(&[], Vec::as_slice)
    }

    /// The most performant *significantly better* setting for a knob, if any
    /// setting beat the baseline.
    pub fn best_setting(&self, knob: Knob) -> Option<(KnobSetting, f64)> {
        self.results(knob)
            .iter()
            .filter_map(|r| r.verdict.gain().map(|g| (r.setting, g)))
            // detlint::allow(panic_path): gains come from Verdict::gain(),
            // which only ever yields finite values.
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("gains are finite"))
    }

    /// The per-knob winners: for every knob with a significantly better
    /// setting, that setting and its measured gain, in knob order (the map
    /// is keyed by a `BTreeMap`, so the order is canonical and independent
    /// of recording order). This is the input the rollout crate's
    /// `SkuComposer` starts from.
    pub fn winners(&self) -> Vec<(Knob, KnobSetting, f64)> {
        self.per_knob
            .keys()
            .filter_map(|&knob| self.best_setting(knob).map(|(s, g)| (knob, s, g)))
            .collect()
    }

    /// The single best per-knob winner across the whole map — the strongest
    /// claim a *one-knob* SKU could make. Ties keep the earliest knob in
    /// knob order.
    pub fn best_single(&self) -> Option<(Knob, KnobSetting, f64)> {
        let mut best: Option<(Knob, KnobSetting, f64)> = None;
        for w in self.winners() {
            if best.is_none_or(|b| w.2 > b.2) {
                best = Some(w);
            }
        }
        best
    }

    /// Total A/B tests recorded, joint configurations included.
    pub fn test_count(&self) -> usize {
        self.per_knob.values().map(Vec::len).sum::<usize>() + self.joint.len()
    }

    /// Total samples consumed across all tests, joint configurations
    /// included.
    pub fn sample_count(&self) -> usize {
        self.all_results().map(|r| r.samples).sum()
    }

    /// Settings discarded for QoS violations.
    pub fn qos_discards(&self) -> usize {
        self.count_verdict(|v| matches!(v, Verdict::QosViolated))
    }

    /// Settings skipped because the service cannot tolerate reboots.
    pub fn reboot_skips(&self) -> usize {
        self.count_verdict(|v| matches!(v, Verdict::SkippedRebootIntolerant))
    }

    /// Tests that hazards disrupted beyond a statistical claim.
    pub fn inconclusive(&self) -> usize {
        self.count_verdict(|v| matches!(v, Verdict::Inconclusive { .. }))
    }

    fn count_verdict(&self, pred: impl Fn(&Verdict) -> bool) -> usize {
        self.all_results().filter(|r| pred(&r.verdict)).count()
    }

    /// Every recorded result, per-knob entries first, then joint entries.
    fn all_results(&self) -> impl Iterator<Item = &AbTestResult> {
        self.per_knob
            .values()
            .flat_map(|v| v.iter())
            .chain(self.joint.iter().map(|j| &j.result))
    }

    /// Renders a human-readable table of the map (one line per test).
    pub fn render(&self) -> String {
        let verdict_desc = |verdict: &Verdict| match *verdict {
            Verdict::Better { gain } => format!("better {:+.2}%", gain * 100.0),
            Verdict::Worse { loss } => format!("worse {:+.2}%", loss * 100.0),
            Verdict::NoDifference => "no significant difference".to_string(),
            Verdict::QosViolated => "discarded: QoS violation".to_string(),
            Verdict::SkippedRebootIntolerant => "skipped: reboot not tolerated".to_string(),
            Verdict::Inconclusive { reason } => format!("inconclusive: {reason}"),
        };
        let mut out = String::new();
        for (knob, results) in &self.per_knob {
            out.push_str(&format!("knob {knob}:\n"));
            for r in results {
                out.push_str(&format!(
                    "  {:<28} {:<28} ({} samples)\n",
                    r.setting.to_string(),
                    verdict_desc(&r.verdict),
                    r.samples
                ));
            }
        }
        if !self.joint.is_empty() {
            out.push_str("joint configurations:\n");
            for j in &self.joint {
                let label = j
                    .settings
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "  [{label}] {:<28} ({} samples)\n",
                    verdict_desc(&j.result.verdict),
                    j.result.samples
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_telemetry::stats::Summary;

    fn result(setting: KnobSetting, verdict: Verdict, samples: usize) -> AbTestResult {
        AbTestResult {
            setting,
            baseline: Some(Summary::from_moments(samples as u64, 100.0, 1.0)),
            candidate: Some(Summary::from_moments(samples as u64, 101.0, 1.0)),
            welch: None,
            verdict,
            samples,
            attempts: samples,
            rejected_outliers: 0,
        }
    }

    #[test]
    fn best_setting_picks_max_gain() {
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::ShpPages(100),
            Verdict::Better { gain: 0.01 },
            200,
        ));
        map.record(result(
            KnobSetting::ShpPages(300),
            Verdict::Better { gain: 0.06 },
            200,
        ));
        map.record(result(
            KnobSetting::ShpPages(600),
            Verdict::Worse { loss: -0.01 },
            200,
        ));
        let (setting, gain) = map.best_setting(Knob::Shp).unwrap();
        assert_eq!(setting, KnobSetting::ShpPages(300));
        assert!((gain - 0.06).abs() < 1e-12);
        assert_eq!(map.test_count(), 3);
        assert_eq!(map.sample_count(), 600);
    }

    #[test]
    fn no_winner_when_nothing_beats_baseline() {
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::CoreFrequencyGhz(1.8),
            Verdict::Worse { loss: -0.1 },
            100,
        ));
        map.record(result(
            KnobSetting::CoreFrequencyGhz(2.0),
            Verdict::NoDifference,
            2000,
        ));
        assert!(map.best_setting(Knob::CoreFrequency).is_none());
    }

    #[test]
    fn discard_and_skip_counting() {
        let mut map = DesignSpaceMap::new();
        map.record(result(KnobSetting::CoreCount(4), Verdict::QosViolated, 0));
        map.record(result(
            KnobSetting::CoreCount(8),
            Verdict::SkippedRebootIntolerant,
            0,
        ));
        assert_eq!(map.qos_discards(), 1);
        assert_eq!(map.reboot_skips(), 1);
        let rendered = map.render();
        assert!(rendered.contains("QoS violation"));
        assert!(rendered.contains("reboot not tolerated"));
    }

    #[test]
    fn inconclusive_results_are_counted_and_rendered() {
        use crate::abtest::InconclusiveReason;
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::ShpPages(100),
            Verdict::Inconclusive {
                reason: InconclusiveReason::SampleBudgetExhausted,
            },
            40,
        ));
        assert_eq!(map.inconclusive(), 1);
        assert!(map.best_setting(Knob::Shp).is_none());
        assert!(map.render().contains("inconclusive"));
    }

    #[test]
    fn empty_map_is_well_behaved() {
        let map = DesignSpaceMap::new();
        assert_eq!(map.test_count(), 0);
        assert_eq!(map.results(Knob::Cdp).len(), 0);
        assert!(map.best_setting(Knob::Thp).is_none());
        assert!(map.best_joint().is_none());
        assert!(map.render().is_empty());
    }

    #[test]
    fn joint_results_do_not_pollute_per_knob_attribution() {
        let mut map = DesignSpaceMap::new();
        let settings = vec![
            KnobSetting::ShpPages(300),
            KnobSetting::Thp(softsku_archsim::ThpMode::AlwaysOn),
        ];
        map.record_joint(
            settings.clone(),
            result(settings[1], Verdict::Better { gain: 0.08 }, 150),
        );
        // The joint gain is visible in the joint ledger only.
        assert!(map.best_setting(Knob::Shp).is_none());
        assert!(map.best_setting(Knob::Thp).is_none());
        let (best, gain) = map.best_joint().unwrap();
        assert_eq!(best.settings, settings);
        assert!((gain - 0.08).abs() < 1e-12);
        assert_eq!(map.test_count(), 1);
        assert_eq!(map.sample_count(), 150);
        assert!(map.render().contains("joint configurations"));
    }

    #[test]
    fn joint_ties_keep_the_earliest_entry() {
        let mut map = DesignSpaceMap::new();
        let first = vec![KnobSetting::ShpPages(300)];
        let second = vec![KnobSetting::ShpPages(400)];
        map.record_joint(
            first.clone(),
            result(first[0], Verdict::Better { gain: 0.05 }, 100),
        );
        map.record_joint(
            second.clone(),
            result(second[0], Verdict::Better { gain: 0.05 }, 100),
        );
        assert_eq!(map.best_joint().unwrap().0.settings, first);
    }

    #[test]
    fn winners_come_out_in_knob_order_with_best_single_on_top() {
        let mut map = DesignSpaceMap::new();
        map.record(result(
            KnobSetting::ShpPages(300),
            Verdict::Better { gain: 0.06 },
            200,
        ));
        map.record(result(
            KnobSetting::CoreFrequencyGhz(1.8),
            Verdict::Better { gain: 0.02 },
            200,
        ));
        map.record(result(KnobSetting::CoreCount(8), Verdict::NoDifference, 50));
        let winners = map.winners();
        assert_eq!(winners.len(), 2, "NoDifference is not a winner");
        // Knob order, not recording or gain order.
        assert_eq!(winners[0].0, Knob::CoreFrequency);
        assert_eq!(winners[1].0, Knob::Shp);
        let (knob, setting, gain) = map.best_single().unwrap();
        assert_eq!(knob, Knob::Shp);
        assert_eq!(setting, KnobSetting::ShpPages(300));
        assert!((gain - 0.06).abs() < 1e-12);
        assert!(DesignSpaceMap::new().best_single().is_none());
    }

    #[test]
    fn merge_preserves_order_and_counts() {
        let mut a = DesignSpaceMap::new();
        a.record(result(
            KnobSetting::ShpPages(100),
            Verdict::Better { gain: 0.01 },
            50,
        ));
        let mut b = DesignSpaceMap::new();
        b.record(result(
            KnobSetting::ShpPages(300),
            Verdict::Better { gain: 0.06 },
            50,
        ));
        b.record_joint(
            vec![KnobSetting::ShpPages(300)],
            result(
                KnobSetting::ShpPages(300),
                Verdict::Better { gain: 0.07 },
                50,
            ),
        );
        a.merge(b);
        assert_eq!(a.test_count(), 3);
        assert_eq!(a.results(Knob::Shp).len(), 2);
        assert_eq!(a.results(Knob::Shp)[1].setting, KnobSetting::ShpPages(300));
        assert_eq!(a.joint_results().len(), 1);
        assert_eq!(
            a.best_setting(Knob::Shp).unwrap().0,
            KnobSetting::ShpPages(300)
        );
    }
}
