//! Property-based tests on the simulator's core data structures.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use softsku_archsim::cache::SetAssocCache;
use softsku_archsim::ranklist::RankList;
use softsku_archsim::reuse::ReuseDistanceDist;
use softsku_archsim::tlb::LruSet;
use softsku_archsim::trace::StackMapper;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The inverse-survival sampler only produces distances inside
    /// `[1, footprint)` plus the cold mass, and the empirical cold fraction
    /// tracks the configured one.
    #[test]
    fn sampled_distances_are_in_range(
        seed in any::<u64>(),
        knee_exp in 3u32..14,
        miss in 0.05f64..0.8,
        cold in 0.0f64..0.04,
    ) {
        let knee = 1u64 << knee_exp;
        let footprint = knee * 8;
        let dist = ReuseDistanceDist::single_knee(knee, miss, cold, footprint).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut colds = 0usize;
        let n = 3000;
        for _ in 0..n {
            match dist.sample(&mut rng) {
                None => colds += 1,
                Some(d) => prop_assert!((1..footprint).contains(&d), "distance {d}"),
            }
        }
        let frac = colds as f64 / n as f64;
        prop_assert!((frac - cold).abs() < 0.03, "cold {frac} vs {cold}");
    }

    /// Compaction by any factor ≥ 1 preserves validity and never increases
    /// the footprint.
    #[test]
    fn compaction_preserves_validity(factor in 1.0f64..512.0) {
        let dist = ReuseDistanceDist::from_survival_points(
            &[(128, 0.2), (4096, 0.05)],
            0.01,
            100_000,
        )
        .unwrap();
        let compacted = dist.compacted(factor);
        prop_assert!(compacted.footprint() <= dist.footprint());
        prop_assert!(compacted.miss_ratio(1) == 1.0);
        prop_assert!(compacted.miss_ratio(u64::MAX) <= dist.miss_ratio(1));
    }

    /// The stack mapper's id stream respects the footprint bound no matter
    /// the distribution shape.
    #[test]
    fn mapper_never_exceeds_footprint(
        seed in any::<u64>(),
        fp_exp in 4u32..12,
    ) {
        let footprint = 1u64 << fp_exp;
        let dist = ReuseDistanceDist::single_knee(
            footprint / 4,
            0.3,
            0.05,
            footprint,
        )
        .unwrap();
        let mut mapper = StackMapper::new(dist, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 1);
        for _ in 0..2000 {
            let _ = mapper.access(&mut rng);
            prop_assert!(mapper.live_ids() as u64 <= footprint);
        }
    }

    /// A cache access is a hit iff the line was in the same set's most
    /// recent `ways` distinct accesses — verified against a brute-force
    /// model on single-set caches.
    #[test]
    fn single_set_cache_is_exact_lru(
        ways in 1u32..9,
        accesses in proptest::collection::vec(0u64..24, 1..300),
    ) {
        let mut cache = SetAssocCache::new(1, ways).unwrap();
        let mut recency: Vec<u64> = Vec::new();
        for &a in &accesses {
            let model_hit = recency.iter().position(|&x| x == a).map(|p| {
                recency.remove(p);
            }).is_some();
            recency.insert(0, a);
            recency.truncate(ways as usize);
            prop_assert_eq!(cache.access(a), model_hit, "line {}", a);
        }
    }

    /// LruSet and RankList agree with their vector models under arbitrary
    /// workloads (cross-checked against each other via recency semantics).
    #[test]
    fn lru_set_capacity_invariant(
        cap in 1usize..64,
        keys in proptest::collection::vec(0u64..128, 1..400),
    ) {
        let mut set = LruSet::new(cap).unwrap();
        for &k in &keys {
            set.access(k);
            prop_assert!(set.len() <= cap);
        }
        // The most recent key is always resident.
        let last = *keys.last().unwrap();
        prop_assert!(set.access(last));
    }

    /// RankList front-insert/pop_back round-trips arbitrary sequences (FIFO
    /// through the stack).
    #[test]
    fn ranklist_fifo_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut list = RankList::new(3);
        for &v in &values {
            list.push_front(v);
        }
        let mut drained = Vec::new();
        while let Some(v) = list.pop_back() {
            drained.push(v);
        }
        prop_assert_eq!(drained, values);
    }

    /// with_sequence builds exactly the given order for any input.
    #[test]
    fn ranklist_with_sequence_preserves_order(values in proptest::collection::vec(any::<u64>(), 0..300)) {
        let list = RankList::with_sequence(11, values.clone());
        prop_assert_eq!(list.to_vec(), values);
    }
}
