//! Branch prediction model.
//!
//! The paper (Sec. 2.4.1) finds that mispredicted branches waste 3–13 % of
//! pipeline slots, that "data-crunching" services (Feed1) mispredict rarely,
//! and that in Web "aliasing in the Branch Target Buffer contributes a large
//! fraction of branch misspeculations" because of its enormous instruction
//! footprint. The model therefore has two components:
//!
//! * a per-workload *base* conditional misprediction rate (direction
//!   predictor quality on that code), and
//! * a structural BTB-aliasing term that grows once the workload's branch
//!   working set exceeds the BTB capacity.
//!
//! The aliasing term uses the standard uniform-hashing collision estimate:
//! with `W` warm branch sites hashed into `B` entries, the probability a
//! given site is resident is `min(1, B / W)`; a non-resident target costs a
//! misprediction-equivalent redirect.

use rand::Rng;

/// Branch predictor with BTB capacity effects.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    base_mispredict: f64,
    btb_hit_rate: f64,
    branches: u64,
    mispredicts: u64,
    btb_misses: u64,
}

impl BranchPredictor {
    /// Creates a predictor for a workload with `base_mispredict` direction
    /// misprediction probability and `branch_working_set` warm branch sites,
    /// running on a BTB with `btb_entries` entries.
    pub fn new(base_mispredict: f64, branch_working_set: u32, btb_entries: u32) -> Self {
        let btb_hit_rate = if branch_working_set == 0 {
            1.0
        } else {
            (btb_entries as f64 / branch_working_set as f64).min(1.0)
        };
        BranchPredictor {
            base_mispredict: base_mispredict.clamp(0.0, 1.0),
            btb_hit_rate,
            branches: 0,
            mispredicts: 0,
            btb_misses: 0,
        }
    }

    /// Predicts one branch; returns `true` when mispredicted.
    pub fn predict<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.branches += 1;
        // BTB miss ⇒ target unknown ⇒ redirect (counts as misprediction).
        if rng.gen::<f64>() >= self.btb_hit_rate {
            self.btb_misses += 1;
            self.mispredicts += 1;
            return true;
        }
        if rng.gen::<f64>() < self.base_mispredict {
            self.mispredicts += 1;
            return true;
        }
        false
    }

    /// Effective misprediction probability (analytic, not sampled).
    pub fn effective_mispredict_rate(&self) -> f64 {
        let btb_miss = 1.0 - self.btb_hit_rate;
        btb_miss + (1.0 - btb_miss) * self.base_mispredict
    }

    /// (branches, mispredicts, btb_misses) observed so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.branches, self.mispredicts, self.btb_misses)
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.branches = 0;
        self.mispredicts = 0;
        self.btb_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn small_working_set_matches_base_rate() {
        let mut p = BranchPredictor::new(0.03, 1000, 4096);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200_000 {
            p.predict(&mut rng);
        }
        let (b, m, btb) = p.stats();
        let rate = m as f64 / b as f64;
        assert_eq!(btb, 0, "working set fits: no BTB misses");
        assert!((rate - 0.03).abs() < 0.003, "rate = {rate}");
    }

    #[test]
    fn btb_aliasing_raises_mispredicts() {
        // Web-like: 16k warm branch sites on a 4k-entry BTB.
        let mut p = BranchPredictor::new(0.03, 16_384, 4096);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200_000 {
            p.predict(&mut rng);
        }
        let (b, m, btb) = p.stats();
        assert!(btb > 0);
        let rate = m as f64 / b as f64;
        let expected = p.effective_mispredict_rate();
        assert!(
            (rate - expected).abs() < 0.01,
            "rate {rate} vs analytic {expected}"
        );
        assert!(rate > 0.5, "75% BTB miss rate dominates: {rate}");
    }

    #[test]
    fn analytic_rate_formula() {
        let p = BranchPredictor::new(0.05, 8192, 4096);
        // BTB hit rate = 0.5; effective = 0.5 + 0.5*0.05 = 0.525.
        assert!((p.effective_mispredict_rate() - 0.525).abs() < 1e-12);
        let q = BranchPredictor::new(0.05, 0, 4096);
        assert!((q.effective_mispredict_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_counts() {
        let mut p = BranchPredictor::new(0.5, 100, 4096);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            p.predict(&mut rng);
        }
        p.reset_stats();
        assert_eq!(p.stats(), (0, 0, 0));
    }
}
