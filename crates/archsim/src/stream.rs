//! Workload stream specifications.
//!
//! A [`StreamSpec`] is the contract between the workload models (the
//! `softsku-workloads` crate) and the simulation engine: everything the
//! engine needs to synthesize a representative instruction/access stream for
//! one service. The fields map one-to-one onto the characterization axes of
//! the paper's Sec. 2 — instruction mix (Fig. 5), code/data locality
//! (Figs. 8–10), page locality (Fig. 11), branch behaviour (Fig. 7),
//! prefetchability and bandwidth appetite (Figs. 12, 17), context-switch
//! intensity (Fig. 4), and SMT/MLP yields.

use crate::error::ArchSimError;
use crate::reuse::ReuseDistanceDist;

/// Instruction-class fractions (paper Fig. 5). Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Branch instructions.
    pub branch: f64,
    /// Floating-point instructions.
    pub fp: f64,
    /// Integer arithmetic/logic.
    pub arith: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
}

impl InstructionMix {
    /// Creates a mix, validating that components are fractions summing to 1.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidFraction`] when any component is outside
    /// `[0, 1]` or the sum differs from 1 by more than 1e-6.
    pub fn new(
        branch: f64,
        fp: f64,
        arith: f64,
        load: f64,
        store: f64,
    ) -> Result<Self, ArchSimError> {
        for (name, v) in [
            ("branch", branch),
            ("fp", fp),
            ("arith", arith),
            ("load", load),
            ("store", store),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ArchSimError::InvalidFraction {
                    name: name.to_string(),
                    value: v,
                });
            }
        }
        let sum = branch + fp + arith + load + store;
        if (sum - 1.0).abs() > 1e-6 {
            return Err(ArchSimError::InvalidFraction {
                name: "mix sum".to_string(),
                value: sum,
            });
        }
        Ok(InstructionMix {
            branch,
            fp,
            arith,
            load,
            store,
        })
    }

    /// Convenience constructor from percentages (paper Fig. 5 is labelled in
    /// percent). Values are divided by 100 and re-validated.
    ///
    /// # Errors
    ///
    /// Same as [`InstructionMix::new`].
    pub fn from_percent(
        branch: f64,
        fp: f64,
        arith: f64,
        load: f64,
        store: f64,
    ) -> Result<Self, ArchSimError> {
        Self::new(
            branch / 100.0,
            fp / 100.0,
            arith / 100.0,
            load / 100.0,
            store / 100.0,
        )
    }

    /// Fraction of instructions that access memory (loads + stores).
    pub fn memory_fraction(&self) -> f64 {
        self.load + self.store
    }
}

/// Branch behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchProfile {
    /// Fraction of branches taken.
    pub taken_rate: f64,
    /// Baseline conditional-misprediction probability with an unaliased BTB.
    pub base_mispredict: f64,
    /// Distinct branch sites the workload exercises; BTB aliasing grows as
    /// this exceeds the BTB capacity (the paper's Web observation).
    pub branch_working_set: u32,
}

/// Fractions of data misses exhibiting each prefetchable pattern.
///
/// These drive the statistical prefetcher model: a next-line prefetcher can
/// only cover the sequential fraction, an IP-stride prefetcher the strided
/// fraction, and every covered miss costs `1/accuracy` lines of traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchAffinity {
    /// Fraction of data misses that are next-line sequential.
    pub sequential: f64,
    /// Fraction of data misses with a constant stride detectable per-IP.
    pub ip_stride: f64,
    /// Useful-prefetch accuracy (useful / issued) for this access pattern.
    pub accuracy: f64,
}

impl PrefetchAffinity {
    /// A conservative default: modest sequential behaviour.
    pub fn modest() -> Self {
        PrefetchAffinity {
            sequential: 0.25,
            ip_stride: 0.15,
            accuracy: 0.55,
        }
    }
}

/// Context-switch intensity (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextSwitchProfile {
    /// Switches per second per core at peak load.
    pub rate_per_sec: f64,
    /// Direct cost per switch in microseconds — lower bound (register/state
    /// swap only, per the prior work the paper cites).
    pub direct_cost_us_low: f64,
    /// Direct cost upper bound including scheduler work.
    pub direct_cost_us_high: f64,
    /// Fraction of L1/L2/TLB state lost per switch (cache pollution).
    pub pollution_fraction: f64,
}

impl ContextSwitchProfile {
    /// A quiet profile for compute-bound services.
    pub fn quiet() -> Self {
        ContextSwitchProfile {
            rate_per_sec: 500.0,
            direct_cost_us_low: 1.2,
            direct_cost_us_high: 2.4,
            pollution_fraction: 0.05,
        }
    }
}

/// Page-locality traits consumed by the THP/SHP policy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageProfile {
    /// How densely the workload's hot 4 KiB data pages pack into 2 MiB pages
    /// (1 = no packing benefit, 512 = perfectly dense). Feed1's dense
    /// feature vectors pack well; pointer-chasing heaps do not.
    pub data_compaction: f64,
    /// Same for code pages (Web's JIT code cache is contiguous).
    pub code_compaction: f64,
    /// Fraction of the data footprint already allocated through
    /// `madvise(MADV_HUGEPAGE)` (the production default honours it).
    pub madvise_fraction: f64,
    /// Whether the service uses the SHP (hugetlbfs) APIs at all; Ads1 does
    /// not, so the SHP knob is inapplicable to it (paper Sec. 4).
    pub uses_shp: bool,
    /// Bytes of code the SHP pool must cover for full ITLB benefit.
    pub shp_target_bytes: u64,
}

/// Complete stream specification for one workload on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// Human-readable workload name ("web", "ads1", …).
    pub name: String,
    /// Instruction mix (Fig. 5).
    pub mix: InstructionMix,
    /// Line-granularity code reuse (calibrates code MPKI, Figs. 8–9).
    pub code_reuse: ReuseDistanceDist,
    /// Line-granularity data reuse (calibrates data MPKI, Figs. 8–9).
    pub data_reuse: ReuseDistanceDist,
    /// 4 KiB-page-granularity code reuse (calibrates ITLB MPKI, Fig. 11).
    pub code_page_reuse: ReuseDistanceDist,
    /// 4 KiB-page-granularity data reuse (calibrates DTLB MPKI, Fig. 11).
    pub data_page_reuse: ReuseDistanceDist,
    /// Branch behaviour.
    pub branch: BranchProfile,
    /// Prefetchable-pattern fractions.
    pub prefetch: PrefetchAffinity,
    /// Page-locality traits.
    pub pages: PageProfile,
    /// Context-switch intensity.
    pub context_switch: ContextSwitchProfile,
    /// Memory-level parallelism: how many data misses overlap (divides the
    /// exposed back-end miss latency).
    pub mlp: f64,
    /// Relative throughput gain from the second SMT thread (0.0–1.0).
    pub smt_gain: f64,
    /// Base CPI adjustment multiplier for execution (non-miss) work;
    /// calibrates absolute IPC to Fig. 6.
    pub base_cpi_scale: f64,
    /// Writeback traffic per store-side LLC miss, in lines (dirty-line
    /// factor for the bandwidth model).
    pub writeback_factor: f64,
    /// Memory-traffic burstiness multiplier (>1 ⇒ operates above the smooth
    /// queueing curve; the paper's Ads1/Ads2 behaviour in Fig. 12).
    pub burstiness: f64,
    /// LLC contention coefficient α: with `n` active cores the per-core
    /// effective LLC share is `1 / (1 + (n−1)·α)`. α→0 models fully shared
    /// working sets (code), α→1 fully private ones. Drives the Fig. 15
    /// core-count roll-off.
    pub llc_contention: f64,
    /// Fraction of the LLC the code stream holds under natural LRU
    /// competition (no CDP). Code that is re-referenced frequently relative
    /// to the data flood retains more occupancy; the CDP knob's job is
    /// precisely to override this competitive split with an enforced one.
    pub natural_code_llc_share: f64,
    /// Memory-interface lines per kilo-instruction beyond the modeled demand
    /// stream: NIC/storage DMA, kernel I/O, page-walk and co-runner traffic.
    /// Calibrates the Fig. 12 bandwidth operating points (the Cache tiers
    /// move tens of GB/s of DMA that never appears as core LLC misses).
    pub extra_mem_lines_per_ki: f64,
    /// Fraction of the extra (non-demand) memory traffic attributable to the
    /// hardware prefetchers. Fig. 9 vs. Fig. 12 imply that demand LLC misses
    /// explain only a small share of the measured bandwidth; the rest is
    /// prefetcher overfetch, page walks, and kernel I/O. The prefetcher
    /// share disappears when the corresponding engines are disabled — the
    /// mechanism behind Web-on-Broadwell preferring prefetchers off
    /// (Fig. 17).
    pub extra_traffic_prefetch_fraction: f64,
    /// Fraction of front-end miss latency actually exposed as stall slots.
    /// Decoupled fetch, instruction prefetching, and the second SMT thread
    /// hide most short instruction misses for some services (the Cache
    /// tiers), while Web's serialized JIT misses stay exposed ("the latency
    /// of code misses is not hidden", Sec. 6.1).
    pub frontend_exposure: f64,
}

impl StreamSpec {
    /// Validates cross-field invariants not already enforced by the
    /// component constructors.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidFraction`] for any out-of-range fraction.
    pub fn validate(&self) -> Result<(), ArchSimError> {
        let checks = [
            ("taken_rate", self.branch.taken_rate),
            ("base_mispredict", self.branch.base_mispredict),
            ("prefetch.sequential", self.prefetch.sequential),
            ("prefetch.ip_stride", self.prefetch.ip_stride),
            ("prefetch.accuracy", self.prefetch.accuracy),
            ("pages.madvise_fraction", self.pages.madvise_fraction),
            (
                "context_switch.pollution",
                self.context_switch.pollution_fraction,
            ),
            ("smt_gain", self.smt_gain),
            ("llc_contention", self.llc_contention),
            ("natural_code_llc_share", self.natural_code_llc_share),
            ("frontend_exposure", self.frontend_exposure),
            (
                "extra_traffic_prefetch_fraction",
                self.extra_traffic_prefetch_fraction,
            ),
        ];
        if !(self.extra_mem_lines_per_ki >= 0.0 && self.extra_mem_lines_per_ki.is_finite()) {
            return Err(ArchSimError::InvalidFraction {
                name: "extra_mem_lines_per_ki".to_string(),
                value: self.extra_mem_lines_per_ki,
            });
        }
        for (name, v) in checks {
            if !(0.0..=1.0).contains(&v) {
                return Err(ArchSimError::InvalidFraction {
                    name: name.to_string(),
                    value: v,
                });
            }
        }
        for (name, v) in [
            ("mlp", self.mlp),
            ("base_cpi_scale", self.base_cpi_scale),
            ("burstiness", self.burstiness),
            ("pages.data_compaction", self.pages.data_compaction),
            ("pages.code_compaction", self.pages.code_compaction),
        ] {
            let ok = if name == "base_cpi_scale" {
                v.is_finite() && v > 0.0
            } else {
                v.is_finite() && v >= 1.0
            };
            if !ok {
                return Err(ArchSimError::InvalidFraction {
                    name: name.to_string(),
                    value: v,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_validation() {
        assert!(InstructionMix::new(0.2, 0.0, 0.3, 0.35, 0.15).is_ok());
        assert!(InstructionMix::new(0.5, 0.5, 0.5, 0.0, 0.0).is_err());
        assert!(InstructionMix::new(-0.1, 0.2, 0.4, 0.35, 0.15).is_err());
        let m = InstructionMix::from_percent(20.0, 0.0, 31.0, 36.0, 13.0).unwrap();
        assert!((m.memory_fraction() - 0.49).abs() < 1e-12);
    }

    #[test]
    fn from_percent_scales() {
        let m = InstructionMix::from_percent(25.0, 10.0, 30.0, 25.0, 10.0).unwrap();
        assert!((m.branch - 0.25).abs() < 1e-12);
        assert!((m.fp - 0.10).abs() < 1e-12);
    }

    fn minimal_spec() -> StreamSpec {
        let line = ReuseDistanceDist::single_knee(512, 0.1, 0.01, 1 << 20).unwrap();
        let page = ReuseDistanceDist::single_knee(64, 0.05, 0.01, 1 << 14).unwrap();
        StreamSpec {
            name: "test".to_string(),
            mix: InstructionMix::new(0.2, 0.0, 0.3, 0.35, 0.15).unwrap(),
            code_reuse: line.clone(),
            data_reuse: line,
            code_page_reuse: page.clone(),
            data_page_reuse: page,
            branch: BranchProfile {
                taken_rate: 0.6,
                base_mispredict: 0.03,
                branch_working_set: 2048,
            },
            prefetch: PrefetchAffinity::modest(),
            pages: PageProfile {
                data_compaction: 16.0,
                code_compaction: 64.0,
                madvise_fraction: 0.3,
                uses_shp: true,
                shp_target_bytes: 512 << 20,
            },
            context_switch: ContextSwitchProfile::quiet(),
            mlp: 3.0,
            smt_gain: 0.25,
            base_cpi_scale: 1.0,
            writeback_factor: 0.4,
            burstiness: 1.0,
            llc_contention: 0.5,
            natural_code_llc_share: 0.35,
            extra_mem_lines_per_ki: 0.0,
            extra_traffic_prefetch_fraction: 0.3,
            frontend_exposure: 0.6,
        }
    }

    #[test]
    fn valid_spec_passes() {
        minimal_spec().validate().unwrap();
    }

    #[test]
    fn invalid_fractions_rejected() {
        let mut s = minimal_spec();
        s.branch.taken_rate = 1.2;
        assert!(s.validate().is_err());

        let mut s = minimal_spec();
        s.mlp = 0.5;
        assert!(s.validate().is_err());

        let mut s = minimal_spec();
        s.smt_gain = -0.1;
        assert!(s.validate().is_err());

        let mut s = minimal_spec();
        s.pages.data_compaction = 0.0;
        assert!(s.validate().is_err());
    }
}
