//! Top-down Microarchitecture Analysis Method (TMAM) slot accounting.
//!
//! TMAM (Yasin; used in paper Fig. 7) categorizes every issue slot of every
//! cycle as **retiring** (useful work), **front-end bound** (no µops
//! supplied), **bad speculation** (slots wasted on wrong-path work and
//! recovery), or **back-end bound** (µops available but not accepted —
//! data-supply and core-execution limits). By construction the four sum to 1.

/// Pipeline-slot fractions for one measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TmamBreakdown {
    /// Fraction of slots retiring useful µops.
    pub retiring: f64,
    /// Fraction of slots lost to instruction supply.
    pub frontend: f64,
    /// Fraction of slots lost to misprediction recovery.
    pub bad_speculation: f64,
    /// Fraction of slots lost in the back end (memory + core bound).
    pub backend: f64,
}

impl TmamBreakdown {
    /// Builds the breakdown from the CPI model's cycle attribution.
    ///
    /// `instructions` retired over `cycles` total cycles on a `width`-slot
    /// machine, with `frontend_cycles` of fetch-starved cycles and
    /// `bad_spec_cycles` of recovery. Back-end absorbs the remainder —
    /// matching TMAM's definition, where "core bound" (execution-port
    /// pressure accounted in our base CPI) is a back-end subcategory.
    pub fn from_cycles(
        instructions: f64,
        cycles: f64,
        frontend_cycles: f64,
        bad_spec_cycles: f64,
        width: f64,
    ) -> Self {
        if cycles <= 0.0 || instructions <= 0.0 || width <= 0.0 {
            return TmamBreakdown {
                retiring: 0.0,
                frontend: 0.0,
                bad_speculation: 0.0,
                backend: 1.0,
            };
        }
        let slots = cycles * width;
        let retiring = (instructions / slots).min(1.0);
        let frontend = (frontend_cycles / cycles).min(1.0 - retiring);
        let bad_speculation = (bad_spec_cycles / cycles).min((1.0 - retiring - frontend).max(0.0));
        let backend = (1.0 - retiring - frontend - bad_speculation).max(0.0);
        TmamBreakdown {
            retiring,
            frontend,
            bad_speculation,
            backend,
        }
    }

    /// Renders the breakdown as percentages in the paper's column order
    /// (Retiring, Front-end, Bad speculation, Back-end).
    pub fn as_percentages(&self) -> [f64; 4] {
        [
            self.retiring * 100.0,
            self.frontend * 100.0,
            self.bad_speculation * 100.0,
            self.backend * 100.0,
        ]
    }
}

impl std::fmt::Display for TmamBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.as_percentages();
        write!(
            f,
            "retiring {:.0}% / front-end {:.0}% / bad-spec {:.0}% / back-end {:.0}%",
            p[0], p[1], p[2], p[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let t = TmamBreakdown::from_cycles(10_000.0, 25_000.0, 8_000.0, 2_000.0, 4.0);
        let sum = t.retiring + t.frontend + t.bad_speculation + t.backend;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(t.retiring > 0.0 && t.frontend > 0.0 && t.backend > 0.0);
    }

    #[test]
    fn retiring_matches_ipc_over_width() {
        // IPC 1.0 on a 4-wide machine ⇒ 25% retiring.
        let t = TmamBreakdown::from_cycles(10_000.0, 10_000.0, 0.0, 0.0, 4.0);
        assert!((t.retiring - 0.25).abs() < 1e-12);
        assert!((t.backend - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stall_cycles_cannot_exceed_budget() {
        // Pathological inputs: frontend cycles exceed total cycles.
        let t = TmamBreakdown::from_cycles(1_000.0, 2_000.0, 5_000.0, 5_000.0, 4.0);
        let sum = t.retiring + t.frontend + t.bad_speculation + t.backend;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(t.frontend <= 1.0);
        assert!(t.backend >= 0.0);
    }

    #[test]
    fn degenerate_inputs_safe() {
        let t = TmamBreakdown::from_cycles(0.0, 0.0, 0.0, 0.0, 4.0);
        assert_eq!(t.backend, 1.0);
    }

    #[test]
    fn display_and_percentages() {
        let t = TmamBreakdown::from_cycles(10_000.0, 25_000.0, 8_000.0, 2_000.0, 4.0);
        let p = t.as_percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!(t.to_string().contains("retiring"));
    }
}
