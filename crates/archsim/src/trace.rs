//! Synthetic trace generation from reuse-distance distributions.
//!
//! [`StackMapper`] maintains a true LRU stack (an implicit treap) over every
//! line/page a workload has touched; each access samples a reuse distance
//! from the workload's distribution and performs a move-to-front at that
//! rank, yielding a concrete id whose stream reproduces the distribution.
//! [`TraceGenerator`] composes four mappers (code lines, data lines, code
//! pages, data pages) with the instruction mix to emit per-instruction
//! events for the cache/TLB/branch simulators.

use crate::ranklist::RankList;
use crate::reuse::ReuseDistanceDist;
use crate::stream::StreamSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softsku_telemetry::streams::{StreamFamily, StreamRegistry};

/// Maps sampled reuse distances to concrete line/page ids via an LRU stack.
#[derive(Debug, Clone)]
pub struct StackMapper {
    stack: RankList,
    dist: ReuseDistanceDist,
    next_id: u64,
}

/// Pre-warm ceiling: stacks larger than this start truncated; sampled
/// distances beyond the live stack are treated as cold (they would miss
/// every structure of interest anyway).
const PREWARM_CAP: u64 = 1 << 20;

/// Stacks at least this large are cloned from the shared template cache.
const TEMPLATE_MIN: u64 = 1 << 17;
/// Fixed priority seed for cached templates (shape-sharing only; instance
/// behaviour is re-seeded after cloning).
const TEMPLATE_SEED: u64 = 0x7E3A_11CE;

fn template_cache() -> &'static std::sync::Mutex<std::collections::HashMap<u64, RankList>> {
    static CACHE: std::sync::OnceLock<std::sync::Mutex<std::collections::HashMap<u64, RankList>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// Number of ids a mapper for `dist` starts with (its steady-state stack),
/// and therefore the id range `[prewarm_len - k, prewarm_len)` that holds
/// the `k` most-recently-used ids at construction time. The engine uses
/// this to pre-fill caches/TLBs with steady-state contents.
pub fn prewarm_len(dist: &ReuseDistanceDist) -> u64 {
    dist.footprint().min(PREWARM_CAP)
}

impl StackMapper {
    /// Creates a mapper for one reuse-distance distribution. `seed` shapes
    /// the internal treap only; sampling randomness is supplied per access.
    ///
    /// The stack is pre-warmed to the distribution's footprint (capped at
    /// ~2M ids) so that long reuse distances resolve to real "old" ids from
    /// the first access instead of being clamped into a short history —
    /// without this, short measurement windows would systematically
    /// under-report large-capacity misses.
    pub fn new(dist: ReuseDistanceDist, seed: u64) -> Self {
        let prewarm = prewarm_len(&dist);
        // Front of the stack = most recently used; ids descend so that the
        // next cold id continues the sequence. Large stacks are cloned from
        // a process-wide template cache: the pre-warmed contents depend only
        // on the footprint, and a memcpy is several times cheaper than
        // rebuilding a multi-million-node treap per engine evaluation.
        let stack = if prewarm >= TEMPLATE_MIN {
            let mut stack = {
                let mut cache = template_cache().lock().expect("template cache poisoned");
                cache
                    .entry(prewarm)
                    .or_insert_with(|| RankList::with_sequence(TEMPLATE_SEED, (0..prewarm).rev()))
                    .clone()
            };
            // Re-seed the per-instance priority stream so later inserts
            // differ across seeds even though the initial shape is shared.
            stack.reseed(seed);
            stack
        } else {
            RankList::with_sequence(seed, (0..prewarm).rev())
        };
        StackMapper {
            stack,
            dist,
            next_id: prewarm,
        }
    }

    /// Performs one access: samples a distance, returns the touched id.
    pub fn access<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        match self.dist.sample(rng) {
            None => self.touch_new(),
            Some(d) => {
                let len = self.stack.len();
                // Distance d means "d-th most recently used distinct id",
                // with d = 1 the most recent. A distance beyond the live
                // history refers to an id we no longer track — equivalent to
                // a cold access for every downstream structure.
                if len == 0 || d as usize > len {
                    return self.touch_new();
                }
                let rank = (d - 1) as usize;
                let id = self
                    .stack
                    .remove_at(rank)
                    .expect("rank < len by construction");
                self.stack.push_front(id);
                id
            }
        }
    }

    fn touch_new(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.stack.push_front(id);
        // Bound the stack by the declared footprint: the LRU tail "dies".
        if self.stack.len() as u64 > self.dist.footprint() {
            self.stack.pop_back();
        }
        id
    }

    /// Number of distinct ids currently live.
    pub fn live_ids(&self) -> usize {
        self.stack.len()
    }

    /// Total distinct ids ever created.
    pub fn total_ids(&self) -> u64 {
        self.next_id
    }
}

/// The instruction class sampled from the mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsnClass {
    /// Conditional or indirect branch.
    Branch,
    /// Floating-point operation.
    Fp,
    /// Integer ALU operation.
    Arith,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
}

/// One synthetic instruction event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsnEvent {
    /// Instruction class.
    pub class: InsnClass,
    /// Code cache line touched by the fetch.
    pub code_line: u64,
    /// Code page touched by the fetch (4 KiB- or 2 MiB-granular id).
    pub code_page: PageAccess,
    /// Data line/page for loads and stores.
    pub data: Option<DataAccess>,
}

/// One page translation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageAccess {
    /// Page id (granularity given by `is_huge`).
    pub page: u64,
    /// True when the page is 2 MiB-backed.
    pub is_huge: bool,
}

/// A data-side access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataAccess {
    /// True for stores.
    pub is_store: bool,
    /// Data cache line id.
    pub line: u64,
    /// Data page access.
    pub page: PageAccess,
}

/// Huge-page coverage fractions resolved by the page policy; the generator
/// routes each translation to the 4 KiB or 2 MiB page stream accordingly.
///
/// Huge-page streams sample from the *compacted* page distribution: when a
/// workload's 4 KiB pages pack into 2 MiB pages with density `c`, page-level
/// reuse distances shrink by `c`. Deriving huge ids arithmetically from the
/// 4 KiB id stream would be wrong — the LRU stack shuffles ids over time,
/// destroying the spatial adjacency that huge pages exploit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HugePageMix {
    /// Fraction of code translations that are 2 MiB-backed.
    pub code_huge_fraction: f64,
    /// Fraction of data translations that are 2 MiB-backed.
    pub data_huge_fraction: f64,
}

/// Per-instruction event generator for one workload.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    code_lines: StackMapper,
    data_lines: StackMapper,
    code_pages_4k: StackMapper,
    data_pages_4k: StackMapper,
    code_pages_2m: StackMapper,
    data_pages_2m: StackMapper,
    huge: HugePageMix,
    // Cumulative mix thresholds, ordered branch/fp/arith/load/store.
    thresholds: [f64; 4],
    rng: SmallRng,
}

impl TraceGenerator {
    /// Builds a generator for `spec` under huge-page coverage `huge`,
    /// deterministically seeded.
    pub fn new(spec: &StreamSpec, huge: HugePageMix, seed: u64) -> Self {
        let m = &spec.mix;
        let t1 = m.branch;
        let t2 = t1 + m.fp;
        let t3 = t2 + m.arith;
        let t4 = t3 + m.load;
        let code_2m = spec
            .code_page_reuse
            .compacted(spec.pages.code_compaction.max(1.0));
        let data_2m = spec
            .data_page_reuse
            .compacted(spec.pages.data_compaction.max(1.0));
        let mut streams = StreamRegistry::new(seed);
        TraceGenerator {
            code_lines: StackMapper::new(
                spec.code_reuse.clone(),
                streams.derive(StreamFamily::TraceCodeLines),
            ),
            data_lines: StackMapper::new(
                spec.data_reuse.clone(),
                streams.derive(StreamFamily::TraceDataLines),
            ),
            code_pages_4k: StackMapper::new(
                spec.code_page_reuse.clone(),
                streams.derive(StreamFamily::TraceCodePages4k),
            ),
            data_pages_4k: StackMapper::new(
                spec.data_page_reuse.clone(),
                streams.derive(StreamFamily::TraceDataPages4k),
            ),
            code_pages_2m: StackMapper::new(
                code_2m,
                streams.derive(StreamFamily::TraceCodePages2m),
            ),
            data_pages_2m: StackMapper::new(
                data_2m,
                streams.derive(StreamFamily::TraceDataPages2m),
            ),
            huge,
            thresholds: [t1, t2, t3, t4],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Generates the next instruction event.
    pub fn next_event(&mut self) -> InsnEvent {
        let u: f64 = self.rng.gen();
        let class = if u < self.thresholds[0] {
            InsnClass::Branch
        } else if u < self.thresholds[1] {
            InsnClass::Fp
        } else if u < self.thresholds[2] {
            InsnClass::Arith
        } else if u < self.thresholds[3] {
            InsnClass::Load
        } else {
            InsnClass::Store
        };
        let code_line = self.code_lines.access(&mut self.rng);
        let code_huge = self.rng.gen::<f64>() < self.huge.code_huge_fraction;
        let code_page = if code_huge {
            PageAccess {
                page: self.code_pages_2m.access(&mut self.rng),
                is_huge: true,
            }
        } else {
            PageAccess {
                page: self.code_pages_4k.access(&mut self.rng),
                is_huge: false,
            }
        };
        let data = match class {
            InsnClass::Load | InsnClass::Store => {
                let data_huge = self.rng.gen::<f64>() < self.huge.data_huge_fraction;
                let page = if data_huge {
                    PageAccess {
                        page: self.data_pages_2m.access(&mut self.rng),
                        is_huge: true,
                    }
                } else {
                    PageAccess {
                        page: self.data_pages_4k.access(&mut self.rng),
                        is_huge: false,
                    }
                };
                Some(DataAccess {
                    is_store: class == InsnClass::Store,
                    line: self.data_lines.access(&mut self.rng),
                    page,
                })
            }
            _ => None,
        };
        InsnEvent {
            class,
            code_line,
            code_page,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::ReuseDistanceDist;
    use crate::stream::{
        BranchProfile, ContextSwitchProfile, InstructionMix, PageProfile, PrefetchAffinity,
    };

    fn spec() -> StreamSpec {
        let line =
            ReuseDistanceDist::from_survival_points(&[(512, 0.25), (16_384, 0.05)], 0.01, 200_000)
                .unwrap();
        let page = ReuseDistanceDist::single_knee(64, 0.08, 0.01, 10_000).unwrap();
        StreamSpec {
            name: "test".to_string(),
            mix: InstructionMix::new(0.20, 0.05, 0.30, 0.30, 0.15).unwrap(),
            code_reuse: line.clone(),
            data_reuse: line,
            code_page_reuse: page.clone(),
            data_page_reuse: page,
            branch: BranchProfile {
                taken_rate: 0.6,
                base_mispredict: 0.02,
                branch_working_set: 1024,
            },
            prefetch: PrefetchAffinity::modest(),
            pages: PageProfile {
                data_compaction: 16.0,
                code_compaction: 64.0,
                madvise_fraction: 0.3,
                uses_shp: false,
                shp_target_bytes: 0,
            },
            context_switch: ContextSwitchProfile::quiet(),
            mlp: 3.0,
            smt_gain: 0.25,
            base_cpi_scale: 1.0,
            writeback_factor: 0.4,
            burstiness: 1.0,
            llc_contention: 0.5,
            natural_code_llc_share: 0.35,
            extra_mem_lines_per_ki: 0.0,
            extra_traffic_prefetch_fraction: 0.3,
            frontend_exposure: 0.6,
        }
    }

    #[test]
    fn stack_mapper_reproduces_miss_ratio() {
        // Direct check of the central claim: for a fully-associative LRU of
        // capacity C, the fraction of accesses whose sampled id was NOT in
        // the C most-recent distinct ids equals miss_ratio(C).
        let dist =
            ReuseDistanceDist::from_survival_points(&[(128, 0.3), (4096, 0.05)], 0.02, 100_000)
                .unwrap();
        let mut mapper = StackMapper::new(dist.clone(), 7);
        let mut rng = SmallRng::seed_from_u64(42);
        // Model LRU cache of capacity 128 as a recency list.
        let mut recency: Vec<u64> = Vec::new();
        let cap = 128usize;
        let mut misses = 0u64;
        let n = 60_000u64;
        for _ in 0..n {
            let id = mapper.access(&mut rng);
            if let Some(pos) = recency.iter().position(|&x| x == id) {
                recency.remove(pos);
            } else {
                misses += 1;
            }
            recency.insert(0, id);
            recency.truncate(cap);
        }
        let empirical = misses as f64 / n as f64;
        let analytic = dist.miss_ratio(cap as u64);
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn mapper_footprint_is_bounded() {
        let dist = ReuseDistanceDist::single_knee(16, 0.5, 0.4, 64).unwrap();
        let mut mapper = StackMapper::new(dist, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            mapper.access(&mut rng);
        }
        assert!(mapper.live_ids() as u64 <= 64);
        assert!(mapper.total_ids() > 64, "cold accesses keep minting ids");
    }

    #[test]
    fn mix_fractions_are_respected() {
        let mut g = TraceGenerator::new(&spec(), HugePageMix::default(), 3);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            let e = g.next_event();
            let idx = match e.class {
                InsnClass::Branch => 0,
                InsnClass::Fp => 1,
                InsnClass::Arith => 2,
                InsnClass::Load => 3,
                InsnClass::Store => 4,
            };
            counts[idx] += 1;
            // Loads/stores carry data accesses; others must not.
            match e.class {
                InsnClass::Load => assert!(e.data.is_some() && !e.data.unwrap().is_store),
                InsnClass::Store => assert!(e.data.is_some() && e.data.unwrap().is_store),
                _ => assert!(e.data.is_none()),
            }
        }
        let expect = [0.20, 0.05, 0.30, 0.30, 0.15];
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - expect[i]).abs() < 0.01,
                "class {i}: {frac} vs {}",
                expect[i]
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = TraceGenerator::new(&spec(), HugePageMix::default(), 9);
        let mut b = TraceGenerator::new(&spec(), HugePageMix::default(), 9);
        for _ in 0..1000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn huge_mix_routes_translations() {
        let mix = HugePageMix {
            code_huge_fraction: 1.0,
            data_huge_fraction: 0.0,
        };
        let mut g = TraceGenerator::new(&spec(), mix, 4);
        for _ in 0..2_000 {
            let e = g.next_event();
            assert!(e.code_page.is_huge);
            if let Some(d) = e.data {
                assert!(!d.page.is_huge);
            }
        }
    }

    #[test]
    fn huge_stream_has_compacted_working_set() {
        // With compaction 64, the 2 MiB code-page stream should touch far
        // fewer distinct ids than the 4 KiB stream over the same window.
        let all_4k = HugePageMix::default();
        let all_2m = HugePageMix {
            code_huge_fraction: 1.0,
            data_huge_fraction: 1.0,
        };
        let mut small = TraceGenerator::new(&spec(), all_4k, 8);
        let mut big = TraceGenerator::new(&spec(), all_2m, 8);
        let mut ids_4k = std::collections::HashSet::new();
        let mut ids_2m = std::collections::HashSet::new();
        for _ in 0..20_000 {
            ids_4k.insert(small.next_event().code_page.page);
            ids_2m.insert(big.next_event().code_page.page);
        }
        assert!(
            (ids_2m.len() as f64) < (ids_4k.len() as f64) / 2.5,
            "2M ids {} vs 4K ids {}",
            ids_2m.len(),
            ids_4k.len()
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TraceGenerator::new(&spec(), HugePageMix::default(), 1);
        let mut b = TraceGenerator::new(&spec(), HugePageMix::default(), 2);
        let same = (0..100)
            .filter(|_| a.next_event() == b.next_event())
            .count();
        assert!(same < 100);
    }
}
