//! Hardware platform descriptions (paper Table 1).
//!
//! Three platforms appear in the paper:
//!
//! | | Skylake18 | Skylake20 | Broadwell16 |
//! |---|---|---|---|
//! | Microarchitecture | Skylake | Skylake | Broadwell |
//! | Sockets | 1 | 2 | 1 |
//! | Cores/socket | 18 | 20 | 16 |
//! | SMT | 2 | 2 | 2 |
//! | L1-I / L1-D | 32 KiB | 32 KiB | 32 KiB |
//! | Private L2 | 1 MiB | 1 MiB | 256 KiB |
//! | Shared LLC/socket | 24.75 MiB | 27 MiB | 24 MiB |
//!
//! Sec. 6.1 adds that the Skylake LLC has 11 ways and the Broadwell LLC 12,
//! and that the core (1.6–2.2 GHz) and uncore (1.4–1.8 GHz) frequency domains
//! share a fixed CPU power budget — AVX-heavy services (Ads1) pay a frequency
//! tax out of that budget.

use crate::error::ArchSimError;

/// Cache-line size used throughout (Table 1: 64 B on all platforms).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Identifies one of the three paper platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlatformKind {
    /// 18-core single-socket Intel Skylake (most microservices).
    Skylake18,
    /// 20-core dual-socket Intel Skylake (Ads2, Cache1).
    Skylake20,
    /// 16-core single-socket Intel Broadwell (older Web fleet).
    Broadwell16,
}

impl PlatformKind {
    /// All platforms, in Table 1 order.
    pub const ALL: [PlatformKind; 3] = [
        PlatformKind::Skylake18,
        PlatformKind::Skylake20,
        PlatformKind::Broadwell16,
    ];

    /// The platform's specification sheet.
    pub fn spec(self) -> PlatformSpec {
        match self {
            PlatformKind::Skylake18 => PlatformSpec::skylake18(),
            PlatformKind::Skylake20 => PlatformSpec::skylake20(),
            PlatformKind::Broadwell16 => PlatformSpec::broadwell16(),
        }
    }
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PlatformKind::Skylake18 => "Skylake18",
            PlatformKind::Skylake20 => "Skylake20",
            PlatformKind::Broadwell16 => "Broadwell16",
        };
        f.write_str(name)
    }
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Load-to-use latency in cycles at nominal frequency.
    pub latency_cycles: u32,
}

impl CacheGeometry {
    /// Number of sets implied by capacity, associativity, and line size.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.ways as u64 * CACHE_LINE_BYTES)
    }

    /// Capacity of a single way in bytes.
    pub fn way_bytes(&self) -> u64 {
        self.capacity_bytes / self.ways as u64
    }

    /// Capacity expressed in cache lines.
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / CACHE_LINE_BYTES
    }
}

/// Geometry of one TLB level for one page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Entries for 4 KiB pages.
    pub entries_4k: u32,
    /// Entries for 2 MiB pages.
    pub entries_2m: u32,
}

/// Full platform specification: Table 1 plus the frequency/power and memory
/// parameters Secs. 5–6 rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Which platform this is.
    pub kind: PlatformKind,
    /// Marketing microarchitecture name.
    pub microarchitecture: &'static str,
    /// Socket count.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// SMT ways per core.
    pub smt: u32,
    /// L1 instruction cache (per core).
    pub l1i: CacheGeometry,
    /// L1 data cache (per core).
    pub l1d: CacheGeometry,
    /// Unified private L2 (per core).
    pub l2: CacheGeometry,
    /// Shared last-level cache (per socket).
    pub llc: CacheGeometry,
    /// First-level ITLB geometry.
    pub itlb: TlbGeometry,
    /// First-level DTLB geometry.
    pub dtlb: TlbGeometry,
    /// Unified second-level TLB entries (page-size agnostic).
    pub stlb_entries: u32,
    /// Page-walk cost in cycles on an STLB miss (all-levels-cached walk).
    pub page_walk_cycles: u32,
    /// Retirement/issue width in micro-op slots per cycle (TMAM slot width).
    pub issue_width: u32,
    /// Branch misprediction penalty in cycles.
    pub mispredict_penalty_cycles: u32,
    /// Branch target buffer capacity in entries.
    pub btb_entries: u32,
    /// Supported core frequency range in GHz (min, nominal/turbo max).
    pub core_freq_range_ghz: (f64, f64),
    /// Supported uncore frequency range in GHz.
    pub uncore_freq_range_ghz: (f64, f64),
    /// Core frequency tax in GHz when running AVX-dense code (power budget).
    pub avx_freq_tax_ghz: f64,
    /// Floating-point instruction fraction above which the AVX tax applies.
    pub avx_fp_threshold: f64,
    /// Unloaded (idle) memory latency in nanoseconds at nominal uncore freq.
    pub mem_unloaded_latency_ns: f64,
    /// Saturation memory bandwidth in GB/s across all channels.
    pub mem_peak_bw_gbps: f64,
    /// Whether Resource Director Technology (CAT + CDP) is available.
    pub supports_rdt: bool,
}

impl PlatformSpec {
    /// Single-socket 18-core Skylake (Web, Feed1, Feed2, Ads1, Cache2).
    pub fn skylake18() -> Self {
        PlatformSpec {
            kind: PlatformKind::Skylake18,
            microarchitecture: "Intel Skylake",
            sockets: 1,
            cores_per_socket: 18,
            smt: 2,
            l1i: CacheGeometry {
                capacity_bytes: 32 << 10,
                ways: 8,
                latency_cycles: 4,
            },
            l1d: CacheGeometry {
                capacity_bytes: 32 << 10,
                ways: 8,
                latency_cycles: 4,
            },
            l2: CacheGeometry {
                capacity_bytes: 1 << 20,
                ways: 16,
                latency_cycles: 14,
            },
            llc: CacheGeometry {
                capacity_bytes: (2475 << 20) / 100, // 24.75 MiB
                ways: 11,
                latency_cycles: 44,
            },
            itlb: TlbGeometry {
                entries_4k: 128,
                entries_2m: 8,
            },
            dtlb: TlbGeometry {
                entries_4k: 64,
                entries_2m: 32,
            },
            stlb_entries: 1536,
            page_walk_cycles: 90,
            issue_width: 4,
            mispredict_penalty_cycles: 17,
            btb_entries: 4096,
            core_freq_range_ghz: (1.6, 2.2),
            uncore_freq_range_ghz: (1.4, 1.8),
            avx_freq_tax_ghz: 0.2,
            avx_fp_threshold: 0.10,
            mem_unloaded_latency_ns: 85.0,
            mem_peak_bw_gbps: 95.0,
            supports_rdt: true,
        }
    }

    /// Dual-socket 20-core Skylake (Ads2, Cache1): higher peak bandwidth.
    pub fn skylake20() -> Self {
        let mut spec = Self::skylake18();
        spec.kind = PlatformKind::Skylake20;
        spec.sockets = 2;
        spec.cores_per_socket = 20;
        spec.llc = CacheGeometry {
            capacity_bytes: 27 << 20,
            ways: 11,
            latency_cycles: 46,
        };
        spec.mem_unloaded_latency_ns = 92.0;
        spec.mem_peak_bw_gbps = 145.0;
        spec
    }

    /// Single-socket 16-core Broadwell (older Web fleet): smaller L2, 12-way
    /// LLC, and markedly lower memory bandwidth headroom — the property that
    /// makes Web-on-Broadwell bandwidth-bound in Figs. 16–17.
    pub fn broadwell16() -> Self {
        PlatformSpec {
            kind: PlatformKind::Broadwell16,
            microarchitecture: "Intel Broadwell",
            sockets: 1,
            cores_per_socket: 16,
            smt: 2,
            l1i: CacheGeometry {
                capacity_bytes: 32 << 10,
                ways: 8,
                latency_cycles: 4,
            },
            l1d: CacheGeometry {
                capacity_bytes: 32 << 10,
                ways: 8,
                latency_cycles: 4,
            },
            l2: CacheGeometry {
                capacity_bytes: 256 << 10,
                ways: 8,
                latency_cycles: 12,
            },
            llc: CacheGeometry {
                capacity_bytes: 24 << 20,
                ways: 12,
                latency_cycles: 50,
            },
            itlb: TlbGeometry {
                entries_4k: 128,
                entries_2m: 8,
            },
            dtlb: TlbGeometry {
                entries_4k: 64,
                entries_2m: 32,
            },
            stlb_entries: 1024,
            page_walk_cycles: 100,
            issue_width: 4,
            mispredict_penalty_cycles: 16,
            btb_entries: 4096,
            core_freq_range_ghz: (1.6, 2.2),
            uncore_freq_range_ghz: (1.4, 1.8),
            avx_freq_tax_ghz: 0.2,
            avx_fp_threshold: 0.10,
            mem_unloaded_latency_ns: 88.0,
            mem_peak_bw_gbps: 40.0,
            supports_rdt: false,
        }
    }

    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Theoretical peak IPC (the paper cites 5.0 for Skylake's retirement
    /// bandwidth when counting fused µops; we expose the issue width and the
    /// quoted peak separately).
    pub fn theoretical_peak_ipc(&self) -> f64 {
        match self.kind {
            PlatformKind::Skylake18 | PlatformKind::Skylake20 => 5.0,
            PlatformKind::Broadwell16 => 4.0,
        }
    }

    /// Validates a core frequency request against the supported range.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::FrequencyOutOfRange`] when outside the range.
    pub fn validate_core_freq(&self, ghz: f64) -> Result<(), ArchSimError> {
        let (lo, hi) = self.core_freq_range_ghz;
        if !(lo..=hi).contains(&ghz) {
            return Err(ArchSimError::FrequencyOutOfRange {
                requested_ghz: ghz,
                min_ghz: lo,
                max_ghz: hi,
            });
        }
        Ok(())
    }

    /// Validates an uncore frequency request against the supported range.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::FrequencyOutOfRange`] when outside the range.
    pub fn validate_uncore_freq(&self, ghz: f64) -> Result<(), ArchSimError> {
        let (lo, hi) = self.uncore_freq_range_ghz;
        if !(lo..=hi).contains(&ghz) {
            return Err(ArchSimError::FrequencyOutOfRange {
                requested_ghz: ghz,
                min_ghz: lo,
                max_ghz: hi,
            });
        }
        Ok(())
    }

    /// Validates an active-core-count request.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::CoreCountOutOfRange`] when outside `[1, total_cores]`.
    pub fn validate_core_count(&self, cores: u32) -> Result<(), ArchSimError> {
        if cores == 0 || cores > self.total_cores() {
            return Err(ArchSimError::CoreCountOutOfRange {
                requested: cores,
                available: self.total_cores(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let s18 = PlatformSpec::skylake18();
        assert_eq!(s18.total_cores(), 18);
        assert_eq!(s18.l2.capacity_bytes, 1 << 20);
        assert_eq!(s18.llc.capacity_bytes, 25_952_256); // 24.75 MiB
        assert_eq!(s18.llc.ways, 11);

        let s20 = PlatformSpec::skylake20();
        assert_eq!(s20.total_cores(), 40);
        assert_eq!(s20.llc.capacity_bytes, 27 << 20);

        let b16 = PlatformSpec::broadwell16();
        assert_eq!(b16.total_cores(), 16);
        assert_eq!(b16.l2.capacity_bytes, 256 << 10);
        assert_eq!(b16.llc.ways, 12);
        assert!(!b16.supports_rdt);
    }

    #[test]
    fn geometry_derivations() {
        let llc = PlatformSpec::skylake18().llc;
        assert_eq!(llc.way_bytes() * llc.ways as u64, llc.capacity_bytes);
        assert_eq!(llc.lines() * CACHE_LINE_BYTES, llc.capacity_bytes);
        assert_eq!(
            llc.sets() * llc.ways as u64 * CACHE_LINE_BYTES,
            llc.capacity_bytes
        );
    }

    #[test]
    fn frequency_validation() {
        let spec = PlatformSpec::skylake18();
        assert!(spec.validate_core_freq(2.2).is_ok());
        assert!(spec.validate_core_freq(1.6).is_ok());
        assert!(spec.validate_core_freq(2.3).is_err());
        assert!(spec.validate_uncore_freq(1.8).is_ok());
        assert!(spec.validate_uncore_freq(1.3).is_err());
    }

    #[test]
    fn core_count_validation() {
        let spec = PlatformSpec::broadwell16();
        assert!(spec.validate_core_count(1).is_ok());
        assert!(spec.validate_core_count(16).is_ok());
        assert!(spec.validate_core_count(0).is_err());
        assert!(spec.validate_core_count(17).is_err());
    }

    #[test]
    fn kind_roundtrip_and_display() {
        for kind in PlatformKind::ALL {
            let spec = kind.spec();
            assert_eq!(spec.kind, kind);
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn broadwell_is_bandwidth_constrained_relative_to_skylake() {
        // The Fig. 16/17 asymmetry requires Broadwell to have much less
        // memory headroom than the Skylakes.
        let b = PlatformSpec::broadwell16();
        let s = PlatformSpec::skylake18();
        assert!(b.mem_peak_bw_gbps < 0.7 * s.mem_peak_bw_gbps);
    }
}
