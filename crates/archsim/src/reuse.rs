//! Reuse-distance distributions.
//!
//! The synthetic address streams that drive the cache and TLB simulators are
//! generated from *reuse-distance distributions*: the probability that an
//! access touches a line last touched `d` distinct lines ago. For a
//! fully-associative LRU cache of capacity `C` lines, the miss ratio is
//! exactly `P(D >= C)` — the survival function of the distribution — and a
//! set-associative LRU cache tracks it closely. This gives us direct,
//! analytic control over each workload's miss-rate-versus-capacity curve
//! (paper Figs. 8–10) while the knob experiments still run against real
//! cache structures.
//!
//! A distribution is specified by control points of its survival function
//! `(capacity_in_lines, miss_ratio)` plus a *cold fraction* (accesses to
//! never-reused lines, i.e. infinite distance). Between control points the
//! survival function is interpolated log-log-linearly, which matches the
//! power-law reuse behaviour observed in server workloads.

use crate::error::ArchSimError;
use rand::Rng;

/// A reuse-distance distribution over distinct-line (or distinct-page)
/// stack distances.
///
/// # Example
///
/// ```
/// use softsku_archsim::reuse::ReuseDistanceDist;
///
/// // 30% of accesses miss a 512-line cache, 5% miss a 16k-line cache,
/// // 1% of accesses are cold.
/// let d = ReuseDistanceDist::from_survival_points(
///     &[(512, 0.30), (16_384, 0.05)],
///     0.01,
///     1 << 20,
/// )
/// .unwrap();
/// assert!((d.miss_ratio(512) - 0.30).abs() < 1e-12);
/// assert!(d.miss_ratio(2048) < 0.30);
/// assert!(d.miss_ratio(1 << 21) >= 0.01); // only cold misses remain
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReuseDistanceDist {
    /// Survival control points `(distance, P(D >= distance))`, strictly
    /// increasing in distance, strictly decreasing in probability, and
    /// bounded below by `cold_fraction`.
    points: Vec<(u64, f64)>,
    /// Probability of an access to a never-before-seen line.
    cold_fraction: f64,
    /// Number of distinct lines the workload ever touches.
    footprint: u64,
}

impl ReuseDistanceDist {
    /// Builds a distribution from survival-function control points.
    ///
    /// `points` are `(capacity, miss_ratio)` pairs: the fraction of accesses
    /// with reuse distance at least `capacity`. `cold_fraction` is the
    /// never-reused fraction, and `footprint` caps the number of distinct
    /// lines. An implicit point `(1, 1.0)` anchors the curve at distance 1,
    /// and the survival drops to `cold_fraction` at `footprint`.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidDistribution`] when points are unordered,
    /// probabilities are not in `(cold_fraction, 1]`, or not decreasing;
    /// [`ArchSimError::InvalidFraction`] for a bad `cold_fraction`.
    pub fn from_survival_points(
        points: &[(u64, f64)],
        cold_fraction: f64,
        footprint: u64,
    ) -> Result<Self, ArchSimError> {
        if !(0.0..=1.0).contains(&cold_fraction) {
            return Err(ArchSimError::InvalidFraction {
                name: "cold_fraction".to_string(),
                value: cold_fraction,
            });
        }
        if footprint < 2 {
            return Err(ArchSimError::InvalidDistribution(
                "footprint must be at least 2 lines".to_string(),
            ));
        }
        let mut pts: Vec<(u64, f64)> = Vec::with_capacity(points.len() + 2);
        pts.push((1, 1.0));
        let mut last_d = 1u64;
        let mut last_p = 1.0f64;
        for &(d, p) in points {
            if d <= last_d {
                return Err(ArchSimError::InvalidDistribution(format!(
                    "distances must be strictly increasing, got {d} after {last_d}"
                )));
            }
            if d >= footprint {
                return Err(ArchSimError::InvalidDistribution(format!(
                    "control distance {d} must be below footprint {footprint}"
                )));
            }
            if !(p > cold_fraction && p < last_p) {
                return Err(ArchSimError::InvalidDistribution(format!(
                    "survival must decrease strictly from {last_p} toward cold {cold_fraction}, got {p} at {d}"
                )));
            }
            pts.push((d, p));
            last_d = d;
            last_p = p;
        }
        pts.push((footprint, cold_fraction));
        Ok(ReuseDistanceDist {
            points: pts,
            cold_fraction,
            footprint,
        })
    }

    /// A convenient single-knee distribution: miss ratio `knee_miss` at
    /// `knee` lines, cold fraction `cold`, footprint `footprint`.
    ///
    /// # Errors
    ///
    /// Same as [`ReuseDistanceDist::from_survival_points`].
    pub fn single_knee(
        knee: u64,
        knee_miss: f64,
        cold: f64,
        footprint: u64,
    ) -> Result<Self, ArchSimError> {
        Self::from_survival_points(&[(knee, knee_miss)], cold, footprint)
    }

    /// The never-reused (cold) fraction of accesses.
    pub fn cold_fraction(&self) -> f64 {
        self.cold_fraction
    }

    /// Number of distinct lines the workload touches.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Analytic miss ratio of a fully-associative LRU cache with `capacity`
    /// lines: `P(D >= capacity)`.
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        if capacity <= 1 {
            return 1.0;
        }
        if capacity >= self.footprint {
            return self.cold_fraction;
        }
        // Find the bracketing control points and interpolate log-log.
        let idx = self.points.partition_point(|&(d, _)| d < capacity);
        // points[idx - 1].0 < capacity <= points[idx].0 given the guards above.
        let (d1, p1) = self.points[idx - 1];
        let (d2, p2) = self.points[idx];
        if d2 == capacity {
            return p2;
        }
        log_log_interp(capacity, d1, p1, d2, p2, self.cold_fraction)
    }

    /// Samples a reuse distance. `None` means a cold access (a line never
    /// seen before). Distances are in `[1, footprint)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        let u: f64 = rng.gen();
        self.distance_at_survival(u)
    }

    /// Inverse survival: the distance `d` with `P(D >= d) = u`, or `None`
    /// when `u` falls in the cold mass. Exposed for tests and for the
    /// deterministic stratified sampler in the trace generator.
    pub fn distance_at_survival(&self, u: f64) -> Option<u64> {
        if u < self.cold_fraction {
            return None;
        }
        if u >= 1.0 {
            return Some(1);
        }
        // Find the segment whose survival range contains u. Survival is
        // decreasing in distance, so search from the high-probability end.
        let mut i = 0;
        while i + 1 < self.points.len() && self.points[i + 1].1 > u {
            i += 1;
        }
        let (d1, p1) = self.points[i];
        let (d2, p2) = self.points[i + 1];
        if p1 <= u {
            return Some(d1);
        }
        // Invert the log-log interpolation within [d1, d2].
        let p2_eff = p2.max(self.cold_fraction.max(1e-12));
        let lp1 = adj(p1);
        let lp2 = adj(p2_eff);
        let t = (adj(u) - lp1) / (lp2 - lp1);
        let ld = (d1 as f64).ln() + t * ((d2 as f64).ln() - (d1 as f64).ln());
        let d = ld.exp().round() as u64;
        Some(d.clamp(d1, d2.saturating_sub(1).max(d1)))
    }

    /// Returns a copy with all control distances divided by `factor`
    /// (clamped to at least 1). Models huge-page compaction: when 512
    /// consecutive 4 KiB pages collapse into one 2 MiB page, page-level
    /// reuse distances shrink by the workload's spatial-locality factor.
    #[must_use]
    pub fn compacted(&self, factor: f64) -> Self {
        assert!(
            factor >= 1.0,
            "compaction factor must be >= 1, got {factor}"
        );
        let mut pts: Vec<(u64, f64)> = Vec::new();
        let mut last = 1u64;
        for &(d, p) in &self.points[1..self.points.len() - 1] {
            let nd = ((d as f64 / factor).round() as u64).max(last + 1);
            pts.push((nd, p));
            last = nd;
        }
        let new_fp = ((self.footprint as f64 / factor).round() as u64)
            .max(last + 1)
            .max(2);
        ReuseDistanceDist::from_survival_points(&pts, self.cold_fraction, new_fp)
            .expect("compaction preserves validity")
    }
}

/// ln with a floor that keeps zero-probability endpoints finite.
fn adj(p: f64) -> f64 {
    p.max(1e-12).ln()
}

/// Log-log-linear interpolation of the survival function.
fn log_log_interp(x: u64, d1: u64, p1: f64, d2: u64, p2: f64, floor: f64) -> f64 {
    let lx = (x as f64).ln();
    let l1 = (d1 as f64).ln();
    let l2 = (d2 as f64).ln();
    let t = (lx - l1) / (l2 - l1);
    let lp = adj(p1) + t * (adj(p2.max(floor.max(1e-12))) - adj(p1));
    lp.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dist() -> ReuseDistanceDist {
        ReuseDistanceDist::from_survival_points(
            &[(512, 0.30), (16_384, 0.08), (400_000, 0.02)],
            0.005,
            2_000_000,
        )
        .unwrap()
    }

    #[test]
    fn hits_control_points_exactly() {
        let d = dist();
        assert!((d.miss_ratio(512) - 0.30).abs() < 1e-12);
        assert!((d.miss_ratio(16_384) - 0.08).abs() < 1e-12);
        assert!((d.miss_ratio(400_000) - 0.02).abs() < 1e-12);
        assert_eq!(d.miss_ratio(1), 1.0);
        assert_eq!(d.miss_ratio(2_000_000), 0.005);
        assert_eq!(d.miss_ratio(u64::MAX), 0.005);
    }

    #[test]
    fn miss_ratio_monotone_nonincreasing() {
        let d = dist();
        let mut prev = 1.0;
        for exp in 0..21 {
            let c = 1u64 << exp;
            let m = d.miss_ratio(c);
            assert!(m <= prev + 1e-12, "miss ratio must not increase: {c}");
            prev = m;
        }
    }

    #[test]
    fn sampling_matches_analytic_miss_ratio() {
        let d = dist();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        for &cap in &[512u64, 4096, 65_536] {
            let mut misses = 0u64;
            for _ in 0..n {
                match d.sample(&mut rng) {
                    None => misses += 1,
                    Some(dist) => {
                        if dist >= cap {
                            misses += 1;
                        }
                    }
                }
            }
            let empirical = misses as f64 / n as f64;
            let analytic = d.miss_ratio(cap);
            assert!(
                (empirical - analytic).abs() < 0.01,
                "cap={cap}: empirical {empirical} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn cold_fraction_sampled() {
        let d = dist();
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 400_000;
        let cold = (0..n).filter(|_| d.sample(&mut rng).is_none()).count();
        let frac = cold as f64 / n as f64;
        assert!((frac - 0.005).abs() < 0.002, "cold fraction {frac}");
    }

    #[test]
    fn inverse_survival_is_consistent() {
        let d = dist();
        for &u in &[0.9, 0.5, 0.2, 0.1, 0.05, 0.01] {
            let dist = d.distance_at_survival(u).unwrap();
            // Survival at that distance should be close to u.
            let s = d.miss_ratio(dist);
            assert!(
                (s - u).abs() / u < 0.35,
                "u={u}: distance {dist} has survival {s}"
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        // Non-increasing distances.
        assert!(
            ReuseDistanceDist::from_survival_points(&[(100, 0.5), (100, 0.4)], 0.0, 1000).is_err()
        );
        // Non-decreasing probability.
        assert!(
            ReuseDistanceDist::from_survival_points(&[(100, 0.5), (200, 0.6)], 0.0, 1000).is_err()
        );
        // Probability below cold fraction.
        assert!(ReuseDistanceDist::from_survival_points(&[(100, 0.05)], 0.1, 1000).is_err());
        // Control point beyond footprint.
        assert!(ReuseDistanceDist::from_survival_points(&[(2000, 0.5)], 0.0, 1000).is_err());
        // Bad cold fraction.
        assert!(ReuseDistanceDist::from_survival_points(&[(10, 0.5)], 1.5, 1000).is_err());
        // Tiny footprint.
        assert!(ReuseDistanceDist::from_survival_points(&[], 0.0, 1).is_err());
    }

    #[test]
    fn compaction_shrinks_distances() {
        let d = dist();
        let c = d.compacted(64.0);
        // Same survival levels are reached at ~64x smaller capacities.
        assert!(c.miss_ratio(512 / 64) <= 0.31);
        assert!(c.footprint() < d.footprint());
        // Identity compaction is a no-op on footprint.
        let id = d.compacted(1.0);
        assert_eq!(id.footprint(), d.footprint());
    }

    #[test]
    #[should_panic(expected = "compaction factor")]
    fn compaction_below_one_panics() {
        let _ = dist().compacted(0.5);
    }
}
