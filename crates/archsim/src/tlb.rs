//! TLB hierarchy with multiple page sizes.
//!
//! The huge-page knobs (THP, SHP) act entirely through the TLBs: 2 MiB pages
//! collapse hundreds of 4 KiB translations into one entry, cutting ITLB and
//! DTLB MPKI (paper Figs. 11 and 18). The model follows the Intel layout:
//! separate first-level ITLB/DTLB arrays per page size, a unified
//! second-level STLB, and a page walk on a full miss.

use crate::error::ArchSimError;
use crate::platform::TlbGeometry;
use std::collections::HashMap;

/// A fully-associative LRU set of page numbers with O(1) access, backed by an
/// intrusive doubly-linked list over a slab.
///
/// # Example
///
/// ```
/// use softsku_archsim::tlb::LruSet;
///
/// let mut tlb = LruSet::new(2).unwrap();
/// assert!(!tlb.access(100));
/// assert!(!tlb.access(200));
/// assert!(tlb.access(100));   // 100 is MRU, 200 LRU
/// assert!(!tlb.access(300));  // evicts 200
/// assert!(!tlb.access(200));
/// ```
#[derive(Debug, Clone)]
pub struct LruSet {
    capacity: usize,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    head: usize, // MRU
    tail: usize, // LRU
    free: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

const NONE: usize = usize::MAX;

impl LruSet {
    /// Creates an LRU set holding up to `capacity` entries.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidGeometry`] for zero capacity.
    pub fn new(capacity: usize) -> Result<Self, ArchSimError> {
        if capacity == 0 {
            return Err(ArchSimError::InvalidGeometry(
                "LRU set capacity must be nonzero".to_string(),
            ));
        }
        Ok(LruSet {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
        })
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Touches `key`: returns `true` if it was resident (and refreshes it),
    /// otherwise inserts it (evicting the LRU entry if full) and returns
    /// `false`.
    pub fn access(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.attach_front(idx);
            return true;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE);
            let old_key = self.nodes[lru].key;
            self.detach(lru);
            self.map.remove(&old_key);
            self.free.push(lru);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                prev: NONE,
                next: NONE,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                prev: NONE,
                next: NONE,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        false
    }

    /// Drops approximately `fraction` of entries, LRU-first (context-switch
    /// shootdown pollution).
    pub fn flush_fraction(&mut self, fraction: f64) {
        let drop = ((self.map.len() as f64) * fraction.clamp(0.0, 1.0)).round() as usize;
        for _ in 0..drop {
            let lru = self.tail;
            if lru == NONE {
                break;
            }
            let key = self.nodes[lru].key;
            self.detach(lru);
            self.map.remove(&key);
            self.free.push(lru);
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NONE {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NONE;
        self.nodes[idx].next = NONE;
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NONE;
        self.nodes[idx].next = self.head;
        if self.head != NONE {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }
}

/// Where a translation was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbOutcome {
    /// First-level TLB hit (free).
    L1Hit,
    /// Second-level (STLB) hit — small penalty.
    StlbHit,
    /// Full miss — hardware page walk.
    Walk,
}

/// One first-level TLB pair (4 KiB + 2 MiB arrays) plus a shared STLB
/// reference is modelled by [`TlbHierarchy`]; this struct is one side
/// (instruction or data).
#[derive(Debug, Clone)]
struct FirstLevelTlb {
    small: LruSet,
    huge: LruSet,
}

impl FirstLevelTlb {
    fn new(geom: &TlbGeometry) -> Result<Self, ArchSimError> {
        Ok(FirstLevelTlb {
            small: LruSet::new(geom.entries_4k as usize)?,
            huge: LruSet::new(geom.entries_2m as usize)?,
        })
    }

    fn access(&mut self, page: u64, hugepage: bool) -> bool {
        if hugepage {
            self.huge.access(page)
        } else {
            self.small.access(page)
        }
    }
}

/// Instruction + data TLBs with a unified STLB.
///
/// Page numbers are 4 KiB-granular ids; huge-page translations are looked up
/// under the id of the containing 2 MiB region (computed by the caller via
/// the workload's compaction factor).
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    itlb: FirstLevelTlb,
    dtlb: FirstLevelTlb,
    stlb: LruSet,
    /// Statistics.
    itlb_accesses: u64,
    itlb_misses: u64,
    itlb_walks: u64,
    dtlb_accesses: u64,
    dtlb_misses: u64,
    dtlb_walks: u64,
}

impl TlbHierarchy {
    /// Builds the hierarchy from platform geometries.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidGeometry`] for zero-sized arrays.
    pub fn new(
        itlb: &TlbGeometry,
        dtlb: &TlbGeometry,
        stlb_entries: u32,
    ) -> Result<Self, ArchSimError> {
        Ok(TlbHierarchy {
            itlb: FirstLevelTlb::new(itlb)?,
            dtlb: FirstLevelTlb::new(dtlb)?,
            stlb: LruSet::new(stlb_entries as usize)?,
            itlb_accesses: 0,
            itlb_misses: 0,
            itlb_walks: 0,
            dtlb_accesses: 0,
            dtlb_misses: 0,
            dtlb_walks: 0,
        })
    }

    /// Translates an instruction fetch.
    pub fn access_code(&mut self, page: u64, hugepage: bool) -> TlbOutcome {
        self.itlb_accesses += 1;
        if self.itlb.access(tagged(page, hugepage), hugepage) {
            return TlbOutcome::L1Hit;
        }
        self.itlb_misses += 1;
        if self.stlb.access(stlb_key(page, hugepage, true)) {
            TlbOutcome::StlbHit
        } else {
            self.itlb_walks += 1;
            TlbOutcome::Walk
        }
    }

    /// Translates a data access.
    pub fn access_data(&mut self, page: u64, hugepage: bool) -> TlbOutcome {
        self.dtlb_accesses += 1;
        if self.dtlb.access(tagged(page, hugepage), hugepage) {
            return TlbOutcome::L1Hit;
        }
        self.dtlb_misses += 1;
        if self.stlb.access(stlb_key(page, hugepage, false)) {
            TlbOutcome::StlbHit
        } else {
            self.dtlb_walks += 1;
            TlbOutcome::Walk
        }
    }

    /// Context-switch pollution across all arrays.
    pub fn flush_fraction(&mut self, fraction: f64) {
        self.itlb.small.flush_fraction(fraction);
        self.itlb.huge.flush_fraction(fraction);
        self.dtlb.small.flush_fraction(fraction);
        self.dtlb.huge.flush_fraction(fraction);
        self.stlb.flush_fraction(fraction);
    }

    /// (accesses, first-level misses, walks) for the instruction side.
    pub fn itlb_stats(&self) -> (u64, u64, u64) {
        (self.itlb_accesses, self.itlb_misses, self.itlb_walks)
    }

    /// (accesses, first-level misses, walks) for the data side.
    pub fn dtlb_stats(&self) -> (u64, u64, u64) {
        (self.dtlb_accesses, self.dtlb_misses, self.dtlb_walks)
    }

    /// Clears statistics (contents retained), for warm-up discard.
    pub fn reset_stats(&mut self) {
        self.itlb_accesses = 0;
        self.itlb_misses = 0;
        self.itlb_walks = 0;
        self.dtlb_accesses = 0;
        self.dtlb_misses = 0;
        self.dtlb_walks = 0;
    }
}

/// Distinguish small/huge ids sharing numeric space.
fn tagged(page: u64, hugepage: bool) -> u64 {
    (page << 1) | hugepage as u64
}

fn stlb_key(page: u64, hugepage: bool, code: bool) -> u64 {
    (page << 2) | ((hugepage as u64) << 1) | code as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    fn hierarchy() -> TlbHierarchy {
        let spec = PlatformSpec::skylake18();
        TlbHierarchy::new(&spec.itlb, &spec.dtlb, spec.stlb_entries).unwrap()
    }

    #[test]
    fn lru_set_capacity_and_eviction() {
        let mut s = LruSet::new(4).unwrap();
        for k in 0..8u64 {
            assert!(!s.access(k));
        }
        assert_eq!(s.len(), 4);
        // 4..8 resident, 0..4 evicted.
        for k in 4..8u64 {
            assert!(s.access(k));
        }
        for k in 0..4u64 {
            assert!(!s.access(k));
        }
    }

    #[test]
    fn lru_set_matches_reference_model() {
        let mut s = LruSet::new(16).unwrap();
        let mut model: Vec<u64> = Vec::new(); // front = MRU
        let mut state = 7u64;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 40) % 40;
            let hit_model = if let Some(pos) = model.iter().position(|&k| k == key) {
                model.remove(pos);
                model.insert(0, key);
                true
            } else {
                if model.len() == 16 {
                    model.pop();
                }
                model.insert(0, key);
                false
            };
            assert_eq!(s.access(key), hit_model, "divergence on key {key}");
        }
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(LruSet::new(0).is_err());
    }

    #[test]
    fn small_pages_thrash_huge_pages_do_not() {
        let mut tlb = hierarchy();
        // Working set of 512 distinct 4 KiB data pages > 64-entry DTLB.
        for rep in 0..4 {
            for p in 0..512u64 {
                let _ = tlb.access_data(p, false);
                let _ = rep;
            }
        }
        let (_, misses_small, _) = tlb.dtlb_stats();
        assert!(misses_small > 500, "4K pages must thrash: {misses_small}");

        // Same footprint as 2 MiB pages: 512 pages / 512 ≈ 1–2 huge pages.
        let mut tlb2 = hierarchy();
        for _ in 0..4 {
            for p in 0..512u64 {
                let _ = tlb2.access_data(p / 512, true);
            }
        }
        let (_, misses_huge, _) = tlb2.dtlb_stats();
        assert!(
            misses_huge < 10,
            "huge pages must not thrash: {misses_huge}"
        );
    }

    #[test]
    fn stlb_catches_first_level_misses() {
        let mut tlb = hierarchy();
        // 256 pages: miss the 64-entry DTLB but fit the 1536-entry STLB.
        for _ in 0..4 {
            for p in 0..256u64 {
                let _ = tlb.access_data(p, false);
            }
        }
        let (_, misses, walks) = tlb.dtlb_stats();
        assert!(misses > 256);
        // After the first cold pass, walks should stop.
        assert!(
            (walks as f64) < (misses as f64) * 0.5,
            "STLB should absorb most repeat misses: {walks} walks vs {misses} misses"
        );
    }

    #[test]
    fn code_and_data_sides_are_independent_at_l1() {
        let mut tlb = hierarchy();
        for p in 0..32u64 {
            let _ = tlb.access_code(p, false);
        }
        let (ia, im, _) = tlb.itlb_stats();
        let (da, _, _) = tlb.dtlb_stats();
        assert_eq!(ia, 32);
        assert_eq!(im, 32);
        assert_eq!(da, 0);
    }

    #[test]
    fn flush_injects_misses() {
        let mut tlb = hierarchy();
        for p in 0..32u64 {
            let _ = tlb.access_data(p, false);
        }
        tlb.reset_stats();
        tlb.flush_fraction(1.0);
        for p in 0..32u64 {
            let _ = tlb.access_data(p, false);
        }
        let (_, misses, _) = tlb.dtlb_stats();
        assert_eq!(misses, 32);
    }
}
