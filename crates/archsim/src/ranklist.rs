//! An implicit treap: a sequence with O(log n) access/removal by rank.
//!
//! The trace generator maintains an LRU stack of every line a workload has
//! touched; each synthetic access must *remove the element at rank d and
//! push it to the front* (a move-to-front at a sampled reuse distance). With
//! data footprints of millions of lines, a `Vec` would make that O(n) per
//! access. An implicit treap (randomized balanced tree ordered by position)
//! does it in expected O(log n).
//!
//! The structure is deliberately minimal: it stores `u64` payloads and
//! supports exactly the operations the stack mapper needs.

/// A sequence of `u64` values supporting rank-addressed operations in
/// expected O(log n).
///
/// # Example
///
/// ```
/// use softsku_archsim::ranklist::RankList;
///
/// let mut list = RankList::new(42);
/// list.push_front(10);
/// list.push_front(20);
/// list.push_front(30); // sequence: [30, 20, 10]
/// assert_eq!(list.len(), 3);
/// assert_eq!(list.remove_at(1), Some(20));
/// assert_eq!(list.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RankList {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    rng_state: u64,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    value: u64,
    priority: u64,
    left: u32,
    right: u32,
    size: u32,
}

impl RankList {
    /// Creates an empty list; `seed` drives the treap's internal priorities
    /// (structure, not contents), keeping runs deterministic.
    pub fn new(seed: u64) -> Self {
        RankList {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            // The RankPriorities mask doubles as the splitmix64 increment,
            // keeping the state away from the all-zero fixed point.
            rng_state: softsku_telemetry::stream_seed(
                seed,
                softsku_telemetry::StreamFamily::RankPriorities,
            ),
        }
    }

    /// Builds a list containing `values` (front to back) in O(n) by
    /// constructing a balanced tree directly — used to pre-warm multi-million
    /// entry LRU stacks without n log n insertion cost.
    pub fn with_sequence<I>(seed: u64, values: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let mut list = RankList::new(seed);
        let vals: Vec<u64> = values.into_iter().collect();
        if !vals.is_empty() {
            list.nodes.reserve(vals.len());
            list.root = list.build_balanced(&vals, 0);
        }
        list
    }

    /// Recursively builds a balanced subtree over `vals`, assigning
    /// priorities that decrease with depth (preserving the treap heap
    /// property) plus jitter so later random-priority inserts interleave.
    fn build_balanced(&mut self, vals: &[u64], depth: u64) -> u32 {
        if vals.is_empty() {
            return NIL;
        }
        let mid = vals.len() / 2;
        // Depth bands are 2^57 apart; jitter stays below 2^52.
        let priority = u64::MAX - depth * (1 << 57) - (self.next_priority() >> 12);
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            value: vals[mid],
            priority,
            left: NIL,
            right: NIL,
            size: 1,
        });
        let left = self.build_balanced(&vals[..mid], depth + 1);
        let right = self.build_balanced(&vals[mid + 1..], depth + 1);
        self.nodes[idx as usize].left = left;
        self.nodes[idx as usize].right = right;
        self.update(idx);
        idx
    }

    /// Replaces the internal priority-stream seed; used when cloning a
    /// shared pre-warmed template so that subsequent inserts differ across
    /// instances.
    pub fn reseed(&mut self, seed: u64) {
        self.rng_state =
            softsku_telemetry::stream_seed(seed, softsku_telemetry::StreamFamily::RankPriorities);
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.size(self.root) as usize
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Inserts `value` at the front (rank 0).
    pub fn push_front(&mut self, value: u64) {
        let n = self.alloc(value);
        self.root = self.merge(n, self.root);
    }

    /// Removes and returns the element at `rank`, or `None` if out of range.
    pub fn remove_at(&mut self, rank: usize) -> Option<u64> {
        if rank >= self.len() {
            return None;
        }
        let (left, rest) = self.split(self.root, rank as u32);
        let (mid, right) = self.split(rest, 1);
        debug_assert_ne!(mid, NIL);
        let value = self.nodes[mid as usize].value;
        self.release(mid);
        self.root = self.merge(left, right);
        Some(value)
    }

    /// Removes and returns the last element (deepest LRU position).
    pub fn pop_back(&mut self) -> Option<u64> {
        let n = self.len();
        if n == 0 {
            None
        } else {
            self.remove_at(n - 1)
        }
    }

    /// Reads the element at `rank` without removing it.
    pub fn get(&self, rank: usize) -> Option<u64> {
        if rank >= self.len() {
            return None;
        }
        let mut cur = self.root;
        let mut rank = rank as u32;
        loop {
            let node = &self.nodes[cur as usize];
            let left_size = self.size(node.left);
            if rank < left_size {
                cur = node.left;
            } else if rank == left_size {
                return Some(node.value);
            } else {
                rank -= left_size + 1;
                cur = node.right;
            }
        }
    }

    /// Collects the sequence front-to-back (O(n); for tests and debugging).
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        self.walk(self.root, &mut out);
        out
    }

    fn walk(&self, node: u32, out: &mut Vec<u64>) {
        // Iterative in-order traversal to avoid recursion depth limits.
        let mut stack = Vec::new();
        let mut cur = node;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().expect("stack non-empty by loop condition");
            out.push(self.nodes[n as usize].value);
            cur = self.nodes[n as usize].right;
        }
    }

    fn size(&self, node: u32) -> u32 {
        if node == NIL {
            0
        } else {
            self.nodes[node as usize].size
        }
    }

    fn update(&mut self, node: u32) {
        let left = self.nodes[node as usize].left;
        let right = self.nodes[node as usize].right;
        self.nodes[node as usize].size = 1 + self.size(left) + self.size(right);
    }

    fn alloc(&mut self, value: u64) -> u32 {
        let priority = self.next_priority();
        let node = Node {
            value,
            priority,
            left: NIL,
            right: NIL,
            size: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn release(&mut self, idx: u32) {
        self.free.push(idx);
    }

    fn next_priority(&mut self) -> u64 {
        // splitmix64.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Merges two treaps where every rank of `a` precedes every rank of `b`.
    ///
    /// Recursive; a treap's depth is O(log n) with overwhelming probability,
    /// so recursion is safe even for multi-million-line footprints.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority >= self.nodes[b as usize].priority {
            let merged = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = merged;
            self.update(a);
            a
        } else {
            let merged = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = merged;
            self.update(b);
            b
        }
    }

    /// Splits into (first `k` elements, rest).
    fn split(&mut self, node: u32, k: u32) -> (u32, u32) {
        if node == NIL {
            return (NIL, NIL);
        }
        let left_size = self.size(self.nodes[node as usize].left);
        if k <= left_size {
            let (l, r) = self.split(self.nodes[node as usize].left, k);
            self.nodes[node as usize].left = r;
            self.update(node);
            (l, node)
        } else {
            let (l, r) = self.split(self.nodes[node as usize].right, k - left_size - 1);
            self.nodes[node as usize].right = l;
            self.update(node);
            (node, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_order() {
        let mut list = RankList::new(1);
        for i in 0..10 {
            list.push_front(i);
        }
        assert_eq!(list.to_vec(), (0..10).rev().collect::<Vec<u64>>());
        assert_eq!(list.len(), 10);
    }

    #[test]
    fn remove_at_matches_vec_model() {
        let mut list = RankList::new(7);
        let mut model: Vec<u64> = Vec::new();
        // Deterministic pseudo-random operation sequence.
        let mut state = 12345u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m.max(1)
        };
        for i in 0..2000u64 {
            if model.is_empty() || next(3) != 0 {
                list.push_front(i);
                model.insert(0, i);
            } else {
                let rank = next(model.len() as u64) as usize;
                assert_eq!(list.remove_at(rank), Some(model.remove(rank)));
            }
            if i % 257 == 0 {
                assert_eq!(list.to_vec(), model);
            }
        }
        assert_eq!(list.to_vec(), model);
    }

    #[test]
    fn get_does_not_mutate() {
        let mut list = RankList::new(3);
        for i in 0..100 {
            list.push_front(i);
        }
        let snapshot = list.to_vec();
        for (rank, &expected) in snapshot.iter().enumerate() {
            assert_eq!(list.get(rank), Some(expected));
        }
        assert_eq!(list.to_vec(), snapshot);
        assert_eq!(list.get(100), None);
    }

    #[test]
    fn pop_back_drains_in_reverse() {
        let mut list = RankList::new(5);
        for i in 0..50 {
            list.push_front(i);
        }
        for i in 0..50 {
            assert_eq!(list.pop_back(), Some(i));
        }
        assert_eq!(list.pop_back(), None);
        assert!(list.is_empty());
    }

    #[test]
    fn out_of_range_removal_is_none() {
        let mut list = RankList::new(0);
        assert_eq!(list.remove_at(0), None);
        list.push_front(9);
        assert_eq!(list.remove_at(1), None);
        assert_eq!(list.remove_at(0), Some(9));
    }

    #[test]
    fn node_reuse_keeps_len_consistent() {
        let mut list = RankList::new(11);
        for round in 0..20u64 {
            for i in 0..100 {
                list.push_front(round * 100 + i);
            }
            for _ in 0..100 {
                list.pop_back();
            }
            assert_eq!(list.len(), 0);
        }
    }

    #[test]
    fn large_scale_move_to_front() {
        // The exact access pattern the trace generator performs.
        let mut list = RankList::new(99);
        for i in 0..100_000u64 {
            list.push_front(i);
        }
        let mut state = 1u64;
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let rank = ((state >> 33) as usize) % list.len();
            let v = list.remove_at(rank).unwrap();
            list.push_front(v);
        }
        assert_eq!(list.len(), 100_000);
    }
}
