//! The simulation engine: ties trace generation, cache/TLB/branch structures,
//! prefetch effects, the memory model, and the CPI/TMAM accounting into one
//! window-level evaluation with a bandwidth↔latency fixed point.

use crate::branch::BranchPredictor;
use crate::cache::{CdpPartition, SetAssocCache, SharedLlc};
use crate::counters::Counters;
use crate::error::ArchSimError;
use crate::memory::MemoryModel;
use crate::pagemap::{PagePolicy, ThpMode, ThpPlatformTraits};
use crate::platform::{PlatformKind, PlatformSpec, CACHE_LINE_BYTES};
use crate::prefetch::{PrefetchEffect, PrefetcherConfig};
use crate::stream::StreamSpec;
use crate::tlb::{TlbHierarchy, TlbOutcome};
use crate::tmam::TmamBreakdown;
use crate::trace::TraceGenerator;

/// Everything the seven µSKU knobs can change about a server, plus the
/// platform it runs on.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// The hardware platform.
    pub platform: PlatformSpec,
    /// Core-domain frequency in GHz (knob 1).
    pub core_freq_ghz: f64,
    /// Uncore-domain frequency in GHz (knob 2).
    pub uncore_freq_ghz: f64,
    /// Active physical cores (knob 3; the rest are `isolcpus`-parked).
    pub active_cores: u32,
    /// CAT: LLC ways enabled for the workload.
    pub llc_ways_enabled: u32,
    /// CDP partition of the enabled ways, if any (knob 4).
    pub cdp: Option<CdpPartition>,
    /// Hardware prefetcher enables (knob 5).
    pub prefetchers: PrefetcherConfig,
    /// Transparent huge page mode (knob 6).
    pub thp: ThpMode,
    /// Statically-reserved 2 MiB pages (knob 7).
    pub shp_pages: u32,
    /// Machine DRAM capacity (for SHP over-reservation pressure).
    pub machine_memory_bytes: u64,
}

impl ServerConfig {
    /// The *stock* configuration of Sec. 6.2: maximum core and uncore
    /// frequency, all cores active, no CDP, all prefetchers on, THP always
    /// on, and no SHPs.
    pub fn stock(platform: PlatformSpec) -> Self {
        let core = platform.core_freq_range_ghz.1;
        let uncore = platform.uncore_freq_range_ghz.1;
        let cores = platform.total_cores();
        let ways = platform.llc.ways;
        ServerConfig {
            platform,
            core_freq_ghz: core,
            uncore_freq_ghz: uncore,
            active_cores: cores,
            llc_ways_enabled: ways,
            cdp: None,
            prefetchers: PrefetcherConfig::all_on(),
            thp: ThpMode::AlwaysOn,
            shp_pages: 0,
            machine_memory_bytes: 64 << 30,
        }
    }

    /// Validates every field against the platform.
    ///
    /// # Errors
    ///
    /// The specific [`ArchSimError`] for the first invalid field.
    pub fn validate(&self) -> Result<(), ArchSimError> {
        self.platform.validate_core_freq(self.core_freq_ghz)?;
        self.platform.validate_uncore_freq(self.uncore_freq_ghz)?;
        self.platform.validate_core_count(self.active_cores)?;
        if self.llc_ways_enabled == 0 || self.llc_ways_enabled > self.platform.llc.ways {
            return Err(ArchSimError::InvalidGeometry(format!(
                "{} of {} LLC ways enabled",
                self.llc_ways_enabled, self.platform.llc.ways
            )));
        }
        if let Some(p) = self.cdp {
            if !self.platform.supports_rdt {
                // Broadwell in this fleet lacks RDT kernel support only for
                // *some* extensions; the paper still sweeps CDP on it, so we
                // allow CDP and only validate the partition shape.
            }
            if p.data_ways + p.code_ways != self.llc_ways_enabled {
                return Err(ArchSimError::InvalidCdpPartition {
                    data_ways: p.data_ways,
                    code_ways: p.code_ways,
                    total_ways: self.llc_ways_enabled,
                });
            }
        }
        Ok(())
    }

    /// THP allocation behaviour for this platform (older Broadwell fleet is
    /// modelled as fragmented; see `pagemap`).
    pub fn thp_traits(&self) -> ThpPlatformTraits {
        match self.platform.kind {
            PlatformKind::Broadwell16 => ThpPlatformTraits::fragmented(),
            _ => ThpPlatformTraits::healthy(),
        }
    }

    /// Core frequency after the AVX power-budget tax (paper Sec. 6.1: Ads1
    /// runs at 2.0 GHz because AVX eats part of the budget).
    pub fn effective_core_freq_ghz(&self, fp_fraction: f64) -> f64 {
        if fp_fraction >= self.platform.avx_fp_threshold {
            (self.core_freq_ghz - self.platform.avx_freq_tax_ghz)
                .max(self.platform.core_freq_range_ghz.0)
        } else {
            self.core_freq_ghz
        }
    }
}

/// Cycle attribution produced by the CPI model (per simulated window).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpiParts {
    /// Issue/execute cycles (retiring + core-bound).
    pub base: f64,
    /// Instruction-supply stall cycles.
    pub frontend: f64,
    /// Branch misprediction recovery cycles.
    pub bad_speculation: f64,
    /// Data-supply stall cycles.
    pub backend_memory: f64,
    /// Context-switch overhead cycles.
    pub context_switch: f64,
}

impl CpiParts {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.base + self.frontend + self.bad_speculation + self.backend_memory + self.context_switch
    }
}

/// Result of simulating one window at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Raw event counts.
    pub counters: Counters,
    /// Single-thread IPC.
    pub ipc_thread: f64,
    /// Per-core IPC with SMT (what Fig. 6 reports).
    pub ipc_core: f64,
    /// Millions of instructions per second, one core.
    pub mips_per_core: f64,
    /// MIPS across all active cores at the given load (µSKU's metric).
    pub mips_total: f64,
    /// Average memory bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Loaded memory latency, ns.
    pub mem_latency_ns: f64,
    /// Memory-bandwidth utilization (0–1).
    pub mem_utilization: f64,
    /// True when the operating point is effectively bandwidth-bound.
    pub bandwidth_bound: bool,
    /// Cycle attribution.
    pub cpi: CpiParts,
    /// Top-down pipeline-slot breakdown.
    pub tmam: TmamBreakdown,
    /// Core frequency actually applied (after the AVX tax).
    pub effective_core_freq_ghz: f64,
    /// Fraction of CPU time spent context switching (Fig. 4 midpoint).
    pub context_switch_fraction: f64,
}

/// Fraction of the window used to warm structures before counting.
const WARMUP_FRACTION: f64 = 0.25;
/// STLB hit penalty in cycles.
const STLB_HIT_CYCLES: f64 = 9.0;
/// Exposed fraction of an L1i-miss/L2-hit refill (decoupled front ends and
/// fetch-ahead hide most of it).
const FE_L2_CHARGE: f64 = 0.25;
/// Exposed fraction of an L2-code-miss/LLC-hit refill.
const FE_LLC_CHARGE: f64 = 0.35;
/// Exposed fraction of a code fetch from memory ("the latency of code
/// misses is not hidden" — but fetch-ahead still overlaps a tail).
const FE_MEM_CHARGE: f64 = 0.55;
/// Exposed fraction of an ITLB page walk.
const ITLB_WALK_CHARGE: f64 = 0.40;
/// Exposed fraction of a DTLB page walk (overlaps OoO execution).
const DTLB_WALK_CHARGE: f64 = 0.40;
/// SHP pressure to extra-LLC-miss conversion gain.
const SHP_PRESSURE_GAIN: f64 = 10.0;
/// Extra backend cycles per FP op when the FP fraction is high (port
/// pressure under dense AVX work).
const FP_PRESSURE_CPI: f64 = 0.15;

/// The window-level simulator for one (platform config, workload) pair.
#[derive(Debug)]
pub struct Engine {
    config: ServerConfig,
    spec: StreamSpec,
    seed: u64,
}

impl Engine {
    /// Creates an engine after validating the configuration and stream spec.
    ///
    /// # Errors
    ///
    /// Any validation error from [`ServerConfig::validate`] or
    /// [`StreamSpec::validate`].
    pub fn new(config: ServerConfig, spec: StreamSpec, seed: u64) -> Result<Self, ArchSimError> {
        config.validate()?;
        spec.validate()?;
        Ok(Engine { config, spec, seed })
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The workload stream specification.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Simulates `instructions` instructions at `load_fraction` of peak
    /// offered load and returns the full report.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::FixedPointDiverged`] if the bandwidth/latency
    /// iteration fails to settle (does not happen for valid configs; the
    /// queueing curve is a contraction under damping).
    pub fn run_window(
        &self,
        instructions: u64,
        load_fraction: f64,
    ) -> Result<WindowReport, ArchSimError> {
        self.run_colocated(instructions, load_fraction, 0.0, None)
    }

    /// Simulates a window while sharing the socket with a co-runner: the
    /// co-runner contributes `background_bw_gbps` of memory traffic to the
    /// loaded-latency queue, and `llc_share` (when given) overrides this
    /// workload's effective LLC fraction (paper Sec. 7: "µSKU and
    /// co-location"). `run_window` is the dedicated-server special case.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_window`], plus
    /// [`ArchSimError::InvalidFraction`] for an out-of-range `llc_share`.
    pub fn run_colocated(
        &self,
        instructions: u64,
        load_fraction: f64,
        background_bw_gbps: f64,
        llc_share: Option<f64>,
    ) -> Result<WindowReport, ArchSimError> {
        if let Some(s) = llc_share {
            if !(s > 0.0 && s <= 1.0) {
                return Err(ArchSimError::InvalidFraction {
                    name: "llc_share".to_string(),
                    value: s,
                });
            }
        }
        let cfg = &self.config;
        let spec = &self.spec;
        let plat = &cfg.platform;
        let load = load_fraction.clamp(0.05, 1.0);

        // ------------------------------------------------------------------
        // 1. Resolve derived policies.
        // ------------------------------------------------------------------
        let freq = cfg.effective_core_freq_ghz(spec.mix.fp);
        let policy = PagePolicy::resolve(
            &spec.pages,
            cfg.thp,
            cfg.shp_pages,
            cfg.thp_traits(),
            cfg.machine_memory_bytes,
        );
        let pf = PrefetchEffect::resolve(cfg.prefetchers, &spec.prefetch);
        let memory = MemoryModel::new(plat, cfg.uncore_freq_ghz);

        // Per-core effective LLC share under multi-core contention. The LLC
        // is per-socket, so only cores within a socket contend. A co-runner
        // override replaces the same-workload contention estimate.
        let n = cfg.active_cores as f64;
        let contending = n.min(plat.cores_per_socket as f64);
        let share = match llc_share {
            Some(s) => s,
            None => 1.0 / (1.0 + (contending - 1.0) * spec.llc_contention),
        };

        // ------------------------------------------------------------------
        // 2. Build structures.
        // ------------------------------------------------------------------
        let mut l1i = SetAssocCache::from_geometry(&plat.l1i, plat.l1i.ways, 1.0)?;
        let mut l1d = SetAssocCache::from_geometry(&plat.l1d, plat.l1d.ways, 1.0)?;
        let mut l2 = SetAssocCache::from_geometry(&plat.l2, plat.l2.ways, 1.0)?;
        let mut llc = match cfg.cdp {
            Some(p) => SharedLlc::build(&plat.llc, cfg.llc_ways_enabled, Some(p), share)?,
            None => SharedLlc::natural_split(
                &plat.llc,
                cfg.llc_ways_enabled,
                spec.natural_code_llc_share.clamp(0.05, 0.95),
                share,
            )?,
        };
        let mut tlb = TlbHierarchy::new(&plat.itlb, &plat.dtlb, plat.stlb_entries)?;
        let mut bpu = BranchPredictor::new(
            spec.branch.base_mispredict,
            spec.branch.branch_working_set,
            plat.btb_entries,
        );
        let huge_mix = crate::trace::HugePageMix {
            code_huge_fraction: policy.huge_code_fraction,
            data_huge_fraction: policy.huge_data_fraction,
        };
        let mut gen = TraceGenerator::new(spec, huge_mix, self.seed);
        let mut rng = rand_for(softsku_telemetry::stream_seed(
            self.seed,
            softsku_telemetry::StreamFamily::EngineSampling,
        ));

        // Context-switch injection interval (instructions); uses a nominal
        // IPC guess of 1 — only the *pollution placement* depends on it, the
        // direct cost is computed analytically below.
        let cs_rate = spec.context_switch.rate_per_sec * load;
        let insns_per_switch = if cs_rate > 0.0 {
            ((freq * 1e9) / cs_rate).max(1_000.0) as u64
        } else {
            u64::MAX
        };

        // ------------------------------------------------------------------
        // 3. Pre-fill structures with steady-state MRU contents.
        //
        // The stack mappers start at steady state (pre-warmed stacks), but a
        // cold cache would need millions of accesses before lines at
        // LLC-scale reuse distances could hit: every deep re-reference would
        // be an in-structure compulsory miss and large-capacity hits would be
        // invisible in a short window. Seed each structure with the top of
        // the corresponding stream's LRU stack, deepest-first so recency
        // order matches.
        // ------------------------------------------------------------------
        use crate::trace::prewarm_len;
        // Code ids share the unified L2/LLC with data ids; tag them apart.
        const CODE_TAG: u64 = 1 << 62;
        let code_pw = prewarm_len(&spec.code_reuse);
        let data_pw = prewarm_len(&spec.data_reuse);
        {
            let (code_cap, data_cap) = llc.capacities();
            for id in code_pw.saturating_sub(code_cap)..code_pw {
                llc.access_code(id);
            }
            for id in data_pw.saturating_sub(data_cap)..data_pw {
                llc.access_data(id);
            }
            // L2 is unified: interleave the two streams' MRU halves.
            let half = plat.l2.lines() / 2;
            for i in (1..=half).rev() {
                if i <= code_pw {
                    l2.access((code_pw - i) | CODE_TAG);
                }
                if i <= data_pw {
                    l2.access(data_pw - i);
                }
            }
            for id in code_pw.saturating_sub(plat.l1i.lines())..code_pw {
                l1i.access(id);
            }
            for id in data_pw.saturating_sub(plat.l1d.lines())..data_pw {
                l1d.access(id);
            }
            // TLBs: seed the 4 KiB sides (the dominant arrays) with the top
            // pages of each page stream; accesses insert into the STLB too.
            let cp_pw = prewarm_len(&spec.code_page_reuse);
            let dp_pw = prewarm_len(&spec.data_page_reuse);
            let seedn = plat.stlb_entries as u64 / 2;
            for id in cp_pw.saturating_sub(seedn)..cp_pw {
                let _ = tlb.access_code(id, false);
            }
            for id in dp_pw.saturating_sub(seedn)..dp_pw {
                let _ = tlb.access_data(id, false);
            }
            l1i.reset_stats();
            l1d.reset_stats();
            l2.reset_stats();
            llc.reset_stats();
            tlb.reset_stats();
        }

        // ------------------------------------------------------------------
        // 4. Drive the structures.
        // ------------------------------------------------------------------
        // The pre-fill above supplies steady-state contents; the warm-up
        // only needs to mix the interleaved structures.
        let warmup = ((instructions as f64 * WARMUP_FRACTION) as u64).clamp(50_000, 400_000);
        let mut c = Counters::default();
        let total = instructions + warmup;

        for i in 0..total {
            if i == warmup {
                l1i.reset_stats();
                l1d.reset_stats();
                l2.reset_stats();
                llc.reset_stats();
                tlb.reset_stats();
                bpu.reset_stats();
                c = Counters::default();
            }
            let ev = gen.next_event();
            c.instructions += 1;

            // Instruction fetch. The LLC is probed (and its recency updated)
            // on every L1 miss — mostly-inclusive behaviour; without the
            // recency refresh, lines hot in L2 would go LLC-stale and the
            // capacity between L2 and LLC would be invisible.
            c.code_accesses += 1;
            if !l1i.access(ev.code_line) {
                c.l1i_misses += 1;
                let l2_hit = l2.access(ev.code_line | CODE_TAG);
                let llc_hit = llc.access_code(ev.code_line);
                if !l2_hit {
                    c.l2_code_misses += 1;
                    if !llc_hit {
                        c.llc_code_misses += 1;
                    }
                }
            }
            // ITLB.
            let _ = tlb.access_code(ev.code_page.page, ev.code_page.is_huge);

            // Data side.
            if let Some(d) = ev.data {
                c.data_accesses += 1;
                if d.is_store {
                    c.stores += 1;
                } else {
                    c.loads += 1;
                }
                if !l1d.access(d.line) {
                    c.l1d_misses += 1;
                    let l2_hit = l2.access(d.line);
                    let llc_hit = llc.access_data(d.line);
                    if !l2_hit {
                        c.l2_data_misses += 1;
                        if !llc_hit {
                            c.llc_data_misses += 1;
                        }
                    }
                }
                let out = tlb.access_data(d.page.page, d.page.is_huge);
                if out != TlbOutcome::L1Hit {
                    if d.is_store {
                        c.dtlb_store_misses += 1;
                    } else {
                        c.dtlb_load_misses += 1;
                    }
                }
            }

            // Branch.
            if matches!(ev.class, crate::trace::InsnClass::Branch) {
                c.branches += 1;
                if bpu.predict(&mut rng) {
                    c.branch_mispredicts += 1;
                }
            }
            if matches!(ev.class, crate::trace::InsnClass::Fp) {
                c.fp_ops += 1;
            }

            // Context-switch pollution.
            if i > 0 && i % insns_per_switch == 0 {
                let poll = spec.context_switch.pollution_fraction;
                l1i.flush_fraction(poll);
                l1d.flush_fraction(poll);
                l2.flush_fraction(poll * 0.5);
                tlb.flush_fraction(poll);
            }
        }

        // Fill TLB/branch aggregate stats into counters.
        let (_, itlb_miss, itlb_walk) = tlb.itlb_stats();
        let (_, dtlb_miss, dtlb_walk) = tlb.dtlb_stats();
        c.itlb_misses = itlb_miss;
        c.itlb_walks = itlb_walk;
        c.dtlb_misses = dtlb_miss;
        c.dtlb_walks = dtlb_walk;
        let (_, _, btb) = bpu.stats();
        c.btb_misses = btb;

        // ------------------------------------------------------------------
        // 5. Prefetch coverage + SHP pressure transforms (aggregate).
        // ------------------------------------------------------------------
        let ins = c.instructions as f64;
        let shp_bump = 1.0 + policy.shp_pressure_penalty * SHP_PRESSURE_GAIN;

        let m1 = c.l1d_misses as f64;
        let m2 = c.l2_data_misses as f64 * shp_bump;
        let m3 = c.llc_data_misses as f64 * shp_bump;
        let l1d_eff = m1 * (1.0 - pf.l1d_coverage);
        let l2d_eff = m2 * (1.0 - pf.l1d_coverage * 0.5) * (1.0 - pf.l2_coverage);
        let llcd_eff = m3 * (1.0 - pf.l1d_coverage * 0.3) * (1.0 - pf.l2_coverage * 0.5);
        // Memory-latency exposure after stream-prefetch hiding.
        let llcd_exposed = llcd_eff * (1.0 - pf.llc_coverage);

        // Prefetch waste at the *memory interface*: only prefetches that
        // fill from DRAM cost bandwidth — the DCU units fill from L2/LLC.
        // Waste scales with the LLC-miss fill volume initiated by the L2
        // stream machinery.
        let mem_prefetch_share = pf.llc_coverage + 0.3 * pf.l2_coverage;
        let waste_lines = m3 * mem_prefetch_share * pf.traffic_overhead;

        // Memory traffic (lines): all LLC data misses move a line regardless
        // of latency hiding, plus code misses, prefetch waste, writebacks.
        let store_share = if c.data_accesses > 0 {
            c.stores as f64 / c.data_accesses as f64
        } else {
            0.0
        };
        c.mem_demand_lines = m3 + c.llc_code_misses as f64;
        c.mem_prefetch_lines = waste_lines;
        c.mem_writeback_lines = m3 * store_share * spec.writeback_factor * 2.0;
        let pf_frac = spec.extra_traffic_prefetch_fraction.clamp(0.0, 1.0);
        let extra_scale = (1.0 - pf_frac) + pf_frac * cfg.prefetchers.traffic_weight();
        c.mem_extra_lines = spec.extra_mem_lines_per_ki * extra_scale * ins / 1000.0;

        // ------------------------------------------------------------------
        // 6. CPI fixed point (memory latency <-> bandwidth).
        // ------------------------------------------------------------------
        // Latencies in core cycles at frequency `freq`.
        let l2_lat = plat.l2.latency_cycles as f64;
        // LLC and memory live in the uncore clock domain: express their
        // nominal latencies in ns at nominal uncore, then convert.
        let uncore_nominal = plat.uncore_freq_range_ghz.1;
        let llc_ns = plat.llc.latency_cycles as f64 / uncore_nominal
            * (uncore_nominal / cfg.uncore_freq_ghz);
        let llc_lat = llc_ns * freq;
        let walk_cycles = plat.page_walk_cycles as f64;

        let mispredicts = c.branch_mispredicts as f64;
        let base = ins * base_cpi(&spec.mix) * spec.base_cpi_scale;
        let fp_extra = if spec.mix.fp >= plat.avx_fp_threshold {
            c.fp_ops as f64 * FP_PRESSURE_CPI
        } else {
            0.0
        };

        let l1i_to_l2 = (c.l1i_misses - c.l2_code_misses.min(c.l1i_misses)) as f64;
        let l2c_to_llc = (c.l2_code_misses - c.llc_code_misses.min(c.l2_code_misses)) as f64;
        let llcc_to_mem = c.llc_code_misses as f64;
        let itlb_stlb_hits = (c.itlb_misses - c.itlb_walks) as f64;
        let dtlb_stlb_hits = (c.dtlb_misses - c.dtlb_walks) as f64;

        let l1d_to_l2 = (l1d_eff - l2d_eff).max(0.0);
        let l2d_to_llc = (l2d_eff - llcd_eff).max(0.0);

        let mut mem_lat_ns = memory.unloaded_latency_ns();
        let mut report = None;
        let max_iter = 400;
        for iter in 0..max_iter {
            let mem_lat = mem_lat_ns * freq; // cycles

            let frontend = spec.frontend_exposure
                * (l1i_to_l2 * l2_lat * FE_L2_CHARGE
                    + l2c_to_llc * llc_lat * FE_LLC_CHARGE
                    + llcc_to_mem * mem_lat * FE_MEM_CHARGE
                    + itlb_stlb_hits * STLB_HIT_CYCLES
                    + c.itlb_walks as f64 * walk_cycles * ITLB_WALK_CHARGE);
            let bad_spec = mispredicts * plat.mispredict_penalty_cycles as f64;
            let backend = (l1d_to_l2 * l2_lat
                + l2d_to_llc * llc_lat
                + llcd_exposed * mem_lat
                + (llcd_eff - llcd_exposed) * llc_lat)
                / spec.mlp
                + dtlb_stlb_hits * STLB_HIT_CYCLES
                + c.dtlb_walks as f64 * walk_cycles * DTLB_WALK_CHARGE
                + fp_extra;

            // Context switch direct cost: midpoint of the bound range.
            let time_guess_s = (base + frontend + bad_spec + backend).max(1.0) / (freq * 1e9);
            let switches = cs_rate * time_guess_s;
            let cs_us = 0.5
                * (spec.context_switch.direct_cost_us_low
                    + spec.context_switch.direct_cost_us_high);
            let cs_cycles = switches * cs_us * 1e-6 * freq * 1e9;

            let parts = CpiParts {
                base,
                frontend,
                bad_speculation: bad_spec,
                backend_memory: backend,
                context_switch: cs_cycles,
            };
            let cycles = parts.total();
            let ipc_thread = ins / cycles;
            let width = plat.issue_width as f64;
            let ipc_core = (ipc_thread * (1.0 + spec.smt_gain)).min(width);
            let mips_core = ipc_core * freq * 1e3; // MIPS (million insn/s)
            let mips_total = mips_core * n * load;

            let lines_per_insn = c.mem_total_lines() / ins;
            let bytes_per_sec = lines_per_insn * CACHE_LINE_BYTES as f64 * mips_total * 1e6;
            let offered_gbps = bytes_per_sec / 1e9;
            // A co-runner's traffic loads the same memory queue.
            let offered_total = offered_gbps + background_bw_gbps.max(0.0);
            let bw = memory.deliverable_bandwidth_gbps(offered_gbps);
            let new_lat = memory.loaded_latency_ns(offered_total, spec.burstiness);

            let converged = (new_lat - mem_lat_ns).abs() < 1e-3 * new_lat.max(1.0);
            if converged || iter == max_iter - 1 {
                let utilization = memory.utilization(bw + background_bw_gbps.max(0.0));
                let mut final_c = c;
                final_c.cycles = cycles;
                final_c.context_switches = switches;
                let tmam = TmamBreakdown::from_cycles(ins, cycles, frontend, bad_spec, width);
                report = Some(WindowReport {
                    counters: final_c,
                    ipc_thread,
                    ipc_core,
                    mips_per_core: mips_core,
                    mips_total,
                    bandwidth_gbps: bw,
                    mem_latency_ns: new_lat,
                    mem_utilization: utilization,
                    bandwidth_bound: utilization > 0.90,
                    cpi: parts,
                    tmam,
                    effective_core_freq_ghz: freq,
                    context_switch_fraction: cs_cycles / cycles,
                });
                break;
            }
            // Heavily damped update: the loaded-latency curve is steep near
            // saturation and an undamped (or lightly damped) iteration
            // oscillates between a high-latency/low-throughput state and its
            // mirror image.
            mem_lat_ns = 0.85 * mem_lat_ns + 0.15 * new_lat;
        }
        report.ok_or(ArchSimError::FixedPointDiverged {
            iterations: max_iter,
        })
    }
}

/// Base (no-stall) CPI from the instruction mix: per-class issue costs on a
/// 4-wide machine with typical port pressure.
fn base_cpi(mix: &crate::stream::InstructionMix) -> f64 {
    0.25 * mix.arith + 0.28 * mix.branch + 0.40 * mix.fp + 0.30 * mix.load + 0.30 * mix.store
}

fn rand_for(seed: u64) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    rand::rngs::SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reuse::ReuseDistanceDist;
    use crate::stream::{
        BranchProfile, ContextSwitchProfile, InstructionMix, PageProfile, PrefetchAffinity,
    };

    fn test_spec() -> StreamSpec {
        let line = ReuseDistanceDist::from_survival_points(
            &[(400, 0.12), (12_000, 0.03), (300_000, 0.008)],
            0.002,
            2_000_000,
        )
        .unwrap();
        let code = ReuseDistanceDist::from_survival_points(
            &[(400, 0.06), (12_000, 0.01)],
            0.0005,
            200_000,
        )
        .unwrap();
        let page = ReuseDistanceDist::single_knee(48, 0.02, 0.002, 60_000).unwrap();
        StreamSpec {
            name: "engine-test".to_string(),
            mix: InstructionMix::new(0.20, 0.02, 0.29, 0.34, 0.15).unwrap(),
            code_reuse: code,
            data_reuse: line,
            code_page_reuse: page.clone(),
            data_page_reuse: page,
            branch: BranchProfile {
                taken_rate: 0.6,
                base_mispredict: 0.02,
                branch_working_set: 2000,
            },
            prefetch: PrefetchAffinity::modest(),
            pages: PageProfile {
                data_compaction: 32.0,
                code_compaction: 128.0,
                madvise_fraction: 0.25,
                uses_shp: true,
                shp_target_bytes: 300 * (2 << 20),
            },
            context_switch: ContextSwitchProfile::quiet(),
            mlp: 3.5,
            smt_gain: 0.25,
            base_cpi_scale: 1.0,
            writeback_factor: 0.4,
            burstiness: 1.0,
            llc_contention: 0.3,
            natural_code_llc_share: 0.35,
            extra_mem_lines_per_ki: 0.0,
            extra_traffic_prefetch_fraction: 0.3,
            frontend_exposure: 0.6,
        }
    }

    fn engine_with(cfg: ServerConfig) -> Engine {
        Engine::new(cfg, test_spec(), 7).unwrap()
    }

    const WINDOW: u64 = 150_000;

    #[test]
    fn stock_config_runs_and_is_sane() {
        let e = engine_with(ServerConfig::stock(PlatformSpec::skylake18()));
        let r = e.run_window(WINDOW, 1.0).unwrap();
        assert!(
            r.ipc_thread > 0.1 && r.ipc_thread < 4.0,
            "ipc {}",
            r.ipc_thread
        );
        assert!(r.ipc_core >= r.ipc_thread);
        assert!(r.mips_total > 0.0);
        assert!(r.mem_latency_ns >= 85.0);
        let t = r.tmam;
        let sum = t.retiring + t.frontend + t.bad_speculation + t.backend;
        assert!((sum - 1.0).abs() < 1e-9, "TMAM must sum to 1, got {sum}");
        assert!(t.retiring > 0.0 && t.retiring < 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let e = engine_with(ServerConfig::stock(PlatformSpec::skylake18()));
        let a = e.run_window(WINDOW, 1.0).unwrap();
        let b = e.run_window(WINDOW, 1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn higher_core_frequency_means_more_mips() {
        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.core_freq_ghz = 2.2;
        let fast = engine_with(cfg.clone()).run_window(WINDOW, 1.0).unwrap();
        cfg.core_freq_ghz = 1.6;
        let slow = engine_with(cfg).run_window(WINDOW, 1.0).unwrap();
        assert!(fast.mips_total > slow.mips_total * 1.05);
        // Sub-linear: memory latency in cycles grows with frequency.
        let ratio = fast.mips_total / slow.mips_total;
        assert!(ratio < 2.2 / 1.6, "scaling must be sub-linear, got {ratio}");
    }

    #[test]
    fn lower_uncore_frequency_hurts() {
        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.uncore_freq_ghz = 1.8;
        let fast = engine_with(cfg.clone()).run_window(WINDOW, 1.0).unwrap();
        cfg.uncore_freq_ghz = 1.4;
        let slow = engine_with(cfg).run_window(WINDOW, 1.0).unwrap();
        assert!(fast.mips_total > slow.mips_total);
    }

    #[test]
    fn fewer_llc_ways_more_misses() {
        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.llc_ways_enabled = 11;
        let full = engine_with(cfg.clone()).run_window(WINDOW, 1.0).unwrap();
        cfg.llc_ways_enabled = 2;
        let tiny = engine_with(cfg).run_window(WINDOW, 1.0).unwrap();
        assert!(
            tiny.counters.llc_data_mpki() > full.counters.llc_data_mpki(),
            "2 ways {} vs 11 ways {}",
            tiny.counters.llc_data_mpki(),
            full.counters.llc_data_mpki()
        );
    }

    #[test]
    fn invalid_configs_rejected_at_construction() {
        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.core_freq_ghz = 3.0;
        assert!(Engine::new(cfg, test_spec(), 0).is_err());

        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.cdp = Some(CdpPartition {
            data_ways: 6,
            code_ways: 6,
        });
        assert!(Engine::new(cfg, test_spec(), 0).is_err());

        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.active_cores = 0;
        assert!(Engine::new(cfg, test_spec(), 0).is_err());
    }

    #[test]
    fn avx_tax_applies_to_fp_heavy_mix() {
        let cfg = ServerConfig::stock(PlatformSpec::skylake18());
        assert_eq!(cfg.effective_core_freq_ghz(0.05), 2.2);
        assert_eq!(cfg.effective_core_freq_ghz(0.30), 2.0);
    }

    #[test]
    fn prefetchers_help_when_bandwidth_is_free() {
        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.prefetchers = PrefetcherConfig::all_on();
        let on = engine_with(cfg.clone()).run_window(WINDOW, 1.0).unwrap();
        cfg.prefetchers = PrefetcherConfig::all_off();
        let off = engine_with(cfg).run_window(WINDOW, 1.0).unwrap();
        assert!(
            on.mips_total > off.mips_total,
            "prefetch on {} vs off {}",
            on.mips_total,
            off.mips_total
        );
        assert!(
            on.bandwidth_gbps > off.bandwidth_gbps,
            "prefetch adds traffic"
        );
    }

    #[test]
    fn context_switch_fraction_scales_with_rate() {
        let mut spec = test_spec();
        spec.context_switch.rate_per_sec = 150_000.0;
        spec.context_switch.pollution_fraction = 0.3;
        let busy = Engine::new(ServerConfig::stock(PlatformSpec::skylake18()), spec, 7)
            .unwrap()
            .run_window(WINDOW, 1.0)
            .unwrap();
        let quiet = engine_with(ServerConfig::stock(PlatformSpec::skylake18()))
            .run_window(WINDOW, 1.0)
            .unwrap();
        assert!(busy.context_switch_fraction > 10.0 * quiet.context_switch_fraction);
        assert!(busy.context_switch_fraction > 0.02 && busy.context_switch_fraction < 0.5);
    }

    #[test]
    fn load_fraction_scales_bandwidth_not_ipc_much() {
        let e = engine_with(ServerConfig::stock(PlatformSpec::skylake18()));
        let full = e.run_window(WINDOW, 1.0).unwrap();
        let half = e.run_window(WINDOW, 0.5).unwrap();
        assert!(half.mips_total < full.mips_total);
        assert!(half.bandwidth_gbps < full.bandwidth_gbps);
    }

    #[test]
    fn thp_always_reduces_dtlb_misses() {
        let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
        cfg.thp = ThpMode::AlwaysOn;
        let always = engine_with(cfg.clone()).run_window(WINDOW, 1.0).unwrap();
        cfg.thp = ThpMode::NeverOn;
        let never = engine_with(cfg).run_window(WINDOW, 1.0).unwrap();
        assert!(
            always.counters.dtlb_misses < never.counters.dtlb_misses,
            "always {} vs never {}",
            always.counters.dtlb_misses,
            never.counters.dtlb_misses
        );
    }
}
