//! Hardware prefetcher configuration and its statistical effect model.
//!
//! The paper's servers expose four prefetchers via MSRs (Sec. 5, knob 5):
//!
//! 1. **L2 hardware (stream) prefetcher** — fetches lines into L2/LLC.
//! 2. **L2 adjacent-cache-line prefetcher** — fetches the buddy line of a
//!    128-byte-aligned pair.
//! 3. **DCU prefetcher** — next-line into L1-D.
//! 4. **DCU IP prefetcher** — per-instruction-pointer stride into L1-D.
//!
//! µSKU sweeps five configurations. The mechanics that matter for the
//! experiments are (a) covered misses hit at a nearer level, and (b) every
//! covered miss costs `1/accuracy` lines of memory traffic, so prefetching
//! *trades bandwidth for latency* — a win on Skylake, a loss on the
//! bandwidth-saturated Web/Broadwell combination (Fig. 17).
//!
//! Rather than pattern-matching on a synthetic address stream (whose
//! "strides" would be artifacts of the reuse-distance generator), the model
//! applies each prefetcher's coverage to the fraction of misses the workload
//! declares prefetchable ([`PrefetchAffinity`]) — a documented substitution
//! that preserves the bandwidth/latency trade-off exactly where the knob
//! experiments need it.

use crate::stream::PrefetchAffinity;

/// On/off state of the four hardware prefetchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PrefetcherConfig {
    /// L2 hardware (stream) prefetcher.
    pub l2_stream: bool,
    /// L2 adjacent-cache-line prefetcher.
    pub l2_adjacent: bool,
    /// DCU next-line prefetcher (L1-D).
    pub dcu: bool,
    /// DCU IP-stride prefetcher (L1-D).
    pub dcu_ip: bool,
}

impl PrefetcherConfig {
    /// All four prefetchers off.
    pub fn all_off() -> Self {
        PrefetcherConfig::default()
    }

    /// All four prefetchers on (stock default; production default for
    /// Web-on-Skylake and Ads1).
    pub fn all_on() -> Self {
        PrefetcherConfig {
            l2_stream: true,
            l2_adjacent: true,
            dcu: true,
            dcu_ip: true,
        }
    }

    /// Only the two DCU prefetchers (µSKU config c).
    pub fn dcu_and_dcu_ip() -> Self {
        PrefetcherConfig {
            dcu: true,
            dcu_ip: true,
            ..Self::all_off()
        }
    }

    /// Only the DCU next-line prefetcher (µSKU config d).
    pub fn dcu_only() -> Self {
        PrefetcherConfig {
            dcu: true,
            ..Self::all_off()
        }
    }

    /// L2 hardware + DCU prefetchers (µSKU config e; production default for
    /// Web-on-Broadwell).
    pub fn l2_and_dcu() -> Self {
        PrefetcherConfig {
            l2_stream: true,
            dcu: true,
            ..Self::all_off()
        }
    }

    /// The five configurations µSKU sweeps, in the paper's order.
    pub fn sweep() -> [PrefetcherConfig; 5] {
        [
            Self::all_off(),
            Self::all_on(),
            Self::dcu_and_dcu_ip(),
            Self::dcu_only(),
            Self::l2_and_dcu(),
        ]
    }

    /// Short human-readable label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match (self.l2_stream, self.l2_adjacent, self.dcu, self.dcu_ip) {
            (false, false, false, false) => "all off",
            (true, true, true, true) => "all on",
            (false, false, true, true) => "DCU & DCU IP on",
            (false, false, true, false) => "DCU on",
            (true, false, true, false) => "L2 hardware & DCU on",
            _ => "custom",
        }
    }
}

impl std::fmt::Display for PrefetcherConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl PrefetcherConfig {
    /// Relative share of the platform's prefetch-generated DRAM traffic the
    /// enabled engines account for (1.0 = all engines on). The stream
    /// prefetcher dominates because it is the only unit that runs far ahead
    /// into DRAM.
    pub fn traffic_weight(&self) -> f64 {
        let mut w = 0.0;
        if self.l2_stream {
            w += 0.55;
        }
        if self.l2_adjacent {
            w += 0.15;
        }
        if self.dcu {
            w += 0.15;
        }
        if self.dcu_ip {
            w += 0.15;
        }
        w
    }
}

/// The resolved effect of a prefetcher configuration on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchEffect {
    /// Fraction of L1-D demand misses converted to L1 hits.
    pub l1d_coverage: f64,
    /// Fraction of L2 demand misses (data) converted to L2 hits.
    pub l2_coverage: f64,
    /// Fraction of LLC demand misses (data) whose memory latency is hidden
    /// (prefetched early enough to hit in LLC).
    pub llc_coverage: f64,
    /// Extra memory traffic, expressed as a multiplier on covered-miss lines
    /// (`issued/useful − 1` wasted plus the prefetched lines themselves are
    /// charged at the memory interface when they would otherwise have been
    /// demand-fetched; only the waste is *extra*).
    pub traffic_overhead: f64,
}

impl PrefetchEffect {
    /// No prefetching.
    pub fn none() -> Self {
        PrefetchEffect {
            l1d_coverage: 0.0,
            l2_coverage: 0.0,
            llc_coverage: 0.0,
            traffic_overhead: 0.0,
        }
    }

    /// Resolves the effect of `config` on a workload with prefetchable-miss
    /// fractions `affinity`.
    ///
    /// Per-prefetcher coverage factors (fraction of the *pattern* each engine
    /// captures) follow the conventional characterization of these units:
    /// the stream prefetcher is the strongest on sequential traffic, the
    /// adjacent-line prefetcher adds a little, the DCU next-line unit covers
    /// short sequential runs at L1, and the IP-stride unit covers per-PC
    /// strides at L1.
    pub fn resolve(config: PrefetcherConfig, affinity: &PrefetchAffinity) -> Self {
        let seq = affinity.sequential;
        let stride = affinity.ip_stride;

        // L1-side coverage.
        let mut l1 = 0.0;
        if config.dcu {
            l1 += 0.45 * seq;
        }
        if config.dcu_ip {
            l1 += 0.60 * stride;
        }
        // L2-side coverage applies to misses *not* already covered at L1.
        let mut l2 = 0.0;
        if config.l2_stream {
            l2 += 0.65 * seq;
        }
        if config.l2_adjacent {
            l2 += 0.20 * seq;
        }
        // Memory-latency hiding: only the stream prefetcher runs far enough
        // ahead.
        let llc = if config.l2_stream {
            0.50 * (seq + 0.5 * stride)
        } else {
            0.0
        };

        // Waste: issued = covered / accuracy ⇒ wasted lines = covered *
        // (1/acc − 1). The adjacent-line prefetcher is the least accurate;
        // weight the waste by which engines are on.
        let mut engines = 0.0;
        let mut waste = 0.0;
        let acc = affinity.accuracy.max(0.05);
        for (on, engine_acc) in [
            (config.l2_stream, acc),
            (config.l2_adjacent, acc * 0.6),
            (config.dcu, acc),
            (config.dcu_ip, (acc * 1.2).min(0.95)),
        ] {
            if on {
                engines += 1.0;
                waste += 1.0 / engine_acc - 1.0;
            }
        }
        let traffic_overhead = if engines > 0.0 { waste / engines } else { 0.0 };

        PrefetchEffect {
            l1d_coverage: l1.min(0.85),
            l2_coverage: l2.min(0.85),
            llc_coverage: llc.min(0.85),
            traffic_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn affinity() -> PrefetchAffinity {
        PrefetchAffinity {
            sequential: 0.4,
            ip_stride: 0.2,
            accuracy: 0.5,
        }
    }

    #[test]
    fn sweep_has_five_distinct_configs() {
        let sweep = PrefetcherConfig::sweep();
        for i in 0..sweep.len() {
            for j in (i + 1)..sweep.len() {
                assert_ne!(sweep[i], sweep[j]);
            }
        }
        assert_eq!(sweep[0].label(), "all off");
        assert_eq!(sweep[1].label(), "all on");
        assert_eq!(sweep[4].to_string(), "L2 hardware & DCU on");
    }

    #[test]
    fn all_off_has_no_effect() {
        let e = PrefetchEffect::resolve(PrefetcherConfig::all_off(), &affinity());
        assert_eq!(e, PrefetchEffect::none());
    }

    #[test]
    fn all_on_maximizes_coverage_and_waste() {
        let aff = affinity();
        let all = PrefetchEffect::resolve(PrefetcherConfig::all_on(), &aff);
        for cfg in PrefetcherConfig::sweep() {
            let e = PrefetchEffect::resolve(cfg, &aff);
            assert!(e.l1d_coverage <= all.l1d_coverage + 1e-12);
            assert!(e.l2_coverage <= all.l2_coverage + 1e-12);
            assert!(e.llc_coverage <= all.llc_coverage + 1e-12);
        }
        assert!(all.traffic_overhead > 0.0);
    }

    #[test]
    fn dcu_only_covers_l1_not_l2() {
        let e = PrefetchEffect::resolve(PrefetcherConfig::dcu_only(), &affinity());
        assert!(e.l1d_coverage > 0.0);
        assert_eq!(e.l2_coverage, 0.0);
        assert_eq!(e.llc_coverage, 0.0);
    }

    #[test]
    fn stream_prefetcher_hides_memory_latency() {
        let with = PrefetchEffect::resolve(PrefetcherConfig::l2_and_dcu(), &affinity());
        let without = PrefetchEffect::resolve(PrefetcherConfig::dcu_only(), &affinity());
        assert!(with.llc_coverage > 0.0);
        assert_eq!(without.llc_coverage, 0.0);
    }

    #[test]
    fn low_accuracy_means_more_waste() {
        let mut sloppy = affinity();
        sloppy.accuracy = 0.2;
        let tight = PrefetchEffect::resolve(PrefetcherConfig::all_on(), &affinity());
        let loose = PrefetchEffect::resolve(PrefetcherConfig::all_on(), &sloppy);
        assert!(loose.traffic_overhead > tight.traffic_overhead);
    }

    #[test]
    fn coverage_scales_with_pattern_fraction() {
        let mut rand_heavy = affinity();
        rand_heavy.sequential = 0.05;
        rand_heavy.ip_stride = 0.02;
        let weak = PrefetchEffect::resolve(PrefetcherConfig::all_on(), &rand_heavy);
        let strong = PrefetchEffect::resolve(PrefetcherConfig::all_on(), &affinity());
        assert!(weak.l1d_coverage < strong.l1d_coverage);
        assert!(weak.llc_coverage < strong.llc_coverage);
    }
}
