//! Huge-page policy resolution: THP modes and statically-allocated huge
//! pages (SHPs).
//!
//! The paper's last two knobs (Sec. 5):
//!
//! * **THP** — the kernel transparently backs anonymous memory with 2 MiB
//!   pages. Three modes: `madvise` (production default — only regions that
//!   asked), `always`, `never`.
//! * **SHP** — hugetlbfs pages reserved at boot, explicitly requested via an
//!   API; at Facebook, Web maps its JIT code cache this way. Once reserved,
//!   SHP memory "can not be repurposed", so over-reservation costs the rest
//!   of the system memory (the interior sweet spot of Fig. 18b).
//!
//! [`PagePolicy::resolve`] turns (THP mode, SHP count, workload page traits,
//! platform THP success rate) into the effective huge-page coverage fractions
//! the TLB simulation uses, plus the memory-pressure penalty of any
//! over-reservation.

use crate::stream::PageProfile;

/// Bytes in a 2 MiB huge page.
pub const HUGE_PAGE_BYTES: u64 = 2 << 20;

/// Transparent Huge Page kernel modes (paper Sec. 5, knob 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum ThpMode {
    /// Huge pages only for regions that requested them — production default.
    #[default]
    Madvise,
    /// Huge pages for every eligible region.
    AlwaysOn,
    /// No transparent huge pages even when requested.
    NeverOn,
}

impl ThpMode {
    /// The three modes in sweep order.
    pub const ALL: [ThpMode; 3] = [ThpMode::Madvise, ThpMode::AlwaysOn, ThpMode::NeverOn];
}

impl std::fmt::Display for ThpMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ThpMode::Madvise => "madvise",
            ThpMode::AlwaysOn => "always",
            ThpMode::NeverOn => "never",
        };
        f.write_str(s)
    }
}

/// Platform-dependent THP behaviour.
///
/// Older kernels/fleets suffer allocation failures and fragmentation that
/// prevent `always`-mode THP from actually materializing huge pages — the
/// reproduction's model for why Web-on-Broadwell saw no THP win (Fig. 18a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThpPlatformTraits {
    /// Probability that a non-madvise region gets huge-page backing in
    /// `always` mode.
    pub background_success: f64,
    /// Probability that a madvise'd region gets huge-page backing.
    pub madvise_success: f64,
}

impl ThpPlatformTraits {
    /// A modern kernel with healthy compaction (Skylake fleet). Even here,
    /// always-on THP only materializes huge pages for part of the
    /// non-madvise heap — compaction races allocation under production
    /// churn.
    pub fn healthy() -> Self {
        ThpPlatformTraits {
            background_success: 0.45,
            madvise_success: 0.95,
        }
    }

    /// An older, fragmented fleet (Broadwell).
    pub fn fragmented() -> Self {
        ThpPlatformTraits {
            background_success: 0.15,
            madvise_success: 0.85,
        }
    }
}

/// Resolved page policy: what fraction of accesses see huge pages, and what
/// the SHP reservation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagePolicy {
    /// Fraction of data accesses backed by 2 MiB pages.
    pub huge_data_fraction: f64,
    /// Fraction of code accesses backed by 2 MiB pages.
    pub huge_code_fraction: f64,
    /// Relative increase in effective data-miss traffic caused by memory
    /// reserved-but-unused by the SHP pool (0 = no over-reservation).
    pub shp_pressure_penalty: f64,
    /// SHP pages actually consumed by the workload.
    pub shp_pages_used: u32,
}

impl PagePolicy {
    /// Resolves the policy for a workload with page traits `pages` under the
    /// given THP mode, SHP reservation, platform THP traits, and machine
    /// memory size.
    ///
    /// SHP pages back *code* (the Web JIT cache use case). Reserved pages
    /// beyond `pages.shp_target_bytes` are pure memory pressure. Workloads
    /// with `uses_shp == false` ignore the reservation entirely but still pay
    /// the pressure penalty (the memory is gone either way).
    pub fn resolve(
        pages: &PageProfile,
        thp: ThpMode,
        shp_pages: u32,
        thp_traits: ThpPlatformTraits,
        machine_memory_bytes: u64,
    ) -> Self {
        let huge_data_fraction = match thp {
            ThpMode::Madvise => pages.madvise_fraction * thp_traits.madvise_success,
            ThpMode::AlwaysOn => {
                pages.madvise_fraction * thp_traits.madvise_success
                    + (1.0 - pages.madvise_fraction) * thp_traits.background_success
            }
            ThpMode::NeverOn => 0.0,
        };

        // Code: SHP drives it when the service uses the API; THP-always can
        // also promote code-adjacent regions a little (file-backed text is
        // not THP-eligible, so the effect is small).
        let thp_code = match thp {
            ThpMode::AlwaysOn => 0.10 * thp_traits.background_success,
            _ => 0.0,
        };
        // Not all code is SHP-eligible: file-backed text and short-lived JIT
        // regions stay on 4 KiB pages no matter how large the pool is.
        const SHP_COVERAGE_CAP: f64 = 0.75;
        let (shp_code, used, excess_bytes) = if pages.uses_shp && shp_pages > 0 {
            let reserved = shp_pages as u64 * HUGE_PAGE_BYTES;
            let needed = pages.shp_target_bytes;
            let used_bytes = reserved.min(needed);
            let coverage = used_bytes as f64 / needed.max(1) as f64 * SHP_COVERAGE_CAP;
            let used_pages = (used_bytes / HUGE_PAGE_BYTES) as u32;
            (coverage, used_pages, reserved.saturating_sub(needed))
        } else {
            // The reservation still removes memory from the system.
            let reserved = shp_pages as u64 * HUGE_PAGE_BYTES;
            (0.0, 0, reserved)
        };
        let huge_code_fraction = (thp_code + shp_code).min(1.0);

        // Over-reserved memory shrinks the page cache / slab headroom; model
        // as a proportional bump in data-miss traffic.
        let shp_pressure_penalty = excess_bytes as f64 / machine_memory_bytes.max(1) as f64;

        PagePolicy {
            huge_data_fraction: huge_data_fraction.clamp(0.0, 1.0),
            huge_code_fraction,
            shp_pressure_penalty,
            shp_pages_used: used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web_pages() -> PageProfile {
        PageProfile {
            data_compaction: 12.0,
            code_compaction: 128.0,
            madvise_fraction: 0.25,
            uses_shp: true,
            shp_target_bytes: 300 * HUGE_PAGE_BYTES,
        }
    }

    const MEM: u64 = 64 << 30;

    #[test]
    fn thp_modes_order_data_coverage() {
        let p = web_pages();
        let t = ThpPlatformTraits::healthy();
        let never = PagePolicy::resolve(&p, ThpMode::NeverOn, 0, t, MEM);
        let madv = PagePolicy::resolve(&p, ThpMode::Madvise, 0, t, MEM);
        let always = PagePolicy::resolve(&p, ThpMode::AlwaysOn, 0, t, MEM);
        assert_eq!(never.huge_data_fraction, 0.0);
        assert!(madv.huge_data_fraction > 0.0);
        assert!(always.huge_data_fraction > madv.huge_data_fraction);
    }

    #[test]
    fn fragmented_platform_mutes_always_mode() {
        let p = web_pages();
        let healthy =
            PagePolicy::resolve(&p, ThpMode::AlwaysOn, 0, ThpPlatformTraits::healthy(), MEM);
        let frag = PagePolicy::resolve(
            &p,
            ThpMode::AlwaysOn,
            0,
            ThpPlatformTraits::fragmented(),
            MEM,
        );
        assert!(frag.huge_data_fraction < 0.65 * healthy.huge_data_fraction);
    }

    #[test]
    fn shp_coverage_saturates_at_target() {
        let p = web_pages();
        let t = ThpPlatformTraits::healthy();
        let half = PagePolicy::resolve(&p, ThpMode::Madvise, 150, t, MEM);
        let full = PagePolicy::resolve(&p, ThpMode::Madvise, 300, t, MEM);
        let over = PagePolicy::resolve(&p, ThpMode::Madvise, 600, t, MEM);
        assert!((half.huge_code_fraction - 0.375).abs() < 1e-9);
        assert!((full.huge_code_fraction - 0.75).abs() < 1e-9);
        assert!((over.huge_code_fraction - 0.75).abs() < 1e-9);
        assert_eq!(full.shp_pressure_penalty, 0.0);
        assert!(
            over.shp_pressure_penalty > 0.0,
            "over-reservation must cost"
        );
        assert_eq!(over.shp_pages_used, 300);
    }

    #[test]
    fn non_shp_service_ignores_reservation_but_pays() {
        let mut p = web_pages();
        p.uses_shp = false; // Ads1-like
        let t = ThpPlatformTraits::healthy();
        let policy = PagePolicy::resolve(&p, ThpMode::Madvise, 400, t, MEM);
        assert_eq!(policy.huge_code_fraction, 0.0);
        assert_eq!(policy.shp_pages_used, 0);
        assert!(policy.shp_pressure_penalty > 0.0);
    }

    #[test]
    fn thp_mode_display_and_all() {
        let names: Vec<String> = ThpMode::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, vec!["madvise", "always", "never"]);
        assert_eq!(ThpMode::default(), ThpMode::Madvise);
    }
}
