//! Memory bandwidth/latency model.
//!
//! Paper Fig. 12 characterizes each platform with a stress test: loaded
//! latency sits on a horizontal asymptote at the unloaded latency and grows
//! exponentially as bandwidth approaches saturation. The model uses the
//! standard single-queue loaded-latency form
//!
//! ```text
//! latency(ρ) = unloaded + q · ρ / (1 − ρ),   ρ = bw / peak
//! ```
//!
//! with `q` the queueing scale. Uncore frequency scales both the unloaded
//! latency (cache/controller portion) and the achievable peak bandwidth,
//! which is what makes the uncore-frequency knob (Fig. 14b) matter more for
//! memory-latency-sensitive services. Bursty services (Ads1/Ads2) see an
//! *effective* utilization above their average bandwidth, placing their
//! operating points above the smooth curve exactly as in Fig. 12.

use crate::platform::PlatformSpec;

/// Loaded-latency model for one platform at one uncore frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    unloaded_ns: f64,
    peak_gbps: f64,
    queue_scale_ns: f64,
}

impl MemoryModel {
    /// Fraction of the unloaded latency attributable to the uncore domain
    /// (LLC slice traversal + memory controller), which scales with uncore
    /// frequency; the DRAM array portion does not.
    const UNCORE_LATENCY_SHARE: f64 = 0.45;

    /// Queueing scale as a fraction of unloaded latency.
    const QUEUE_SHARE: f64 = 0.35;

    /// Exponent of peak-bandwidth sensitivity to uncore frequency (the
    /// controller must keep up, but channels impose the hard ceiling).
    const BW_UNCORE_EXPONENT: f64 = 0.5;

    /// Builds the model for `spec` at `uncore_ghz`.
    ///
    /// Assumes the frequency was already validated against the platform
    /// range (the engine validates the whole config up front).
    pub fn new(spec: &PlatformSpec, uncore_ghz: f64) -> Self {
        let (_, nominal) = spec.uncore_freq_range_ghz;
        let ratio = uncore_ghz / nominal;
        let uncore_part = spec.mem_unloaded_latency_ns * Self::UNCORE_LATENCY_SHARE;
        let dram_part = spec.mem_unloaded_latency_ns - uncore_part;
        let unloaded_ns = dram_part + uncore_part / ratio;
        let peak_gbps = spec.mem_peak_bw_gbps * ratio.powf(Self::BW_UNCORE_EXPONENT);
        MemoryModel {
            unloaded_ns,
            peak_gbps,
            queue_scale_ns: unloaded_ns * Self::QUEUE_SHARE,
        }
    }

    /// Unloaded (idle) latency in nanoseconds.
    pub fn unloaded_latency_ns(&self) -> f64 {
        self.unloaded_ns
    }

    /// Saturation bandwidth in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak_gbps
    }

    /// Loaded latency at `bw_gbps` average bandwidth with traffic
    /// burstiness factor `burstiness` (≥ 1).
    ///
    /// Utilization is clamped at 0.995 — beyond that the platform simply
    /// cannot deliver the offered load and the engine's fixed point will
    /// settle at the bandwidth ceiling instead.
    pub fn loaded_latency_ns(&self, bw_gbps: f64, burstiness: f64) -> f64 {
        let rho = (bw_gbps.max(0.0) * burstiness.max(1.0) / self.peak_gbps).min(0.995);
        self.unloaded_ns + self.queue_scale_ns * rho / (1.0 - rho)
    }

    /// Utilization fraction for an offered average bandwidth.
    pub fn utilization(&self, bw_gbps: f64) -> f64 {
        (bw_gbps / self.peak_gbps).max(0.0)
    }

    /// The bandwidth the platform can actually deliver for an offered load
    /// (ceilinged at 98 % of peak).
    pub fn deliverable_bandwidth_gbps(&self, offered_gbps: f64) -> f64 {
        offered_gbps.min(0.98 * self.peak_gbps)
    }

    /// Generates the characteristic stress-test curve: `(bw, latency)` pairs
    /// from idle to saturation, as plotted in Fig. 12.
    pub fn stress_curve(&self, points: usize) -> Vec<(f64, f64)> {
        (0..points)
            .map(|i| {
                let bw = self.peak_gbps * 0.98 * i as f64 / (points.max(2) - 1) as f64;
                (bw, self.loaded_latency_ns(bw, 1.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    fn nominal(spec: &PlatformSpec) -> MemoryModel {
        MemoryModel::new(spec, spec.uncore_freq_range_ghz.1)
    }

    #[test]
    fn nominal_matches_spec() {
        let spec = PlatformSpec::skylake18();
        let m = nominal(&spec);
        assert!((m.unloaded_latency_ns() - spec.mem_unloaded_latency_ns).abs() < 1e-9);
        assert!((m.peak_bandwidth_gbps() - spec.mem_peak_bw_gbps).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_convexly_with_load() {
        let m = nominal(&PlatformSpec::skylake18());
        let l0 = m.loaded_latency_ns(0.0, 1.0);
        let l50 = m.loaded_latency_ns(m.peak_bandwidth_gbps() * 0.5, 1.0);
        let l90 = m.loaded_latency_ns(m.peak_bandwidth_gbps() * 0.9, 1.0);
        assert!(l0 < l50 && l50 < l90);
        // Convexity: the second half must grow much faster.
        assert!((l90 - l50) > 3.0 * (l50 - l0));
        // Near-saturation latency is several times unloaded (Fig. 12 shape).
        assert!(l90 > 2.0 * l0);
    }

    #[test]
    fn lower_uncore_frequency_raises_latency_and_cuts_peak() {
        let spec = PlatformSpec::skylake18();
        let fast = MemoryModel::new(&spec, 1.8);
        let slow = MemoryModel::new(&spec, 1.4);
        assert!(slow.unloaded_latency_ns() > fast.unloaded_latency_ns());
        assert!(slow.peak_bandwidth_gbps() < fast.peak_bandwidth_gbps());
        // The penalty is bounded: only the uncore share scales.
        assert!(slow.unloaded_latency_ns() < fast.unloaded_latency_ns() * 1.25);
    }

    #[test]
    fn burstiness_moves_point_above_curve() {
        let m = nominal(&PlatformSpec::skylake20());
        let bw = m.peak_bandwidth_gbps() * 0.5;
        let smooth = m.loaded_latency_ns(bw, 1.0);
        let bursty = m.loaded_latency_ns(bw, 1.5);
        assert!(bursty > smooth * 1.1, "bursty {bursty} vs smooth {smooth}");
    }

    #[test]
    fn utilization_clamps() {
        let m = nominal(&PlatformSpec::broadwell16());
        let lat = m.loaded_latency_ns(10.0 * m.peak_bandwidth_gbps(), 1.0);
        assert!(lat.is_finite());
        assert!(m.deliverable_bandwidth_gbps(1e9) <= m.peak_bandwidth_gbps());
    }

    #[test]
    fn stress_curve_is_monotone() {
        let m = nominal(&PlatformSpec::skylake18());
        let curve = m.stress_curve(32);
        assert_eq!(curve.len(), 32);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn skylake20_outclasses_skylake18_bandwidth() {
        let s18 = nominal(&PlatformSpec::skylake18());
        let s20 = nominal(&PlatformSpec::skylake20());
        // The paper runs Cache1/Ads2 on Skylake20 "to keep memory latency
        // low": at equal absolute bandwidth, Skylake20 must be less loaded.
        let bw = 80.0;
        assert!(s20.loaded_latency_ns(bw, 1.0) < s18.loaded_latency_ns(bw, 1.0) + 20.0);
    }
}
