//! Error types for the architecture simulator.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchSimError {
    /// A cache/TLB geometry parameter was invalid (zero ways, non-power-of-two
    /// sets, etc.).
    InvalidGeometry(String),
    /// A CDP partition did not match the LLC way count or starved one side.
    InvalidCdpPartition {
        /// Ways assigned to data.
        data_ways: u32,
        /// Ways assigned to code.
        code_ways: u32,
        /// Ways the LLC actually has.
        total_ways: u32,
    },
    /// A frequency outside the platform's supported range was requested.
    FrequencyOutOfRange {
        /// Requested frequency in GHz.
        requested_ghz: f64,
        /// Supported minimum in GHz.
        min_ghz: f64,
        /// Supported maximum in GHz.
        max_ghz: f64,
    },
    /// An active-core count outside `[1, cores]` was requested.
    CoreCountOutOfRange {
        /// Requested number of active physical cores.
        requested: u32,
        /// Cores physically present.
        available: u32,
    },
    /// A probability / fraction parameter fell outside `[0, 1]`.
    InvalidFraction {
        /// Name of the offending parameter.
        name: String,
        /// Offending value.
        value: f64,
    },
    /// A reuse-distance distribution had no components or bad weights.
    InvalidDistribution(String),
    /// The engine's bandwidth/latency fixed point failed to converge.
    FixedPointDiverged {
        /// Iterations attempted.
        iterations: u32,
    },
}

impl fmt::Display for ArchSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchSimError::InvalidGeometry(why) => write!(f, "invalid geometry: {why}"),
            ArchSimError::InvalidCdpPartition {
                data_ways,
                code_ways,
                total_ways,
            } => write!(
                f,
                "invalid CDP partition {{data: {data_ways}, code: {code_ways}}} for an LLC with {total_ways} ways"
            ),
            ArchSimError::FrequencyOutOfRange {
                requested_ghz,
                min_ghz,
                max_ghz,
            } => write!(
                f,
                "frequency {requested_ghz} GHz outside supported range [{min_ghz}, {max_ghz}] GHz"
            ),
            ArchSimError::CoreCountOutOfRange { requested, available } => write!(
                f,
                "active core count {requested} outside [1, {available}]"
            ),
            ArchSimError::InvalidFraction { name, value } => {
                write!(f, "parameter {name} = {value} outside [0, 1]")
            }
            ArchSimError::InvalidDistribution(why) => {
                write!(f, "invalid reuse-distance distribution: {why}")
            }
            ArchSimError::FixedPointDiverged { iterations } => write!(
                f,
                "bandwidth/latency fixed point did not converge after {iterations} iterations"
            ),
        }
    }
}

impl Error for ArchSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_nonempty() {
        let errs = vec![
            ArchSimError::InvalidGeometry("zero ways".into()),
            ArchSimError::InvalidCdpPartition {
                data_ways: 0,
                code_ways: 11,
                total_ways: 11,
            },
            ArchSimError::FrequencyOutOfRange {
                requested_ghz: 9.9,
                min_ghz: 1.6,
                max_ghz: 2.2,
            },
            ArchSimError::CoreCountOutOfRange {
                requested: 99,
                available: 18,
            },
            ArchSimError::InvalidFraction {
                name: "taken_rate".into(),
                value: 1.5,
            },
            ArchSimError::InvalidDistribution("empty mixture".into()),
            ArchSimError::FixedPointDiverged { iterations: 64 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_impls_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(ArchSimError::FixedPointDiverged { iterations: 1 });
    }
}
