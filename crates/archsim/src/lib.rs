//! Calibrated server-architecture simulator for the SoftSKU reproduction.
//!
//! The paper measures seven Facebook microservices on Intel Skylake and
//! Broadwell servers and then tunes seven coarse-grain hardware/OS knobs via
//! A/B testing (µSKU). This crate is the hardware those experiments need:
//!
//! * [`platform`] — the three server platforms of Table 1.
//! * [`reuse`] + [`trace`] — synthetic address/instruction streams generated
//!   from calibrated reuse-distance distributions.
//! * [`cache`] — set-associative caches with CAT way-masking and CDP
//!   code/data partitioning.
//! * [`tlb`] — multi-page-size ITLB/DTLB/STLB hierarchy.
//! * [`branch`] — direction + BTB-aliasing branch model.
//! * [`prefetch`] — the four Intel prefetchers and their bandwidth/latency
//!   trade-off.
//! * [`memory`] — the loaded-latency curve of Fig. 12.
//! * [`pagemap`] — THP modes and SHP reservations.
//! * [`engine`] — the window simulator with its bandwidth↔latency fixed
//!   point, producing [`counters::Counters`] and a [`tmam::TmamBreakdown`].
//!
//! # Example
//!
//! ```
//! use softsku_archsim::engine::{Engine, ServerConfig};
//! use softsku_archsim::platform::PlatformSpec;
//! use softsku_archsim::reuse::ReuseDistanceDist;
//! use softsku_archsim::stream::*;
//!
//! # fn main() -> Result<(), softsku_archsim::ArchSimError> {
//! let line = ReuseDistanceDist::single_knee(512, 0.10, 0.005, 1 << 20)?;
//! let page = ReuseDistanceDist::single_knee(48, 0.02, 0.002, 1 << 14)?;
//! let spec = StreamSpec {
//!     name: "demo".into(),
//!     mix: InstructionMix::new(0.20, 0.0, 0.31, 0.36, 0.13)?,
//!     code_reuse: line.clone(),
//!     data_reuse: line,
//!     code_page_reuse: page.clone(),
//!     data_page_reuse: page,
//!     branch: BranchProfile { taken_rate: 0.6, base_mispredict: 0.02, branch_working_set: 2000 },
//!     prefetch: PrefetchAffinity::modest(),
//!     pages: PageProfile {
//!         data_compaction: 32.0,
//!         code_compaction: 128.0,
//!         madvise_fraction: 0.25,
//!         uses_shp: false,
//!         shp_target_bytes: 0,
//!     },
//!     context_switch: ContextSwitchProfile::quiet(),
//!     mlp: 3.0,
//!     smt_gain: 0.25,
//!     base_cpi_scale: 1.0,
//!     writeback_factor: 0.4,
//!     burstiness: 1.0,
//!     llc_contention: 0.3,
//!     natural_code_llc_share: 0.35,
//!     extra_mem_lines_per_ki: 0.0,
//!     extra_traffic_prefetch_fraction: 0.3,
//!     frontend_exposure: 0.6,
//! };
//! let engine = Engine::new(ServerConfig::stock(PlatformSpec::skylake18()), spec, 42)?;
//! let report = engine.run_window(50_000, 1.0)?;
//! assert!(report.ipc_core > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod counters;
pub mod engine;
pub mod error;
pub mod memory;
pub mod pagemap;
pub mod platform;
pub mod prefetch;
pub mod ranklist;
pub mod reuse;
pub mod stream;
pub mod tlb;
pub mod tmam;
pub mod trace;

pub use cache::CdpPartition;
pub use counters::Counters;
pub use engine::{Engine, ServerConfig, WindowReport};
pub use error::ArchSimError;
pub use pagemap::ThpMode;
pub use platform::{PlatformKind, PlatformSpec};
pub use prefetch::PrefetcherConfig;
pub use stream::StreamSpec;
pub use tmam::TmamBreakdown;
