//! Raw performance-counter state produced by a simulation window.
//!
//! These are the "hardware events" the EMON-like sampler exposes to µSKU:
//! everything downstream (MPKI, IPC, TMAM, bandwidth) is derived from this
//! struct exactly the way the paper derives its metrics from counters.

use std::collections::BTreeMap;

/// Event counts accumulated over one simulation window.
///
/// All counts are per simulated hardware thread unless noted. Passive data:
/// fields are public by design (this is the C-style "compound data" case).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Counters {
    /// Retired instructions.
    pub instructions: u64,
    /// Core cycles consumed (set by the CPI model).
    pub cycles: f64,

    /// Instruction fetch lookups (one per instruction in this model).
    pub code_accesses: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// Code misses at L2 (went to LLC).
    pub l2_code_misses: u64,
    /// Code misses at LLC (went to memory).
    pub llc_code_misses: u64,

    /// Data accesses (loads + stores).
    pub data_accesses: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// Data misses at L2.
    pub l2_data_misses: u64,
    /// Data misses at LLC.
    pub llc_data_misses: u64,

    /// ITLB first-level misses.
    pub itlb_misses: u64,
    /// ITLB misses that also missed the STLB (page walks).
    pub itlb_walks: u64,
    /// DTLB first-level misses.
    pub dtlb_misses: u64,
    /// DTLB misses attributable to loads.
    pub dtlb_load_misses: u64,
    /// DTLB misses attributable to stores.
    pub dtlb_store_misses: u64,
    /// DTLB misses that also missed the STLB (page walks).
    pub dtlb_walks: u64,

    /// Branch instructions retired.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// BTB misses (subset of mispredicts).
    pub btb_misses: u64,

    /// Floating-point instructions retired.
    pub fp_ops: u64,

    /// Context switches charged to the window.
    pub context_switches: f64,

    /// Demand lines fetched from memory (code + data after prefetch
    /// coverage).
    pub mem_demand_lines: f64,
    /// Prefetch lines fetched from memory (useful + wasted).
    pub mem_prefetch_lines: f64,
    /// Writeback lines to memory.
    pub mem_writeback_lines: f64,
    /// Non-core memory traffic (NIC/storage DMA, kernel I/O, walk refills).
    pub mem_extra_lines: f64,
}

impl Counters {
    /// Misses per kilo-instruction for an event count.
    pub fn mpki(&self, count: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// L1-I code MPKI.
    pub fn l1i_code_mpki(&self) -> f64 {
        self.mpki(self.l1i_misses)
    }

    /// L1-D data MPKI.
    pub fn l1d_data_mpki(&self) -> f64 {
        self.mpki(self.l1d_misses)
    }

    /// L2 code MPKI.
    pub fn l2_code_mpki(&self) -> f64 {
        self.mpki(self.l2_code_misses)
    }

    /// L2 data MPKI.
    pub fn l2_data_mpki(&self) -> f64 {
        self.mpki(self.l2_data_misses)
    }

    /// LLC code MPKI.
    pub fn llc_code_mpki(&self) -> f64 {
        self.mpki(self.llc_code_misses)
    }

    /// LLC data MPKI.
    pub fn llc_data_mpki(&self) -> f64 {
        self.mpki(self.llc_data_misses)
    }

    /// ITLB MPKI (first-level misses).
    pub fn itlb_mpki(&self) -> f64 {
        self.mpki(self.itlb_misses)
    }

    /// DTLB load MPKI.
    pub fn dtlb_load_mpki(&self) -> f64 {
        self.mpki(self.dtlb_load_misses)
    }

    /// DTLB store MPKI.
    pub fn dtlb_store_mpki(&self) -> f64 {
        self.mpki(self.dtlb_store_misses)
    }

    /// Branch misprediction rate (per branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Total memory-interface lines (demand + prefetch + writeback + DMA).
    pub fn mem_total_lines(&self) -> f64 {
        self.mem_demand_lines
            + self.mem_prefetch_lines
            + self.mem_writeback_lines
            + self.mem_extra_lines
    }

    /// Merges another window's counts into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.code_accesses += other.code_accesses;
        self.l1i_misses += other.l1i_misses;
        self.l2_code_misses += other.l2_code_misses;
        self.llc_code_misses += other.llc_code_misses;
        self.data_accesses += other.data_accesses;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1d_misses += other.l1d_misses;
        self.l2_data_misses += other.l2_data_misses;
        self.llc_data_misses += other.llc_data_misses;
        self.itlb_misses += other.itlb_misses;
        self.itlb_walks += other.itlb_walks;
        self.dtlb_misses += other.dtlb_misses;
        self.dtlb_load_misses += other.dtlb_load_misses;
        self.dtlb_store_misses += other.dtlb_store_misses;
        self.dtlb_walks += other.dtlb_walks;
        self.branches += other.branches;
        self.branch_mispredicts += other.branch_mispredicts;
        self.btb_misses += other.btb_misses;
        self.fp_ops += other.fp_ops;
        self.context_switches += other.context_switches;
        self.mem_demand_lines += other.mem_demand_lines;
        self.mem_prefetch_lines += other.mem_prefetch_lines;
        self.mem_writeback_lines += other.mem_writeback_lines;
        self.mem_extra_lines += other.mem_extra_lines;
    }

    /// Exposes the counters as named event rates, the oracle interface the
    /// EMON-like sampler consumes.
    pub fn event_map(&self) -> BTreeMap<&'static str, f64> {
        let mut m = BTreeMap::new();
        m.insert("instructions", self.instructions as f64);
        m.insert("cycles", self.cycles);
        m.insert("l1i_miss", self.l1i_misses as f64);
        m.insert("l1d_miss", self.l1d_misses as f64);
        m.insert("l2_code_miss", self.l2_code_misses as f64);
        m.insert("l2_data_miss", self.l2_data_misses as f64);
        m.insert("llc_code_miss", self.llc_code_misses as f64);
        m.insert("llc_data_miss", self.llc_data_misses as f64);
        m.insert("itlb_miss", self.itlb_misses as f64);
        m.insert("dtlb_miss", self.dtlb_misses as f64);
        m.insert("branches", self.branches as f64);
        m.insert("branch_mispredicts", self.branch_mispredicts as f64);
        m.insert("fp_ops", self.fp_ops as f64);
        m.insert("mem_lines", self.mem_total_lines());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counters {
        Counters {
            instructions: 10_000,
            cycles: 20_000.0,
            l1i_misses: 500,
            l2_code_misses: 100,
            llc_code_misses: 17,
            l1d_misses: 300,
            llc_data_misses: 50,
            branches: 2_000,
            branch_mispredicts: 100,
            ..Counters::default()
        }
    }

    #[test]
    fn derived_metrics() {
        let c = sample();
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.l1i_code_mpki() - 50.0).abs() < 1e-12);
        assert!((c.llc_code_mpki() - 1.7).abs() < 1e-12);
        assert!((c.mispredict_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_instruction_window_is_safe() {
        let c = Counters::default();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.mpki(100), 0.0);
        assert_eq!(c.mispredict_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.instructions, 20_000);
        assert_eq!(a.l1i_misses, 1_000);
        assert!(
            (a.ipc() - 0.5).abs() < 1e-12,
            "ratios preserved under merge"
        );
    }

    #[test]
    fn event_map_has_core_events() {
        let m = sample().event_map();
        for key in ["instructions", "cycles", "llc_code_miss", "mem_lines"] {
            assert!(m.contains_key(key), "missing {key}");
        }
        assert_eq!(m["instructions"], 10_000.0);
    }
}
