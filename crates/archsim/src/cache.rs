//! Set-associative cache structures with CAT way-masking and CDP
//! code/data partitioning.
//!
//! The knob experiments require *structural* cache models, not just miss
//! curves: Intel Cache Allocation Technology (CAT) enables a subset of LLC
//! ways (Fig. 10's capacity sweep) and Code/Data Prioritization (CDP) splits
//! the enabled ways between instruction and data fills (Fig. 16). Both
//! manipulate ways, so the simulator models caches as per-set LRU way
//! arrays.

use crate::error::ArchSimError;
use crate::platform::CacheGeometry;

/// Which hierarchy level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level cache (L1I or L1D, depending on the stream).
    L1,
    /// Private unified L2.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Main memory.
    Memory,
}

/// Replacement policy for a set-associative cache.
///
/// The engine uses true LRU (the policy the reuse-distance calibration is
/// exact for). Tree-PLRU — what real L1/L2 arrays implement — is provided
/// for replacement-policy studies; it requires a power-of-two way count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree pseudo-LRU (binary decision tree over the ways).
    TreePlru,
}

/// A set-associative cache with per-set LRU or tree-PLRU replacement.
///
/// # Example
///
/// ```
/// use softsku_archsim::cache::SetAssocCache;
///
/// let mut cache = SetAssocCache::new(64, 8).unwrap(); // 64 sets × 8 ways
/// assert!(!cache.access(42)); // cold miss
/// assert!(cache.access(42)); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: u64,
    ways: u32,
    replacement: Replacement,
    /// Per-set tag vectors. For LRU: recency order (front = MRU). For
    /// tree-PLRU: fixed way slots (`u64::MAX` = invalid).
    lines: Vec<Vec<u64>>,
    /// Tree-PLRU decision bits per set (unused for LRU).
    plru_bits: Vec<u32>,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` ways and LRU replacement.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidGeometry`] if either dimension is zero.
    pub fn new(sets: u64, ways: u32) -> Result<Self, ArchSimError> {
        Self::with_replacement(sets, ways, Replacement::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidGeometry`] if either dimension is zero, or if
    /// tree-PLRU is requested with a non-power-of-two way count.
    pub fn with_replacement(
        sets: u64,
        ways: u32,
        replacement: Replacement,
    ) -> Result<Self, ArchSimError> {
        if sets == 0 || ways == 0 {
            return Err(ArchSimError::InvalidGeometry(format!(
                "cache needs nonzero sets and ways, got {sets}x{ways}"
            )));
        }
        if replacement == Replacement::TreePlru && !ways.is_power_of_two() {
            return Err(ArchSimError::InvalidGeometry(format!(
                "tree-PLRU needs a power-of-two way count, got {ways}"
            )));
        }
        let lines = match replacement {
            Replacement::Lru => vec![Vec::with_capacity(ways as usize); sets as usize],
            Replacement::TreePlru => vec![vec![u64::MAX; ways as usize]; sets as usize],
        };
        Ok(SetAssocCache {
            sets,
            ways,
            replacement,
            lines,
            plru_bits: vec![0; sets as usize],
            accesses: 0,
            misses: 0,
        })
    }

    /// The replacement policy in effect.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Builds a cache from a platform [`CacheGeometry`], optionally enabling
    /// only `ways_enabled` of its ways (CAT) and scaling capacity by
    /// `capacity_scale` (multi-core contention share).
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidGeometry`] when `ways_enabled` is zero or
    /// exceeds the geometry, or `capacity_scale` is not in `(0, 1]`.
    pub fn from_geometry(
        geom: &CacheGeometry,
        ways_enabled: u32,
        capacity_scale: f64,
    ) -> Result<Self, ArchSimError> {
        if ways_enabled == 0 || ways_enabled > geom.ways {
            return Err(ArchSimError::InvalidGeometry(format!(
                "{} of {} ways enabled",
                ways_enabled, geom.ways
            )));
        }
        if !(capacity_scale > 0.0 && capacity_scale <= 1.0) {
            return Err(ArchSimError::InvalidGeometry(format!(
                "capacity scale {capacity_scale} outside (0, 1]"
            )));
        }
        let sets = ((geom.sets() as f64 * capacity_scale).round() as u64).max(1);
        Self::new(sets, ways_enabled)
    }

    /// Looks up `line`, updating recency and filling on miss. Returns `true`
    /// on hit.
    pub fn access(&mut self, line: u64) -> bool {
        self.accesses += 1;
        let set = (mix64(line) % self.sets) as usize;
        match self.replacement {
            Replacement::Lru => {
                let ways = &mut self.lines[set];
                if let Some(pos) = ways.iter().position(|&t| t == line) {
                    // Move to MRU.
                    let tag = ways.remove(pos);
                    ways.insert(0, tag);
                    true
                } else {
                    self.misses += 1;
                    if ways.len() == self.ways as usize {
                        ways.pop();
                    }
                    ways.insert(0, line);
                    false
                }
            }
            Replacement::TreePlru => self.access_plru(set, line),
        }
    }

    /// Tree-PLRU lookup: on a hit (or fill) the decision bits along the
    /// way's root-to-leaf path are flipped to point *away* from it; the
    /// victim is found by following the bits from the root.
    fn access_plru(&mut self, set: usize, line: u64) -> bool {
        let ways = self.ways as usize;
        if let Some(pos) = self.lines[set].iter().position(|&t| t == line) {
            self.plru_touch(set, pos);
            return true;
        }
        self.misses += 1;
        // Prefer an invalid slot before evicting.
        let victim = match self.lines[set].iter().position(|&t| t == u64::MAX) {
            Some(empty) => empty,
            None => self.plru_victim(set),
        };
        self.lines[set][victim] = line;
        self.plru_touch(set, victim);
        let _ = ways;
        false
    }

    /// Follows the decision bits from the root to the PLRU victim way.
    fn plru_victim(&self, set: usize) -> usize {
        let mut node = 0usize; // root of the implicit binary tree
        let mut lo = 0usize;
        let mut hi = self.ways as usize;
        let bits = self.plru_bits[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) == 0 {
                hi = mid;
                node = 2 * node + 1;
            } else {
                lo = mid;
                node = 2 * node + 2;
            }
        }
        lo
    }

    /// Flips the path bits so they point away from `way`.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.ways as usize;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed the left half: point the bit right.
                self.plru_bits[set] |= 1 << node;
                hi = mid;
                node = 2 * node + 1;
            } else {
                self.plru_bits[set] &= !(1 << node);
                lo = mid;
                node = 2 * node + 2;
            }
        }
    }

    /// Invalidates a random `fraction` of resident lines (context-switch
    /// pollution). Deterministic: drops the LRU tail of each set.
    pub fn flush_fraction(&mut self, fraction: f64) {
        let fraction = fraction.clamp(0.0, 1.0);
        match self.replacement {
            Replacement::Lru => {
                for ways in &mut self.lines {
                    let keep = ((ways.len() as f64) * (1.0 - fraction)).floor() as usize;
                    ways.truncate(keep);
                }
            }
            Replacement::TreePlru => {
                // Invalidate a prefix of each set's way slots.
                let drop = ((self.ways as f64) * fraction).round() as usize;
                for ways in &mut self.lines {
                    for slot in ways.iter_mut().take(drop) {
                        *slot = u64::MAX;
                    }
                }
            }
        }
    }

    /// Total lookups so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio so far (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Number of enabled ways.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Resets the hit/miss statistics without touching contents (used to
    /// discard warm-up).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }
}

/// Avalanching 64-bit hash (splitmix64 finalizer) used for set indexing, so
/// sequential line ids spread uniformly over sets.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A CDP partition of the LLC's enabled ways (paper Sec. 5, knob 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CdpPartition {
    /// Ways dedicated to data fills.
    pub data_ways: u32,
    /// Ways dedicated to code fills.
    pub code_ways: u32,
}

impl CdpPartition {
    /// Creates a partition, checking both sides are nonzero and the total
    /// matches `total_ways` (the paper sweeps {1, N−1} … {N−1, 1}).
    ///
    /// # Errors
    ///
    /// [`ArchSimError::InvalidCdpPartition`] on mismatch or a starved side.
    pub fn new(data_ways: u32, code_ways: u32, total_ways: u32) -> Result<Self, ArchSimError> {
        if data_ways == 0 || code_ways == 0 || data_ways + code_ways != total_ways {
            return Err(ArchSimError::InvalidCdpPartition {
                data_ways,
                code_ways,
                total_ways,
            });
        }
        Ok(CdpPartition {
            data_ways,
            code_ways,
        })
    }

    /// Every valid partition of `total_ways` in the paper's sweep order
    /// ({1, N−1} … {N−1, 1}, labelled {data, code}).
    pub fn sweep(total_ways: u32) -> Vec<CdpPartition> {
        (1..total_ways)
            .map(|data| CdpPartition {
                data_ways: data,
                code_ways: total_ways - data,
            })
            .collect()
    }
}

impl std::fmt::Display for CdpPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}, {}}}", self.data_ways, self.code_ways)
    }
}

/// The shared last-level cache, either unified or CDP-partitioned.
#[derive(Debug, Clone)]
pub enum SharedLlc {
    /// Code and data share all enabled ways (production default).
    Unified(SetAssocCache),
    /// Code and data fill disjoint way groups.
    Partitioned {
        /// Data-side partition.
        data: SetAssocCache,
        /// Code-side partition.
        code: SetAssocCache,
    },
}

impl SharedLlc {
    /// Builds the LLC for `geom` with `ways_enabled` CAT-enabled ways,
    /// optional CDP partition, and a contention capacity scale.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors; rejects partitions that do not sum to the
    /// enabled way count.
    pub fn build(
        geom: &CacheGeometry,
        ways_enabled: u32,
        cdp: Option<CdpPartition>,
        capacity_scale: f64,
    ) -> Result<Self, ArchSimError> {
        match cdp {
            None => Ok(SharedLlc::Unified(SetAssocCache::from_geometry(
                geom,
                ways_enabled,
                capacity_scale,
            )?)),
            Some(p) => {
                if p.data_ways + p.code_ways != ways_enabled {
                    return Err(ArchSimError::InvalidCdpPartition {
                        data_ways: p.data_ways,
                        code_ways: p.code_ways,
                        total_ways: ways_enabled,
                    });
                }
                let data = SetAssocCache::from_geometry(geom, p.data_ways, capacity_scale)?;
                let code = SetAssocCache::from_geometry(geom, p.code_ways, capacity_scale)?;
                Ok(SharedLlc::Partitioned { data, code })
            }
        }
    }

    /// Builds an LLC that models the *natural competitive split* between the
    /// code and data streams under shared LRU: each side gets a
    /// capacity-scaled partition with the full enabled associativity. The
    /// CDP knob replaces this competitive split with an enforced way split
    /// (see [`SharedLlc::build`] with `Some(partition)`).
    ///
    /// # Errors
    ///
    /// Propagates geometry errors; `code_share` must lie in `(0, 1)`.
    pub fn natural_split(
        geom: &CacheGeometry,
        ways_enabled: u32,
        code_share: f64,
        capacity_scale: f64,
    ) -> Result<Self, ArchSimError> {
        if !(code_share > 0.0 && code_share < 1.0) {
            return Err(ArchSimError::InvalidFraction {
                name: "code_share".to_string(),
                value: code_share,
            });
        }
        let code = SetAssocCache::from_geometry(geom, ways_enabled, capacity_scale * code_share)?;
        let data =
            SetAssocCache::from_geometry(geom, ways_enabled, capacity_scale * (1.0 - code_share))?;
        Ok(SharedLlc::Partitioned { data, code })
    }

    /// Looks up a data line.
    pub fn access_data(&mut self, line: u64) -> bool {
        match self {
            SharedLlc::Unified(c) => c.access(line),
            SharedLlc::Partitioned { data, .. } => data.access(line),
        }
    }

    /// Looks up a code line.
    pub fn access_code(&mut self, line: u64) -> bool {
        match self {
            SharedLlc::Unified(c) => c.access(line),
            SharedLlc::Partitioned { code, .. } => code.access(line),
        }
    }

    /// Capacity in lines available to (code, data) fills. For a unified LLC
    /// the streams share the space; we report an even split as the pre-fill
    /// budget.
    pub fn capacities(&self) -> (u64, u64) {
        match self {
            SharedLlc::Unified(c) => {
                let lines = c.sets() * c.ways() as u64;
                (lines / 2, lines / 2)
            }
            SharedLlc::Partitioned { data, code } => (
                code.sets() * code.ways() as u64,
                data.sets() * data.ways() as u64,
            ),
        }
    }

    /// Resets statistics on all partitions.
    pub fn reset_stats(&mut self) {
        match self {
            SharedLlc::Unified(c) => c.reset_stats(),
            SharedLlc::Partitioned { data, code } => {
                data.reset_stats();
                code.reset_stats();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformSpec;

    #[test]
    fn lru_behaviour_within_a_set() {
        // Single set, 2 ways: classic LRU sequence.
        let mut c = SetAssocCache::new(1, 2).unwrap();
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is MRU now, 2 is LRU
        assert!(!c.access(3)); // evicts 2
        assert!(!c.access(2)); // 2 was evicted
        assert!(c.access(3));
    }

    #[test]
    fn miss_ratio_tracks_reuse() {
        let mut c = SetAssocCache::new(256, 8).unwrap();
        // A working set at half capacity: the second pass hits except for
        // the few sets that the hash overfills (Poisson tail).
        for line in 0..1024u64 {
            c.access(line);
        }
        c.reset_stats();
        for line in 0..1024u64 {
            c.access(line);
        }
        assert!(
            c.miss_ratio() < 0.05,
            "half-capacity working set should mostly hit: {}",
            c.miss_ratio()
        );
        // A working set 4x capacity thrashes LRU completely.
        let mut big = SetAssocCache::new(64, 4).unwrap();
        for _ in 0..4 {
            for line in 0..1024u64 {
                big.access(line);
            }
        }
        assert!(big.miss_ratio() > 0.9);
    }

    #[test]
    fn geometry_construction_and_cat() {
        let spec = PlatformSpec::skylake18();
        let full = SetAssocCache::from_geometry(&spec.llc, spec.llc.ways, 1.0).unwrap();
        assert_eq!(full.ways(), 11);
        assert_eq!(full.sets(), spec.llc.sets());
        let cat = SetAssocCache::from_geometry(&spec.llc, 4, 1.0).unwrap();
        assert_eq!(cat.ways(), 4);
        assert!(SetAssocCache::from_geometry(&spec.llc, 0, 1.0).is_err());
        assert!(SetAssocCache::from_geometry(&spec.llc, 12, 1.0).is_err());
        assert!(SetAssocCache::from_geometry(&spec.llc, 4, 0.0).is_err());
    }

    #[test]
    fn fewer_ways_means_more_misses() {
        let spec = PlatformSpec::skylake18();
        let mut misses = Vec::new();
        for ways in [2u32, 6, 11] {
            let mut c = SetAssocCache::from_geometry(&spec.llc, ways, 0.02).unwrap();
            // Zipf-ish cyclic pattern bigger than the smallest config.
            for rep in 0..3 {
                for i in 0..40_000u64 {
                    c.access(i % (10_000 + rep * 7));
                }
            }
            misses.push(c.miss_ratio());
        }
        assert!(
            misses[0] > misses[1],
            "2 ways {} vs 6 ways {}",
            misses[0],
            misses[1]
        );
        assert!(
            misses[1] > misses[2],
            "6 ways {} vs 11 ways {}",
            misses[1],
            misses[2]
        );
    }

    #[test]
    fn cdp_partition_validation() {
        assert!(CdpPartition::new(6, 5, 11).is_ok());
        assert!(CdpPartition::new(0, 11, 11).is_err());
        assert!(CdpPartition::new(6, 6, 11).is_err());
        let sweep = CdpPartition::sweep(11);
        assert_eq!(sweep.len(), 10);
        assert_eq!(
            sweep[0],
            CdpPartition {
                data_ways: 1,
                code_ways: 10
            }
        );
        assert_eq!(
            sweep[9],
            CdpPartition {
                data_ways: 10,
                code_ways: 1
            }
        );
        assert_eq!(sweep[5].to_string(), "{6, 5}");
    }

    #[test]
    fn partitioned_llc_isolates_streams() {
        let spec = PlatformSpec::skylake18();
        let p = CdpPartition::new(6, 5, 11).unwrap();
        let mut llc = SharedLlc::build(&spec.llc, 11, Some(p), 0.01).unwrap();
        // Fill the code side well below its partition capacity (~1.8k lines
        // at this scale); the data stream must not evict it.
        for i in 0..800u64 {
            llc.access_code(i);
        }
        for i in 0..1_000_000u64 {
            llc.access_data(i);
        }
        llc.reset_stats();
        let mut hits = 0;
        for i in 0..800u64 {
            if llc.access_code(i) {
                hits += 1;
            }
        }
        // A handful of self-conflict misses from hash-overfilled sets are
        // expected; wholesale eviction (as in the unified case below, < 200
        // hits) is not.
        assert!(
            hits >= 700,
            "data stream must not evict partitioned code: {hits}/800 hits"
        );
    }

    #[test]
    fn unified_llc_lets_data_evict_code() {
        let spec = PlatformSpec::skylake18();
        let mut llc = SharedLlc::build(&spec.llc, 11, None, 0.01).unwrap();
        for i in 0..2_000u64 {
            llc.access_code(i);
        }
        for i in 0..1_000_000u64 {
            llc.access_data(i + 1_000_000_000);
        }
        llc.reset_stats();
        let mut hits = 0;
        for i in 0..2_000u64 {
            if llc.access_code(i) {
                hits += 1;
            }
        }
        assert!(
            hits < 200,
            "data stream should have evicted code, hits = {hits}"
        );
    }

    #[test]
    fn flush_fraction_pollutes() {
        let mut c = SetAssocCache::new(64, 8).unwrap();
        for i in 0..512u64 {
            c.access(i);
        }
        c.flush_fraction(0.5);
        c.reset_stats();
        for i in 0..512u64 {
            c.access(i);
        }
        assert!(
            c.miss_ratio() > 0.3 && c.miss_ratio() < 0.9,
            "flush(0.5) should cause substantial re-misses: {}",
            c.miss_ratio()
        );
    }

    #[test]
    fn plru_requires_power_of_two_ways_and_behaves_like_a_cache() {
        assert!(SetAssocCache::with_replacement(16, 11, Replacement::TreePlru).is_err());
        let mut c = SetAssocCache::with_replacement(1, 4, Replacement::TreePlru).unwrap();
        assert_eq!(c.replacement(), Replacement::TreePlru);
        // Fill 4 ways; all resident.
        for line in 0..4u64 {
            assert!(!c.access(line));
        }
        for line in 0..4u64 {
            assert!(c.access(line), "line {line} resident");
        }
        // A fifth line evicts exactly one of them.
        assert!(!c.access(99));
        let resident = (0..4u64)
            .filter(|&l| {
                // Probe without polluting: clone per probe.
                let mut probe = c.clone();
                probe.access(l)
            })
            .count();
        assert_eq!(resident, 3, "one victim was evicted");
    }

    #[test]
    fn plru_miss_ratio_tracks_lru_within_tolerance() {
        // On a Zipf-ish cyclic pattern, tree-PLRU approximates true LRU.
        let mut lru = SetAssocCache::with_replacement(256, 8, Replacement::Lru).unwrap();
        let mut plru = SetAssocCache::with_replacement(256, 8, Replacement::TreePlru).unwrap();
        let mut state = 7u64;
        for _ in 0..200_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mixture: 75% hot set (1k lines), 25% cold sweep (32k lines).
            let line = if !state.is_multiple_of(4) {
                (state >> 20) % 1_000
            } else {
                100_000 + (state >> 20) % 32_000
            };
            lru.access(line);
            plru.access(line);
        }
        let (l, p) = (lru.miss_ratio(), plru.miss_ratio());
        assert!(
            (p - l).abs() / l < 0.10,
            "PLRU miss ratio {p:.4} vs LRU {l:.4}"
        );
        assert!(p >= l * 0.95, "PLRU should not beat LRU materially");
    }

    #[test]
    fn plru_flush_invalidates() {
        let mut c = SetAssocCache::with_replacement(8, 8, Replacement::TreePlru).unwrap();
        for line in 0..64u64 {
            c.access(line);
        }
        c.flush_fraction(1.0);
        c.reset_stats();
        for line in 0..64u64 {
            c.access(line);
        }
        assert!(c.miss_ratio() > 0.99, "full flush: {}", c.miss_ratio());
    }

    #[test]
    fn cdp_must_match_enabled_ways() {
        let spec = PlatformSpec::skylake18();
        let p = CdpPartition::new(6, 5, 11).unwrap();
        // Enabled ways (8) != partition total (11).
        assert!(SharedLlc::build(&spec.llc, 8, Some(p), 1.0).is_err());
    }
}
