//! `skuctl` — inspect a deterministic traced soft-SKU lifecycle run.
//!
//! Runs the full tune → compose → staged rollout → drift → re-tune
//! lifecycle with tracing enabled (everything is a pure function of
//! `(config, seed)`, so two invocations with the same flags print the same
//! bytes), then answers questions about it:
//!
//! ```text
//! skuctl spans  [flags]   # render the sim-time span tree
//! skuctl cpi    [flags]   # per-arm CPI stacks: which TMAM bound each knob win relieved
//! skuctl ledger [flags]   # the tiered-retention rollout.* ODS ledger
//! skuctl export [flags]   # write Chrome trace-event JSON (Perfetto-loadable)
//! skuctl chaos  [flags]   # replay the seeded chaos campaign: faults vs reactions
//!
//! flags: --service <name>  microservice to tune          [web]
//!        --seed <u64>      base seed                     [21]
//!        --workers <n>     scheduler workers             [machine width]
//!        --out <path>      export path                   [trace.json]
//!        --smoke           print a trailing "smoke ok" marker for CI
//! ```

use softsku_knobs::Knob;
use softsku_rollout::{
    demo_campaign, CoordinatorConfig, FleetCoordinator, LifecycleReport, PipelineConfig,
    RolloutPipeline,
};
use softsku_telemetry::trace::{AttrValue, TraceSink, TraceSpan};
use softsku_workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;

type BoxError = Box<dyn std::error::Error>;

const USAGE: &str = "usage: skuctl <spans|cpi|ledger|export|chaos> \
[--service <name>] [--seed <u64>] [--workers <n>] [--out <path>] [--smoke]";

/// Parsed command line.
struct Args {
    command: String,
    service: Microservice,
    seed: u64,
    workers: NonZeroUsize,
    out: String,
    smoke: bool,
}

fn parse_args() -> Result<Args, BoxError> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or(USAGE)?;
    let mut parsed = Args {
        command,
        service: Microservice::Web,
        seed: 21,
        workers: usku::scheduler::default_workers(),
        out: "trace.json".to_string(),
        smoke: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| -> Result<String, BoxError> {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}").into())
        };
        match flag.as_str() {
            "--service" => parsed.service = Microservice::from_name(&value("--service")?)?,
            "--seed" => parsed.seed = value("--seed")?.parse()?,
            "--workers" => {
                parsed.workers = NonZeroUsize::new(value("--workers")?.parse()?)
                    .ok_or("--workers must be positive")?;
            }
            "--out" => parsed.out = value("--out")?,
            "--smoke" => parsed.smoke = true,
            other => return Err(format!("unknown flag {other}\n{USAGE}").into()),
        }
    }
    Ok(parsed)
}

/// The deterministic lifecycle run every subcommand inspects: small A/B
/// budgets (the same shape the integration tests replay) with code churn
/// hot enough that the drift monitor fires, so the trace exercises the
/// whole tune → compose → rollout → drift → re-tune story.
fn traced_run(args: &Args) -> Result<(LifecycleReport, TraceSink), BoxError> {
    let mut config = PipelineConfig::fast_test(args.seed);
    config.abtest.min_samples = 24;
    config.abtest.max_samples = 240;
    config.abtest.batch = 12;
    config.env.window_insns = 12_000;
    config.staged.replicas = 20;
    config.staged.window_insns = 6_000;
    config.rollout.ticks_per_stage = 12;
    config.rollout.mad_window = 8;
    config.drift.window_ticks = 12;
    config.drift.max_windows = 4;
    config.staged.pushes_per_hour = 4.0;
    config.staged.push_magnitude = 0.005;
    config.staged.drift_per_push = 0.002;
    let config = config.with_workers(args.workers);

    let mut sink = TraceSink::new();
    let report = RolloutPipeline::new(config).run_traced(
        args.service,
        PlatformKind::Skylake18,
        &[Knob::Thp, Knob::Shp],
        &mut sink,
    )?;
    Ok((report, sink))
}

fn attr<'a>(span: &'a TraceSpan, key: &str) -> Option<&'a AttrValue> {
    span.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn attr_str<'a>(span: &'a TraceSpan, key: &str) -> Option<&'a str> {
    match attr(span, key) {
        Some(AttrValue::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn attr_f64(span: &TraceSpan, key: &str) -> Option<f64> {
    match attr(span, key) {
        Some(AttrValue::F64(v)) => Some(*v),
        _ => None,
    }
}

/// `skuctl spans`: the indented span tree, one line per span.
fn cmd_spans(sink: &TraceSink) {
    print!("{}", sink.render_tree());
    println!(
        "{} spans, {} counters, {} tracks",
        sink.spans().len(),
        sink.counters().len(),
        sink.tracks().len()
    );
}

/// `skuctl cpi`: every A/B knob win with its per-arm CPI-stack verdict —
/// the TMAM bound the candidate relieved (paper Figs. 7-10).
fn cmd_cpi(sink: &TraceSink) {
    println!(
        "{:<8} {:<10} {:<22} {:>8} {:>9}  relieved bound",
        "service", "knob", "setting", "gain", "p-value"
    );
    let mut wins = 0usize;
    let mut attributed = 0usize;
    for span in sink.spans() {
        if span.cat != "abtest" || attr_str(span, "verdict") != Some("better") {
            continue;
        }
        wins += 1;
        let bound = match (
            attr_str(span, "tmam.relieved"),
            attr_f64(span, "tmam.relieved_drop"),
        ) {
            (Some(b), Some(d)) => {
                attributed += 1;
                format!("{b} (-{:.1} pp)", 100.0 * d)
            }
            _ => "unattributed".to_string(),
        };
        println!(
            "{:<8} {:<10} {:<22} {:>7.2}% {:>9.2e}  {}",
            attr_str(span, "service").unwrap_or("?"),
            attr_str(span, "knob").unwrap_or("?"),
            span.name,
            100.0 * attr_f64(span, "gain").unwrap_or(0.0),
            attr_f64(span, "p_value").unwrap_or(f64::NAN),
            bound,
        );
    }
    println!("{wins} knob wins, {attributed} attributed to a TMAM bound");
}

/// `skuctl ledger`: the tiered rollout ledger — per series, how many
/// observations live at raw resolution vs folded into each retention tier.
fn cmd_ledger(report: &LifecycleReport) {
    let ods = &report.rollout_ods;
    println!(
        "rollout ledger: {} series, {} retention tiers",
        ods.series_count(),
        ods.tier_count()
    );
    for key in ods.keys() {
        let raw = ods.raw_points(key);
        let tiers: Vec<String> = (0..ods.tier_count())
            .map(|t| format!("t{t}:{}", ods.tier_points(key, t).len()))
            .collect();
        let last = raw
            .last()
            .map(|(t, value)| format!("last {value:.3} @ {t:.1}s"))
            .unwrap_or_else(|| "folded".to_string());
        println!(
            "  {:<24} {:>4} obs  raw:{} {}  {}",
            key.to_string(),
            ods.len(key),
            raw.len(),
            tiers.join(" "),
            last
        );
    }
}

/// `skuctl export`: Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`.
fn cmd_export(sink: &TraceSink, out: &str) -> Result<(), BoxError> {
    let json = sink.chrome_trace().render_pretty();
    std::fs::write(out, &json)?;
    println!(
        "wrote {out}: {} events ({} bytes)",
        sink.spans().len() + sink.counters().len() + sink.tracks().len(),
        json.len()
    );
    Ok(())
}

/// `skuctl chaos`: replay the seeded demo chaos campaign through the fleet
/// coordinator and print its timeline — injected faults on the left,
/// coordinator reactions on the right — straight from the `chaos.*` and
/// `coordinator.*` ledger series. Deterministic: same seed, same bytes.
fn cmd_chaos(args: &Args) -> Result<(), BoxError> {
    let (topology, chaos, plans) = demo_campaign(args.seed)?;
    let mut sink = softsku_telemetry::trace::TraceSink::new();
    let report = FleetCoordinator::new(CoordinatorConfig::fast_test())
        .with_workers(args.workers)
        .run_traced(&topology, chaos, plans, args.seed, &mut sink)?;

    // One timeline row per ledger entry: (time, is-fault, text). The ledger
    // is appended in canonical tick order, so a stable sort by time keeps
    // same-tick entries in injection-before-reaction order.
    let mut rows: Vec<(f64, bool, String)> = Vec::new();
    for key in report.ledger.keys() {
        let fault = key.metric().starts_with("chaos.");
        if !fault && !key.metric().starts_with("coordinator.") {
            continue;
        }
        for &(t, value) in report.ledger.raw_points(key) {
            rows.push((
                t,
                fault,
                format!("{} {} [{value:.2}]", key.metric(), key.entity()),
            ));
        }
    }
    rows.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    println!(
        "{:>10}  {:<42}  coordinator reaction",
        "sim time", "injected fault"
    );
    for (t, fault, text) in &rows {
        if *fault {
            println!("{t:>9.0}s  {text:<42}");
        } else {
            println!("{t:>9.0}s  {:<42}  {text}", "");
        }
    }
    println!();
    print!("{}", report.render());
    Ok(())
}

fn main() -> Result<(), BoxError> {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    if args.command == "chaos" {
        cmd_chaos(&args)?;
        if args.smoke {
            println!("smoke ok");
        }
        return Ok(());
    }

    let (report, sink) = traced_run(&args)?;
    match args.command.as_str() {
        "spans" => cmd_spans(&sink),
        "cpi" => cmd_cpi(&sink),
        "ledger" => cmd_ledger(&report),
        "export" => cmd_export(&sink, &args.out)?,
        other => {
            eprintln!("unknown command {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
    if args.smoke {
        println!("smoke ok");
    }
    Ok(())
}
