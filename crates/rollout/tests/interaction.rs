//! Interaction detection (ISSUE satellite): when the design-space map
//! carries an antagonistic "winner" — a knob whose claimed per-knob gain
//! does not survive joint validation — the composer must demote the
//! composed SKU to the best per-knob fallback instead of shipping it.
//!
//! The antagonist here is a large claimed gain attached to a *down-clocked*
//! core frequency: per-knob sweeps can produce such artifacts under hazard
//! noise, but jointly the setting costs far more than THP's genuine gain,
//! so composed validation rejects it and falls back to the knob that
//! actually validates.

use proptest::prelude::*;
use softsku_cluster::{AbEnvironment, EnvConfig};
use softsku_knobs::{Knob, KnobSetting};
use softsku_rollout::{ComposerConfig, CompositionDecision, SkuComposer};
use softsku_workloads::{Microservice, PlatformKind};
use usku::metric::PerformanceMetric;
use usku::{AbTestConfig, AbTestResult, DesignSpaceMap, Verdict};

const SEED: u64 = 21;

/// A sweep-shaped record carrying a claimed verdict into the map.
fn claim(setting: KnobSetting, gain: f64) -> AbTestResult {
    AbTestResult {
        setting,
        baseline: None,
        candidate: None,
        welch: None,
        verdict: Verdict::Better { gain },
        samples: 60,
        attempts: 60,
        rejected_outliers: 0,
    }
}

fn cheap_abtest() -> AbTestConfig {
    let mut config = AbTestConfig::fast_test();
    config.min_samples = 24;
    config.max_samples = 240;
    config.batch = 12;
    config
}

fn cheap_env() -> EnvConfig {
    let mut config = EnvConfig::fast_test();
    config.window_insns = 12_000;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// An antagonistic down-clock claim, whatever its claimed magnitude or
    /// frequency, never ships composed: the composer demotes to the knob
    /// whose gain joint validation actually confirms.
    #[test]
    fn antagonistic_winner_demotes_to_per_knob_fallback(
        fake_freq in 1.6f64..1.78,
        fake_gain in 0.05f64..0.4,
    ) {
        let service = Microservice::Web;
        let profile = service.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let mut proto = AbEnvironment::new(profile, cheap_env(), SEED).unwrap();

        // A genuine winner (THP validates jointly) plus the antagonist,
        // whose claimed gain dominates so it is also the best single knob.
        let mut map = DesignSpaceMap::new();
        map.record(claim(
            KnobSetting::Thp(softsku_archsim::ThpMode::AlwaysOn),
            0.015,
        ));
        map.record(claim(KnobSetting::CoreFrequencyGhz(fake_freq), fake_gain));

        let composer = SkuComposer::new(
            cheap_abtest(),
            PerformanceMetric::recommended_for(service),
            ComposerConfig::fast_test(),
            SEED,
        );
        let composition = composer.compose(&mut proto, &baseline, &map).unwrap();

        prop_assert!(
            !matches!(composition.decision, CompositionDecision::Composed { .. }),
            "a composed SKU carrying the down-clock must not validate: {:?}",
            composition.decision
        );
        let CompositionDecision::PerKnobFallback { knob, .. } = composition.decision else {
            panic!("expected a per-knob fallback, got {:?}", composition.decision);
        };
        prop_assert_eq!(knob, Knob::Thp, "the fallback must be the genuine winner");
        prop_assert!(composition.measured_gain > 0.0);
        // The deployed config carries only the fallback knob: production
        // frequency, THP enabled.
        prop_assert_eq!(composition.config.core_freq_ghz, baseline.core_freq_ghz);
        prop_assert!(composition.config.thp != baseline.thp);
    }
}
