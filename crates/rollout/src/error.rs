//! Error type for the rollout lifecycle.

use softsku_cluster::ClusterError;
use softsku_telemetry::TelemetryError;
use softsku_workloads::WorkloadError;
use std::error::Error;
use std::fmt;

/// Errors raised while composing, rolling out, or monitoring a soft SKU.
#[derive(Debug)]
#[non_exhaustive]
pub enum RolloutError {
    /// The tuning or validation layer failed.
    Usku(usku::UskuError),
    /// The simulated fleet failed.
    Cluster(ClusterError),
    /// A statistics or ODS operation failed.
    Telemetry(TelemetryError),
    /// Workload resolution failed.
    Workload(WorkloadError),
}

impl fmt::Display for RolloutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RolloutError::Usku(e) => write!(f, "tuning: {e}"),
            RolloutError::Cluster(e) => write!(f, "fleet: {e}"),
            RolloutError::Telemetry(e) => write!(f, "telemetry: {e}"),
            RolloutError::Workload(e) => write!(f, "workload: {e}"),
        }
    }
}

impl Error for RolloutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RolloutError::Usku(e) => Some(e),
            RolloutError::Cluster(e) => Some(e),
            RolloutError::Telemetry(e) => Some(e),
            RolloutError::Workload(e) => Some(e),
        }
    }
}

impl From<usku::UskuError> for RolloutError {
    fn from(e: usku::UskuError) -> Self {
        RolloutError::Usku(e)
    }
}

impl From<ClusterError> for RolloutError {
    fn from(e: ClusterError) -> Self {
        RolloutError::Cluster(e)
    }
}

impl From<TelemetryError> for RolloutError {
    fn from(e: TelemetryError) -> Self {
        RolloutError::Telemetry(e)
    }
}

impl From<WorkloadError> for RolloutError {
    fn from(e: WorkloadError) -> Self {
        RolloutError::Workload(e)
    }
}
