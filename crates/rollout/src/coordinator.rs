//! Fleet rollout coordinator: many services' staged rollouts at once,
//! robust under domain-correlated chaos.
//!
//! The paper's "@scale" campaigns (Sec. 6) run per-platform soft-SKU
//! rollouts across a heterogeneous fleet. [`FleetCoordinator`] is that
//! layer: it drives every service's [`StagedRollout`] concurrently on one
//! shared deterministic worker pool ([`usku::scheduler::run_tasks`]), with
//! the fleet-scale safety mechanisms a single-service state machine cannot
//! provide:
//!
//! * **Canary budgets** ([`CanaryBudget`]) — each service exposes at most
//!   `growth_per_tick` new replicas per tick and at most `total_exposures`
//!   across its lifetime; a service that spends its whole budget before
//!   reaching its stage target is terminally [`ServicePhase::Exhausted`]
//!   (no further exposure growth, ever).
//! * **Blast-radius cap** — fleet-wide ceiling on concurrently exposed
//!   candidate replicas, allocated in canonical service order.
//! * **Circuit breaker** — when `breaker_rollbacks` rollbacks land within
//!   `breaker_window_ticks`, every promotion and every exposure grow
//!   freezes for `breaker_freeze_ticks` (correlated failure is fleet-wide
//!   news, not a per-service incident).
//! * **Quarantine with exponential backoff** — a rolled-back service waits
//!   `quarantine_backoff_ticks × 2^(strikes−1)` ticks, then retries with a
//!   freshly deployed candidate (drift reset — re-tuned against current
//!   code); after `max_strikes` rollbacks it is permanently
//!   [`ServicePhase::Demoted`].
//! * **Graceful degradation** — when a pool goes dark mid-stage, its
//!   services revert every candidate replica to the baseline (holdback)
//!   configuration and pause observation until the pool recovers.
//!
//! Every injected fault and every coordinator reaction lands in a
//! [`TieredOds::chaos_ledger`] as `chaos.*` / `coordinator.*` entries and,
//! when a [`TraceSink`] is supplied, as spans on the `coordinator` track.
//!
//! **Determinism.** Chaos arrives from [`ChaosSchedule`] (pure in
//! `(topology, config, seed)`); each service's fleet draws from its own
//! private streams; fleets tick in parallel behind disjoint mutexes but
//! every decision — staging, promotion, breaker, quarantine — happens on
//! the orchestration thread in canonical plan order. The whole
//! [`CoordinatorReport`] is therefore bit-identical across worker counts,
//! pinned by `tests/chaos_rollout.rs`.

use crate::error::RolloutError;
use crate::rollout::{RolloutConfig, StagedRollout, StepDecision};
use softsku_archsim::engine::ServerConfig;
use softsku_cluster::{
    ChaosConfig, ChaosEvent, ChaosSchedule, FailureDomain, FleetTopology, StagedFleet,
};
use softsku_telemetry::trace::{AttrValue, TraceSink};
use softsku_telemetry::{SeriesKey, TieredOds};
use std::num::NonZeroUsize;
use usku::scheduler::run_tasks;

/// Per-service exposure budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryBudget {
    /// Maximum new candidate replicas a service may expose per tick.
    pub growth_per_tick: usize,
    /// Total replica exposures a service may spend across its lifetime
    /// (including post-quarantine retries). Spending it all before
    /// reaching the stage target is terminal.
    pub total_exposures: usize,
}

impl CanaryBudget {
    /// Effectively unmetered (both limits at `usize::MAX`).
    pub fn unlimited() -> Self {
        CanaryBudget {
            growth_per_tick: usize::MAX,
            total_exposures: usize::MAX,
        }
    }
}

/// Coordinator parameters.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Guardrail configuration each service's [`StagedRollout`] runs with.
    pub rollout: RolloutConfig,
    /// Per-service exposure budget.
    pub budget: CanaryBudget,
    /// Fleet-wide cap on concurrently exposed candidate replicas.
    pub blast_radius: usize,
    /// Rollbacks within [`CoordinatorConfig::breaker_window_ticks`] that
    /// trip the circuit breaker.
    pub breaker_rollbacks: usize,
    /// Sliding window, in coordinator ticks, the breaker counts rollbacks
    /// over.
    pub breaker_window_ticks: u64,
    /// Ticks every promotion and exposure grow stays frozen after a trip.
    pub breaker_freeze_ticks: u64,
    /// Base quarantine backoff, in ticks; doubles with each strike.
    pub quarantine_backoff_ticks: u64,
    /// Rollbacks after which a service is permanently demoted.
    pub max_strikes: usize,
    /// Hard horizon, in coordinator ticks, in case chaos never relents.
    pub max_ticks: u64,
}

impl CoordinatorConfig {
    /// Small, fast parameters for tests and smoke runs: short stages, a
    /// 4-replica-per-tick budget, and a breaker wired for two rollbacks in
    /// a two-stage window.
    pub fn fast_test() -> Self {
        let mut rollout = RolloutConfig::fast_test();
        rollout.ticks_per_stage = 12;
        rollout.mad_window = 8;
        CoordinatorConfig {
            rollout,
            budget: CanaryBudget {
                growth_per_tick: 4,
                total_exposures: 1_000,
            },
            blast_radius: 200,
            breaker_rollbacks: 2,
            breaker_window_ticks: 24,
            breaker_freeze_ticks: 12,
            quarantine_backoff_ticks: 12,
            max_strikes: 3,
            max_ticks: 480,
        }
    }
}

/// One service's rollout order: a prebuilt staged fleet, the candidate
/// configuration retries redeploy, and the failure domain the replicas
/// live in.
#[derive(Debug)]
pub struct ServicePlan {
    /// Ledger/trace entity name (e.g. `web`).
    pub name: String,
    /// The service's replica fleet, constructed with the baseline and
    /// candidate configurations.
    pub fleet: StagedFleet,
    /// The candidate configuration, redeployed (drift reset) on each
    /// post-quarantine retry.
    pub candidate: ServerConfig,
    /// Whether deploying the candidate costs a reboot.
    pub needs_reboot: bool,
    /// The failure domain the fleet's replicas live in. Must exist in the
    /// topology the coordinator runs against.
    pub domain: FailureDomain,
}

/// Where one service's rollout stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePhase {
    /// Canary active: growing toward the stage target or observing.
    Ramping,
    /// Domain dark: candidates reverted to the baseline (holdback)
    /// configuration, observation paused until the pool recovers.
    Degraded,
    /// Rolled back and waiting out its exponential backoff.
    Quarantined,
    /// Every stage promoted; the candidate serves the fleet.
    Deployed,
    /// `max_strikes` rollbacks; permanently demoted to the baseline.
    Demoted,
    /// Canary budget spent before the stage target was reached; exposure
    /// is frozen forever.
    Exhausted,
}

impl ServicePhase {
    /// Whether the coordinator is done with this service.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            ServicePhase::Deployed | ServicePhase::Demoted | ServicePhase::Exhausted
        )
    }
}

/// One service's final standing in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// The service's plan name.
    pub name: String,
    /// Its failure domain, rendered `pool/rack`.
    pub domain: String,
    /// Terminal (or horizon-truncated) phase.
    pub phase: ServicePhase,
    /// Candidate replicas exposed at the end.
    pub candidate_replicas: usize,
    /// Total fleet replicas.
    pub replicas: usize,
    /// Guardrail rollbacks this service suffered.
    pub rollbacks: u64,
    /// Post-quarantine retries it was granted.
    pub retries: u64,
    /// Strikes accumulated (each rollback is one).
    pub strikes: usize,
    /// Canary stages promoted across all attempts.
    pub promoted_stages: usize,
}

impl ServiceSummary {
    /// Whether the service ended fully deployed.
    pub fn deployed(&self) -> bool {
        self.phase == ServicePhase::Deployed
    }
}

/// Everything one coordinated campaign produced. Contains no wall-clock
/// fields: the whole report is part of the deterministic view.
#[derive(Debug)]
pub struct CoordinatorReport {
    /// Per-service outcomes, in plan order.
    pub services: Vec<ServiceSummary>,
    /// Coordinator ticks executed.
    pub ticks: u64,
    /// Simulated seconds the campaign covered.
    pub sim_time_s: f64,
    /// Chaos faults injected, per family: brownouts, push waves, canary
    /// crashes, stage stalls.
    pub faults: [u64; 4],
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Guardrail rollbacks across the fleet.
    pub rollbacks: u64,
    /// Quarantine entries across the fleet.
    pub quarantines: u64,
    /// Permanent demotions.
    pub demotions: u64,
    /// Highest concurrently exposed candidate-replica count observed.
    pub max_blast: usize,
    /// Completed recovery episodes (rollback → redeployed, or degrade →
    /// recovered).
    pub recoveries: u64,
    /// Mean time to recover over those episodes, simulated seconds (0.0
    /// when none completed).
    pub mttr_s: f64,
    /// The `chaos.*` / `coordinator.*` ledger, tiered retention.
    pub ledger: TieredOds,
}

impl CoordinatorReport {
    /// Total faults injected across every family.
    pub fn faults_injected(&self) -> u64 {
        self.faults.iter().sum()
    }

    /// Whether every service ended in a terminal phase (none truncated by
    /// the tick horizon mid-flight).
    pub fn converged(&self) -> bool {
        self.services.iter().all(|s| s.phase.terminal())
    }

    /// Renders a human-readable campaign summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "coordinated rollout — {} services, {} ticks ({:.1} sim-h)\n\
             faults: {} brownouts, {} push waves, {} canary crashes, {} stalls\n\
             breaker trips {}, rollbacks {}, quarantines {}, demotions {}, max blast {}\n\
             recoveries {} (MTTR {:.0} sim-s)\n",
            self.services.len(),
            self.ticks,
            self.sim_time_s / 3600.0,
            self.faults[0],
            self.faults[1],
            self.faults[2],
            self.faults[3],
            self.breaker_trips,
            self.rollbacks,
            self.quarantines,
            self.demotions,
            self.max_blast,
            self.recoveries,
            self.mttr_s,
        );
        for s in &self.services {
            out.push_str(&format!(
                "  {:<8} {:<10} {:>3}/{:<3} replicas  {:?} ({} rollbacks, {} retries, {} stages)\n",
                s.name,
                s.domain,
                s.candidate_replicas,
                s.replicas,
                s.phase,
                s.rollbacks,
                s.retries,
                s.promoted_stages
            ));
        }
        out
    }
}

/// One service's live state inside the coordinator loop.
#[derive(Debug)]
struct Runtime {
    name: String,
    fleet: StagedFleet,
    candidate: ServerConfig,
    needs_reboot: bool,
    domain: usize,
    pool: usize,
    domain_name: String,
    rollout: StagedRollout,
    phase: ServicePhase,
    /// Candidate-replica target of the stage under observation.
    target: usize,
    exposures_left: usize,
    strikes: usize,
    /// A clean stage is waiting for promotion (held by a stall or the
    /// breaker until clear).
    pending_promote: bool,
    /// Exposure to restore when the dark pool recovers.
    degraded_from: usize,
    quarantine_until: u64,
    rollbacks: u64,
    retries: u64,
    promoted: usize,
    /// Sim time the open recovery episode started at, if any.
    recovery_start: Option<f64>,
}

impl Runtime {
    fn stage_target(&self, fraction: f64) -> usize {
        let replicas = self.fleet.replicas();
        let want = (fraction.clamp(0.0, 1.0) * replicas as f64).ceil() as usize;
        want.min(replicas - self.fleet.holdback())
    }
}

/// Drives many services' staged rollouts concurrently under a chaos
/// campaign. See the module docs for the mechanism inventory.
#[derive(Debug, Clone)]
pub struct FleetCoordinator {
    config: CoordinatorConfig,
    workers: NonZeroUsize,
}

impl FleetCoordinator {
    /// Creates a coordinator using every available hardware thread.
    pub fn new(config: CoordinatorConfig) -> Self {
        FleetCoordinator {
            config,
            workers: usku::scheduler::default_workers(),
        }
    }

    /// Overrides the worker-pool size (wall-clock only; the report is
    /// bit-identical for any value).
    pub fn with_workers(mut self, workers: NonZeroUsize) -> Self {
        self.workers = workers;
        self
    }

    /// Runs the campaign: `plans` under `chaos` against `topology`, seeded
    /// by `seed`.
    ///
    /// # Errors
    ///
    /// Fleet/engine, statistics, and ledger errors.
    pub fn run(
        &self,
        topology: &FleetTopology,
        chaos: ChaosConfig,
        plans: Vec<ServicePlan>,
        seed: u64,
    ) -> Result<CoordinatorReport, RolloutError> {
        self.run_traced(topology, chaos, plans, seed, &mut TraceSink::disabled())
    }

    /// [`FleetCoordinator::run`] with observability: a root `coordinator`
    /// span on a `coordinator` track (time axis = the campaign's simulated
    /// clock), an instant `chaos.event` leaf per injected fault, an
    /// instant `coordinator.event` leaf per reaction (rollback, breaker
    /// trip/clear, quarantine, retry, demote, degrade, recover, promote,
    /// deploy), and an open span across every quarantine period.
    ///
    /// The report and ledger are bit-identical with tracing on or off.
    ///
    /// # Errors
    ///
    /// Fleet/engine, statistics, and ledger errors.
    pub fn run_traced(
        &self,
        topology: &FleetTopology,
        chaos: ChaosConfig,
        plans: Vec<ServicePlan>,
        seed: u64,
        sink: &mut TraceSink,
    ) -> Result<CoordinatorReport, RolloutError> {
        let cfg = &self.config;
        let mut ledger = TieredOds::chaos_ledger();
        let mut schedule = ChaosSchedule::new(topology, chaos, seed);
        let track = sink.track("coordinator");
        sink.set_track(track);
        let root = sink.open("coordinator", "coordinated rollout", 0.0);
        sink.attr(root, "services", AttrValue::Int(plans.len() as i64));
        sink.attr(root, "seed", AttrValue::Str(format!("{seed:#018x}")));

        // Build runtimes in plan order — the canonical order every merge
        // and every blast-radius allocation walks.
        let tick_s = plans
            .first()
            .map(|p| p.fleet.config().tick_s)
            .unwrap_or(600.0);
        let mut runtimes: Vec<std::sync::Mutex<Runtime>> = Vec::with_capacity(plans.len());
        for plan in plans {
            let domain = topology
                .domain_index(&plan.domain)
                .ok_or_else(|| plan_domain_error(&plan))?;
            // domain_index succeeded above, so the pool lookup cannot fail.
            let pool = topology
                .pool_of_domain(domain)
                .expect("indexed domains have pools");
            let mut fleet = plan.fleet;
            fleet.set_domain(plan.domain.clone());
            let mut rollout = StagedRollout::new(cfg.rollout.clone());
            let first = rollout.begin().unwrap_or(0.0);
            let mut rt = Runtime {
                name: plan.name,
                fleet,
                candidate: plan.candidate,
                needs_reboot: plan.needs_reboot,
                domain,
                pool,
                domain_name: plan.domain.to_string(),
                rollout,
                phase: ServicePhase::Ramping,
                target: 0,
                exposures_left: cfg.budget.total_exposures,
                strikes: 0,
                pending_promote: false,
                degraded_from: 0,
                quarantine_until: 0,
                rollbacks: 0,
                retries: 0,
                promoted: 0,
                recovery_start: None,
            };
            rt.target = rt.stage_target(first);
            runtimes.push(std::sync::Mutex::new(rt));
        }

        let mut tick: u64 = 0;
        let mut time_s = 0.0;
        let mut faults = [0u64; 4];
        let mut breaker_trips = 0u64;
        let mut quarantines = 0u64;
        let mut demotions = 0u64;
        let mut max_blast = 0usize;
        let mut recoveries: Vec<f64> = Vec::new();
        let mut rollback_ticks: Vec<u64> = Vec::new();
        let mut frozen_until: u64 = 0;
        let mut frozen = false;

        while tick < cfg.max_ticks {
            tick += 1;
            let t = time_s + tick_s;

            // 1. Chaos injection, canonical family order. Every fault is a
            // ledger entry (entity = affected pool or domain) and a span.
            for event in schedule.tick(t) {
                let idx = match event {
                    ChaosEvent::Brownout { .. } => 0,
                    ChaosEvent::PushWave { .. } => 1,
                    ChaosEvent::CanaryCrash { .. } => 2,
                    ChaosEvent::StageStall { .. } => 3,
                };
                faults[idx] += 1;
                let scope = event.scope(topology);
                ledger.append(
                    &SeriesKey::new(&scope, event.metric()),
                    event.at_s(),
                    event.magnitude(),
                )?;
                let leaf = sink.leaf("chaos.event", event.metric(), event.at_s(), 0.0);
                sink.attr(leaf, "scope", AttrValue::Str(scope));
                sink.attr(leaf, "magnitude", AttrValue::F64(event.magnitude()));
                match event {
                    ChaosEvent::PushWave { pool, erosion, .. } => {
                        for m in &mut runtimes {
                            let rt = m.get_mut().expect(NO_POISON);
                            if rt.pool == pool {
                                rt.fleet.apply_push_wave(erosion);
                            }
                        }
                    }
                    ChaosEvent::CanaryCrash {
                        domain,
                        until_s,
                        replicas,
                        ..
                    } => {
                        for m in &mut runtimes {
                            let rt = m.get_mut().expect(NO_POISON);
                            if rt.domain == domain {
                                rt.fleet.crash_candidates(replicas, until_s);
                            }
                        }
                    }
                    // Brownouts act through the per-tick load multiplier
                    // below; stalls through the promotion gate.
                    ChaosEvent::Brownout { .. } | ChaosEvent::StageStall { .. } => {}
                }
            }

            // Breaker bookkeeping: clear when the freeze expires.
            if frozen && tick >= frozen_until {
                frozen = false;
                ledger.append(
                    &SeriesKey::new("fleet", "coordinator.breaker_clear"),
                    t,
                    1.0,
                )?;
                sink.leaf("coordinator.event", "breaker_clear", t, 0.0);
            }

            // 2. Pre-tick decisions in canonical order: load multipliers,
            // dark-pool degradation, quarantine expiry, budget-metered
            // exposure growth under the blast-radius cap.
            let mut blast: usize = runtimes
                .iter_mut()
                .map(|m| m.get_mut().expect(NO_POISON).fleet.candidate_replicas())
                .sum();
            for m in &mut runtimes {
                let rt = m.get_mut().expect(NO_POISON);
                rt.fleet
                    .set_external_load(schedule.load_multiplier(rt.pool, t));

                let dark = schedule.pool_dark(rt.pool, t);
                match rt.phase {
                    ServicePhase::Ramping if dark => {
                        rt.degraded_from = rt.fleet.candidate_replicas();
                        blast -= rt.degraded_from;
                        rt.fleet.stage_replicas(0);
                        rt.phase = ServicePhase::Degraded;
                        if rt.recovery_start.is_none() {
                            rt.recovery_start = Some(t);
                        }
                        ledger.append(
                            &SeriesKey::new(&rt.name, "coordinator.degrade"),
                            t,
                            rt.degraded_from as f64,
                        )?;
                        let leaf = sink.leaf("coordinator.event", "degrade", t, 0.0);
                        sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                        sink.attr(leaf, "domain", AttrValue::Str(rt.domain_name.clone()));
                    }
                    ServicePhase::Degraded if !dark => {
                        // Restoring prior exposure is not new exposure —
                        // the budget was already charged for it.
                        let restored = rt.fleet.stage_replicas(rt.degraded_from);
                        blast += restored;
                        rt.phase = ServicePhase::Ramping;
                        if let Some(start) = rt.recovery_start.take() {
                            recoveries.push(t - start);
                        }
                        ledger.append(
                            &SeriesKey::new(&rt.name, "coordinator.recover"),
                            t,
                            restored as f64,
                        )?;
                        let leaf = sink.leaf("coordinator.event", "recover", t, 0.0);
                        sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                    }
                    ServicePhase::Quarantined if tick >= rt.quarantine_until && !frozen => {
                        // Retry: redeploy the candidate against current
                        // code (drift reset) and restart the canary walk.
                        rt.fleet
                            .deploy_candidate(rt.candidate.clone(), rt.needs_reboot)?;
                        rt.rollout = StagedRollout::new(cfg.rollout.clone());
                        let first = rt.rollout.begin().unwrap_or(0.0);
                        rt.target = rt.stage_target(first);
                        rt.phase = ServicePhase::Ramping;
                        rt.pending_promote = false;
                        rt.retries += 1;
                        ledger.append(&SeriesKey::new(&rt.name, "coordinator.retry"), t, 1.0)?;
                        let leaf = sink.leaf("coordinator.event", "retry", t, 0.0);
                        sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                        sink.attr(leaf, "strikes", AttrValue::Int(rt.strikes as i64));
                    }
                    _ => {}
                }

                if rt.phase == ServicePhase::Ramping && !frozen {
                    let current = rt.fleet.candidate_replicas();
                    if current < rt.target {
                        let headroom = cfg.blast_radius.saturating_sub(blast);
                        let grow = (rt.target - current)
                            .min(cfg.budget.growth_per_tick)
                            .min(rt.exposures_left)
                            .min(headroom);
                        if grow > 0 {
                            let staged = rt.fleet.stage_replicas(current + grow);
                            blast += staged - current;
                            rt.exposures_left -= staged - current;
                        }
                        if rt.exposures_left == 0 && rt.fleet.candidate_replicas() < rt.target {
                            rt.phase = ServicePhase::Exhausted;
                            rt.pending_promote = false;
                            ledger.append(
                                &SeriesKey::new(&rt.name, "coordinator.exhausted"),
                                t,
                                rt.fleet.candidate_replicas() as f64,
                            )?;
                            let leaf = sink.leaf("coordinator.event", "exhausted", t, 0.0);
                            sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                        }
                    }
                }
            }
            max_blast = max_blast.max(blast);

            // 3. Parallel fleet ticks on the shared deterministic pool.
            // Each worker locks a disjoint runtime; samples come back in
            // plan order regardless of scheduling.
            let samples = run_tasks(&runtimes, self.workers.get(), |m| {
                // Workers touch disjoint indices; poisoning requires a
                // prior panic.
                let rt = &mut *m.lock().expect(NO_POISON);
                rt.fleet.tick().map_err(usku::UskuError::from)
            })
            .map_err(RolloutError::from)?;
            time_s = t;

            // 4. Merge in canonical order: guardrail stepping, promotion
            // gating, rollback → breaker/quarantine/demotion.
            for (m, sample) in runtimes.iter_mut().zip(&samples) {
                let rt = m.get_mut().expect(NO_POISON);
                if rt.phase != ServicePhase::Ramping {
                    continue;
                }
                // The stage clock only runs at full stage exposure: a ramp
                // still throttled by the canary budget or the blast-radius
                // cap has not yet *started* its observation window, so a
                // capped fleet stalls mid-ramp instead of promoting on a
                // partial canary group.
                let staged = rt.fleet.candidate_replicas();
                if !rt.pending_promote && staged >= rt.target {
                    match rt.rollout.step(sample, staged)? {
                        StepDecision::Observing => {}
                        StepDecision::StageClean { .. } => {
                            rt.pending_promote = true;
                        }
                        StepDecision::RolledBack { stage, report } => {
                            rt.fleet.rollback();
                            rt.rollbacks += 1;
                            rt.strikes += 1;
                            if rt.recovery_start.is_none() {
                                rt.recovery_start = Some(t);
                            }
                            rollback_ticks.push(tick);
                            ledger.append(
                                &SeriesKey::new(&rt.name, "coordinator.rollback"),
                                t,
                                stage as f64,
                            )?;
                            let leaf = sink.leaf("coordinator.event", "rollback", t, 0.0);
                            sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                            sink.attr(leaf, "stage", AttrValue::Int(stage as i64));
                            sink.attr(leaf, "relative_diff", AttrValue::F64(report.relative_diff));
                            if rt.strikes >= cfg.max_strikes {
                                rt.phase = ServicePhase::Demoted;
                                rt.recovery_start = None;
                                demotions += 1;
                                ledger.append(
                                    &SeriesKey::new(&rt.name, "coordinator.demote"),
                                    t,
                                    rt.strikes as f64,
                                )?;
                                let leaf = sink.leaf("coordinator.event", "demote", t, 0.0);
                                sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                            } else {
                                let backoff =
                                    cfg.quarantine_backoff_ticks << (rt.strikes as u64 - 1);
                                rt.quarantine_until = tick + backoff;
                                rt.phase = ServicePhase::Quarantined;
                                quarantines += 1;
                                ledger.append(
                                    &SeriesKey::new(&rt.name, "coordinator.quarantine"),
                                    t,
                                    backoff as f64,
                                )?;
                                let span = sink.leaf(
                                    "coordinator.quarantine",
                                    &format!("quarantine {}", rt.name),
                                    t,
                                    backoff as f64 * tick_s,
                                );
                                sink.attr(span, "service", AttrValue::Str(rt.name.clone()));
                                sink.attr(span, "backoff_ticks", AttrValue::Int(backoff as i64));
                            }
                            continue;
                        }
                    }
                }
                if rt.pending_promote && !frozen && !schedule.stalled(rt.domain, t) {
                    rt.pending_promote = false;
                    match rt.rollout.promote() {
                        Some(fraction) => {
                            rt.target = rt.stage_target(fraction);
                            rt.promoted += 1;
                            ledger.append(
                                &SeriesKey::new(&rt.name, "coordinator.promote"),
                                t,
                                fraction,
                            )?;
                            let leaf = sink.leaf("coordinator.event", "promote", t, 0.0);
                            sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                            sink.attr(leaf, "fraction", AttrValue::F64(fraction));
                        }
                        None => {
                            rt.promoted += 1;
                            rt.phase = ServicePhase::Deployed;
                            if let Some(start) = rt.recovery_start.take() {
                                recoveries.push(t - start);
                            }
                            ledger.append(
                                &SeriesKey::new(&rt.name, "coordinator.deployed"),
                                t,
                                1.0,
                            )?;
                            let leaf = sink.leaf("coordinator.event", "deployed", t, 0.0);
                            sink.attr(leaf, "service", AttrValue::Str(rt.name.clone()));
                        }
                    }
                }
            }

            // 5. Circuit breaker: N rollbacks inside the sliding window
            // freeze the whole fleet's promotions and growth.
            rollback_ticks.retain(|&rb| tick - rb < cfg.breaker_window_ticks);
            if !frozen && rollback_ticks.len() >= cfg.breaker_rollbacks {
                frozen = true;
                frozen_until = tick + cfg.breaker_freeze_ticks;
                breaker_trips += 1;
                ledger.append(
                    &SeriesKey::new("fleet", "coordinator.breaker_trip"),
                    t,
                    rollback_ticks.len() as f64,
                )?;
                let leaf = sink.leaf("coordinator.event", "breaker_trip", t, 0.0);
                sink.attr(
                    leaf,
                    "rollbacks_in_window",
                    AttrValue::Int(rollback_ticks.len() as i64),
                );
                rollback_ticks.clear();
            }

            if runtimes
                .iter_mut()
                .all(|m| m.get_mut().expect(NO_POISON).phase.terminal())
            {
                break;
            }
        }

        let mut services = Vec::with_capacity(runtimes.len());
        let mut rollbacks = 0u64;
        for m in runtimes {
            let rt = m.into_inner().expect(NO_POISON);
            rollbacks += rt.rollbacks;
            services.push(ServiceSummary {
                name: rt.name,
                domain: rt.domain_name,
                phase: rt.phase,
                candidate_replicas: rt.fleet.candidate_replicas(),
                replicas: rt.fleet.replicas(),
                rollbacks: rt.rollbacks,
                retries: rt.retries,
                strikes: rt.strikes,
                promoted_stages: rt.promoted,
            });
        }
        let mttr_s = if recoveries.is_empty() {
            0.0
        } else {
            recoveries.iter().sum::<f64>() / recoveries.len() as f64
        };
        let report = CoordinatorReport {
            services,
            ticks: tick,
            sim_time_s: time_s,
            faults,
            breaker_trips,
            rollbacks,
            quarantines,
            demotions,
            max_blast,
            recoveries: recoveries.len() as u64,
            mttr_s,
            ledger,
        };
        sink.attr(root, "converged", AttrValue::Bool(report.converged()));
        sink.close(root, time_s);
        Ok(report)
    }
}

const NO_POISON: &str = "no worker panics hold a runtime lock";

fn plan_domain_error(plan: &ServicePlan) -> RolloutError {
    RolloutError::Workload(softsku_workloads::WorkloadError::UnsupportedPlatform {
        service: "coordinator",
        platform: format!("unknown failure domain {}", plan.domain),
    })
}

/// The shared demo campaign `skuctl chaos`, `chaosbench`, and the E2E
/// suite replay: four services across the paper-shaped two-pool topology
/// ([`FleetTopology::paper_pools`]), candidates identical to their
/// baselines (so every guardrail trip is attributable to injected chaos,
/// not organic tuning loss), under [`ChaosConfig::campaign`].
///
/// Returns the topology, chaos configuration, and plans; run them with a
/// [`FleetCoordinator`].
///
/// # Errors
///
/// Workload-resolution and fleet-construction errors.
pub fn demo_campaign(
    seed: u64,
) -> Result<(FleetTopology, ChaosConfig, Vec<ServicePlan>), RolloutError> {
    use softsku_cluster::StagedFleetConfig;
    use softsku_telemetry::streams::IdentitySeed;
    use softsku_workloads::{Microservice, PlatformKind};

    let topology = FleetTopology::paper_pools();
    let targets = [
        (Microservice::Web, PlatformKind::Broadwell16, "bdw16", "r0"),
        (Microservice::Feed1, PlatformKind::Skylake18, "skl18", "r0"),
        (Microservice::Ads1, PlatformKind::Skylake18, "skl18", "r1"),
        // Cache2 shares Feed1's rack: rack faults hit both at once.
        (Microservice::Cache2, PlatformKind::Skylake18, "skl18", "r0"),
    ];
    let mut staged = StagedFleetConfig::fast_test();
    staged.replicas = 20;
    staged.window_insns = 6_000;
    staged.pushes_per_hour = 0.5;
    staged.push_magnitude = 0.005;
    staged.drift_per_push = 0.002;

    let mut plans = Vec::with_capacity(targets.len());
    for (service, platform, pool, rack) in targets {
        let profile = service.profile(platform)?;
        let baseline = profile.production_config.clone();
        let candidate = baseline.clone();
        let domain = FailureDomain::new(pool, rack);
        let fleet_seed = IdentitySeed::new(seed)
            .field(service.name())
            .field("coordinator-fleet")
            .field(&domain.to_string())
            .finish();
        let fleet = StagedFleet::new(profile, baseline, candidate.clone(), staged, fleet_seed)?;
        plans.push(ServicePlan {
            name: service.name().to_lowercase(),
            fleet,
            candidate,
            needs_reboot: false,
            domain,
        });
    }
    Ok((topology, ChaosConfig::campaign(), plans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_cluster::StagedFleetConfig;
    use softsku_telemetry::streams::IdentitySeed;
    use softsku_workloads::{Microservice, PlatformKind};

    fn quiet_plan(name: &str, domain: FailureDomain, seed: u64) -> ServicePlan {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let candidate = baseline.clone();
        let mut staged = StagedFleetConfig::fast_test();
        staged.replicas = 20;
        staged.window_insns = 6_000;
        let fleet_seed = IdentitySeed::new(seed).field(name).finish();
        let fleet =
            StagedFleet::new(profile, baseline, candidate.clone(), staged, fleet_seed).unwrap();
        ServicePlan {
            name: name.to_string(),
            fleet,
            candidate,
            needs_reboot: false,
            domain,
        }
    }

    #[test]
    fn chaos_free_campaign_deploys_every_service() {
        let topology = FleetTopology::paper_pools();
        let plans = vec![
            quiet_plan("a", FailureDomain::new("bdw16", "r0"), 3),
            quiet_plan("b", FailureDomain::new("skl18", "r0"), 3),
            quiet_plan("c", FailureDomain::new("skl18", "r1"), 3),
        ];
        let report = FleetCoordinator::new(CoordinatorConfig::fast_test())
            .with_workers(NonZeroUsize::new(2).unwrap())
            .run(&topology, ChaosConfig::none(), plans, 3)
            .unwrap();
        assert!(report.converged(), "{}", report.render());
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.breaker_trips, 0);
        for s in &report.services {
            assert!(s.deployed(), "{s:?}");
            assert_eq!(s.candidate_replicas, 19, "full stage minus holdback");
        }
        // The ledger carries the full promotion story, no chaos entries.
        assert!(
            report
                .ledger
                .len(&SeriesKey::new("a", "coordinator.promote"))
                >= 2
        );
        assert_eq!(
            report
                .ledger
                .len(&SeriesKey::new("bdw16", "chaos.brownout")),
            0
        );
        assert_eq!(report.faults_injected(), 0);
    }

    #[test]
    fn growth_respects_per_tick_budget_and_blast_radius() {
        let topology = FleetTopology::paper_pools();
        let mut cfg = CoordinatorConfig::fast_test();
        cfg.budget.growth_per_tick = 2;
        cfg.blast_radius = 10;
        let plans = vec![
            quiet_plan("a", FailureDomain::new("bdw16", "r0"), 5),
            quiet_plan("b", FailureDomain::new("skl18", "r0"), 5),
        ];
        let report = FleetCoordinator::new(cfg)
            .with_workers(NonZeroUsize::new(1).unwrap())
            .run(&topology, ChaosConfig::none(), plans, 5)
            .unwrap();
        assert!(
            report.max_blast <= 10,
            "blast {} exceeded the cap",
            report.max_blast
        );
        // Stage targets above the cap can never be reached: both services
        // stall mid-ramp and the run truncates at the horizon un-converged.
        assert!(!report.converged());
    }

    #[test]
    fn exhausted_budget_is_terminal() {
        let topology = FleetTopology::paper_pools();
        let mut cfg = CoordinatorConfig::fast_test();
        cfg.budget.total_exposures = 7; // can't even finish the 25 % stage
        let plans = vec![quiet_plan("a", FailureDomain::new("bdw16", "r0"), 9)];
        let report = FleetCoordinator::new(cfg)
            .run(&topology, ChaosConfig::none(), plans, 9)
            .unwrap();
        let s = &report.services[0];
        assert_eq!(s.phase, ServicePhase::Exhausted);
        assert!(
            s.candidate_replicas <= 7,
            "exposure {} exceeds the spent budget",
            s.candidate_replicas
        );
        assert!(report.converged(), "Exhausted is terminal");
        assert_eq!(
            report
                .ledger
                .len(&SeriesKey::new("a", "coordinator.exhausted")),
            1
        );
    }

    #[test]
    fn demo_campaign_is_deterministic() {
        let (topo_a, chaos_a, plans_a) = demo_campaign(21).unwrap();
        let (topo_b, chaos_b, plans_b) = demo_campaign(21).unwrap();
        assert_eq!(chaos_a, chaos_b);
        assert_eq!(topo_a.domains(), topo_b.domains());
        let coordinator = FleetCoordinator::new(CoordinatorConfig::fast_test());
        let a = coordinator.run(&topo_a, chaos_a, plans_a, 21).unwrap();
        let b = coordinator.run(&topo_b, chaos_b, plans_b, 21).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.faults_injected() > 0, "the campaign is not silent");
    }
}
