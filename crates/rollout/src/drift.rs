//! Post-deployment drift monitoring (paper Sec. 7).
//!
//! "Frequent software releases … can change a microservice's architectural
//! bottlenecks, requiring µSKU tuning to be an ongoing process." A deployed
//! soft SKU's advantage over the holdback baseline group is re-measured in
//! rolling windows; when the upper confidence bound of the relative gain
//! falls below the configured floor, the SKU has drifted and a *scoped*
//! re-tune — same service, same knob subset, fresh seed from the
//! `RolloutRetune` stream family — is enqueued for the fleet tuner.

use crate::error::RolloutError;
use softsku_cluster::{FailureDomain, StagedFleet};
use softsku_knobs::Knob;
use softsku_telemetry::stats::{welch_test, RunningStats};
use softsku_telemetry::streams::{stream_seed, IdentitySeed, StreamFamily};
use softsku_telemetry::trace::{AttrValue, TraceSink};
use softsku_telemetry::{SeriesKey, TieredOds};
use softsku_workloads::{Microservice, PlatformKind};

/// Drift-detection parameters.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Fleet ticks per rolling gain window.
    pub window_ticks: usize,
    /// Windows observed before declaring the SKU healthy.
    pub max_windows: usize,
    /// The deployed SKU must keep this much relative gain: drift fires
    /// when the *upper* confidence bound of the windowed gain drops below
    /// it.
    pub min_gain: f64,
    /// Confidence level of the gain interval.
    pub confidence: f64,
}

impl DriftConfig {
    /// Small, fast parameters for tests and smoke runs.
    pub fn fast_test() -> Self {
        DriftConfig {
            window_ticks: 48,
            max_windows: 6,
            min_gain: 0.01,
            confidence: 0.95,
        }
    }
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window_ticks: 144,
            max_windows: 20,
            ..DriftConfig::fast_test()
        }
    }
}

/// Identity of the deployed SKU the monitor watches — also the scope of
/// any re-tune it enqueues.
#[derive(Debug, Clone)]
pub struct DeployedSku {
    /// The service the SKU serves.
    pub service: Microservice,
    /// The platform it runs on.
    pub platform: PlatformKind,
    /// The knobs the SKU changes (the re-tune sweeps exactly these).
    pub knobs: Vec<Knob>,
    /// The lifecycle base seed re-tune seeds derive from.
    pub base_seed: u64,
}

/// A scoped re-tune order for the fleet tuner.
#[derive(Debug, Clone)]
pub struct RetuneRequest {
    /// The service to re-tune.
    pub service: Microservice,
    /// The platform to re-tune on.
    pub platform: PlatformKind,
    /// The knob subset to sweep (the deployed SKU's knobs).
    pub knobs: Vec<Knob>,
    /// Base seed of the re-tune campaign, derived from the lifecycle seed
    /// and the drift window through [`StreamFamily::RolloutRetune`].
    pub base_seed: u64,
    /// The failure domain whose fleet drifted, when the fleet is tagged —
    /// a scoped re-tune must target this pool/rack, not re-tune healthy
    /// pools that happen to run the same service.
    pub domain: Option<FailureDomain>,
}

/// What the monitor concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftVerdict {
    /// The gain held through every window.
    Healthy {
        /// Windows observed.
        windows: usize,
        /// Relative gain of the final window.
        last_gain: f64,
    },
    /// The gain's upper confidence bound fell below the floor.
    Drifted {
        /// Zero-based window index that fired.
        window: usize,
        /// Relative gain of that window.
        gain: f64,
        /// Upper confidence bound of that gain.
        upper_ci: f64,
        /// Code pushes the fleet had absorbed by then.
        code_pushes: u64,
    },
}

/// One rolling window's gain measurement.
#[derive(Debug, Clone, Copy)]
pub struct WindowGain {
    /// Zero-based window index.
    pub window: usize,
    /// Relative gain (candidate/baseline − 1) of the window means.
    pub gain: f64,
    /// Upper confidence bound of the relative gain.
    pub upper_ci: f64,
}

/// Outcome of a monitoring run.
#[derive(Debug)]
pub struct DriftOutcome {
    /// The verdict.
    pub verdict: DriftVerdict,
    /// Every window observed, in time order.
    pub windows: Vec<WindowGain>,
    /// The re-tune order, present exactly when the verdict is
    /// [`DriftVerdict::Drifted`].
    pub retune: Option<RetuneRequest>,
}

/// Watches a deployed SKU's measured gain over rolling windows.
#[derive(Debug, Clone, Copy)]
pub struct DriftMonitor {
    config: DriftConfig,
}

impl DriftMonitor {
    /// Creates a monitor.
    pub fn new(config: DriftConfig) -> Self {
        DriftMonitor { config }
    }

    /// Observes `fleet` (which must have candidate replicas staged) for up
    /// to `max_windows` rolling windows, recording per-window gains to the
    /// `rollout.drift_gain` series and, on drift, `rollout.drift` plus a
    /// [`RetuneRequest`] scoped to `sku`.
    ///
    /// The fleet's code pushes keep landing while the monitor watches —
    /// that is the drift mechanism — so the measured gain is live, not the
    /// rollout-time estimate.
    ///
    /// # Errors
    ///
    /// Fleet/engine errors and ODS append errors.
    pub fn watch(
        &self,
        fleet: &mut StagedFleet,
        sku: &DeployedSku,
        ods: &mut TieredOds,
    ) -> Result<DriftOutcome, RolloutError> {
        self.watch_traced(fleet, sku, ods, &mut TraceSink::disabled())
    }

    /// [`DriftMonitor::watch`] with observability: a root `drift` span on
    /// the sink's current track (time axis = the fleet's simulated clock),
    /// one child span per rolling window carrying its gain and upper
    /// confidence bound, a `drift.gain` counter per window, and — when
    /// drift fires — an instant `retune.request` event carrying the derived
    /// campaign seed and its `rollout.retune` stream family.
    ///
    /// The verdict and ledger contents are bit-identical with tracing on
    /// or off.
    ///
    /// # Errors
    ///
    /// Fleet/engine errors and ODS append errors.
    pub fn watch_traced(
        &self,
        fleet: &mut StagedFleet,
        sku: &DeployedSku,
        ods: &mut TieredOds,
        sink: &mut TraceSink,
    ) -> Result<DriftOutcome, RolloutError> {
        let service = sku.service.name();
        let root = sink.open("drift", &format!("drift {service}"), fleet.time_s());
        sink.attr(root, "service", AttrValue::Str(service.to_string()));
        sink.attr(root, "min_gain", AttrValue::F64(self.config.min_gain));
        let mut windows = Vec::new();
        let mut last_gain = 0.0;
        for window in 0..self.config.max_windows.max(1) {
            let window_start = fleet.time_s();
            let mut base = RunningStats::new();
            let mut cand = RunningStats::new();
            for _ in 0..self.config.window_ticks.max(2) {
                let sample = fleet.tick()?;
                if let Some(cq) = sample.candidate_qps {
                    base.push(sample.baseline_qps);
                    cand.push(cq);
                }
            }
            let (gain, upper_ci) = self.window_gain(&base, &cand)?;
            last_gain = gain;
            windows.push(WindowGain {
                window,
                gain,
                upper_ci,
            });
            let now = fleet.time_s();
            let span = sink.leaf(
                "drift.window",
                &format!("window {window}"),
                window_start,
                now - window_start,
            );
            sink.attr(span, "window", AttrValue::Int(window as i64));
            sink.attr(span, "gain", AttrValue::F64(gain));
            sink.attr(span, "upper_ci", AttrValue::F64(upper_ci));
            sink.counter("drift.gain", now, gain);
            ods.append(&SeriesKey::new(service, "rollout.drift_gain"), now, gain)?;
            if upper_ci < self.config.min_gain {
                ods.append(&SeriesKey::new(service, "rollout.drift"), now, upper_ci)?;
                let retune = RetuneRequest {
                    service: sku.service,
                    platform: sku.platform,
                    knobs: sku.knobs.clone(),
                    base_seed: self.retune_seed(sku, window),
                    domain: fleet.domain().cloned(),
                };
                ods.append(
                    &SeriesKey::new(service, "rollout.retune"),
                    now,
                    window as f64,
                )?;
                let ev = sink.leaf("drift.event", "retune.request", now, 0.0);
                sink.attr(ev, "window", AttrValue::Int(window as i64));
                sink.attr(ev, "upper_ci", AttrValue::F64(upper_ci));
                sink.attr(
                    ev,
                    "seed",
                    AttrValue::Str(format!("{:#018x}", retune.base_seed)),
                );
                sink.attr(
                    ev,
                    "stream_family",
                    AttrValue::Str(StreamFamily::RolloutRetune.name().to_string()),
                );
                if let Some(domain) = &retune.domain {
                    sink.attr(ev, "domain", AttrValue::Str(domain.to_string()));
                }
                let verdict = DriftVerdict::Drifted {
                    window,
                    gain,
                    upper_ci,
                    code_pushes: fleet.code_pushes(),
                };
                sink.attr(root, "verdict", AttrValue::Str("drifted".to_string()));
                sink.close(root, now);
                return Ok(DriftOutcome {
                    verdict,
                    windows,
                    retune: Some(retune),
                });
            }
        }
        sink.attr(root, "verdict", AttrValue::Str("healthy".to_string()));
        sink.close(root, fleet.time_s());
        Ok(DriftOutcome {
            verdict: DriftVerdict::Healthy {
                windows: windows.len(),
                last_gain,
            },
            windows,
            retune: None,
        })
    }

    /// The re-tune campaign's base seed: a pure function of the lifecycle
    /// seed, the SKU identity, and the window that fired — no wall clock,
    /// no global counter — folded through the registered
    /// [`StreamFamily::RolloutRetune`] mask.
    fn retune_seed(&self, sku: &DeployedSku, window: usize) -> u64 {
        let identity = IdentitySeed::new(sku.base_seed)
            .field(sku.service.name())
            .field(&sku.platform.to_string())
            .field("retune")
            .field(&window.to_string())
            .finish();
        stream_seed(identity, StreamFamily::RolloutRetune)
    }

    /// The window's relative gain and its upper confidence bound.
    fn window_gain(
        &self,
        base: &RunningStats,
        cand: &RunningStats,
    ) -> Result<(f64, f64), RolloutError> {
        if base.count() < 2 || cand.count() < 2 || base.mean() <= 0.0 {
            // An unstaged or starved window measures no gain at all —
            // treat it as fully drifted rather than healthy.
            return Ok((0.0, f64::NEG_INFINITY));
        }
        let b = base.summary()?;
        let c = cand.summary()?;
        // `mean_diff = candidate − baseline`; its CI rescaled by the
        // baseline mean is the relative-gain CI.
        let welch = welch_test(&c, &b);
        let (_, hi) = welch.diff_ci(&c, &b, self.config.confidence);
        Ok((c.mean() / b.mean() - 1.0, hi / b.mean()))
    }
}
