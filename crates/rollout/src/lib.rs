//! Soft-SKU lifecycle: composition, staged rollout, drift-triggered re-tune.
//!
//! The paper's payoff is not a per-knob A/B win but the *composed* soft SKU
//! deployed per service across the fleet (Secs. 5.3/6) and kept valid as
//! code pushes shift behaviour (Sec. 7). This crate closes that loop on top
//! of the tuner, the hazard-hardened A/B pipeline, and the deterministic
//! parallel scheduler:
//!
//! * [`compose::SkuComposer`] — joint validation of composed per-knob
//!   winners on parallel environment replicas, with interaction detection
//!   that demotes an underperforming composition to the best single knob.
//! * [`rollout::StagedRollout`] — the canary state machine (1 % → 25 % →
//!   100 % of a service's replicas) with Welch/MAD QoS guardrails and
//!   automatic rollback, every transition recorded to the `rollout.*` ODS
//!   ledger.
//! * [`drift::DriftMonitor`] — rolling-window gain tracking over the
//!   deployed fleet (the code-push stream keeps running), flagging drift
//!   when the gain's confidence bound decays below the floor and producing
//!   a scoped [`drift::RetuneRequest`].
//! * [`lifecycle::RolloutPipeline`] — the closed tune → compose → rollout
//!   → monitor → re-tune cycle.
//! * [`coordinator::FleetCoordinator`] — many services' staged rollouts
//!   advanced concurrently on one shared deterministic worker pool, with
//!   per-service canary budgets, a fleet-wide blast-radius cap, a rollback
//!   circuit breaker, quarantine with exponential backoff, and graceful
//!   degradation to holdback configs when a failure domain goes dark —
//!   exercised by the seeded chaos campaign in
//!   [`softsku_cluster::ChaosSchedule`].
//!
//! Every random stream the lifecycle consumes is a registered
//! [`softsku_telemetry::streams::StreamFamily`] derivation of the lifecycle
//! base seed, so a whole run — including the drift-triggered re-tune — is a
//! pure function of `(config, seed)`, bit-identical across scheduler worker
//! counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod coordinator;
pub mod drift;
pub mod error;
pub mod lifecycle;
pub mod rollout;

pub use compose::{
    CandidateValidation, ComposerConfig, Composition, CompositionDecision, SkuComposer,
};
pub use coordinator::{
    demo_campaign, CanaryBudget, CoordinatorConfig, CoordinatorReport, FleetCoordinator,
    ServicePhase, ServicePlan, ServiceSummary,
};
pub use drift::{
    DeployedSku, DriftConfig, DriftMonitor, DriftOutcome, DriftVerdict, RetuneRequest, WindowGain,
};
pub use error::RolloutError;
pub use lifecycle::{CycleReport, LifecycleReport, PipelineConfig, RetunedCycle, RolloutPipeline};
pub use rollout::{
    RolloutConfig, RolloutReport, RolloutState, StageReport, StageViolation, StagedRollout,
    StepDecision,
};
