//! Staged canary rollout with statistical QoS guardrails.
//!
//! A validated soft SKU is not flipped fleet-wide: following the staged
//! deployment practice the client-variability literature motivates, the
//! candidate walks canary stages (1 % → 25 % → 100 % of the service's
//! replicas by default). At each stage the candidate group's QPS is
//! compared against the baseline group under Welch's test with a MAD
//! outlier screen — the same statistical machinery the A/B tester uses —
//! and a significant breach of the guard floor rolls every replica back.
//! Every transition lands in the `rollout.*` ODS ledger.

use crate::error::RolloutError;
use softsku_cluster::{StagedFleet, StagedSample};
use softsku_telemetry::stats::{welch_test, MadFilter, RunningStats};
use softsku_telemetry::trace::{AttrValue, TraceSink};
use softsku_telemetry::{SeriesKey, TieredOds};

/// Guardrail and pacing parameters of a staged rollout.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Fleet fractions of the successive stages, ascending.
    pub stages: Vec<f64>,
    /// Fleet ticks observed per stage before the promotion decision.
    pub ticks_per_stage: usize,
    /// Relative loss the guardrail tolerates: the stage fails when the
    /// candidate is *significantly* below `baseline × (1 − guard_loss)`.
    pub guard_loss: f64,
    /// Welch confidence level of the guardrail test.
    pub confidence: f64,
    /// MAD screen window over the per-tick relative diffs.
    pub mad_window: usize,
    /// MAD rejection threshold, in robust standard deviations.
    pub mad_k: f64,
    /// Consecutive ticks breaching `3 × guard_loss` that trigger an
    /// immediate mid-stage rollback (catastrophic-canary fast path).
    pub max_strikes: usize,
}

impl RolloutConfig {
    /// The paper-shaped default: 1 % canary, 25 %, then full fleet.
    pub fn fast_test() -> Self {
        RolloutConfig {
            stages: vec![0.01, 0.25, 1.0],
            ticks_per_stage: 48,
            guard_loss: 0.02,
            confidence: 0.95,
            mad_window: 16,
            mad_k: 5.0,
            max_strikes: 5,
        }
    }
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            ticks_per_stage: 144,
            ..RolloutConfig::fast_test()
        }
    }
}

/// Where the rollout state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutState {
    /// Not yet started.
    Pending,
    /// Observing stage `stage` (index into [`RolloutConfig::stages`]).
    Canary {
        /// Stage index under observation.
        stage: usize,
    },
    /// Every stage promoted; the SKU serves the fleet (minus holdback).
    Deployed,
    /// A guardrail fired at stage `stage`; every replica is back on the
    /// baseline.
    RolledBack {
        /// Stage index at which the violation fired.
        stage: usize,
    },
}

/// Why a stage failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageViolation {
    /// Welch's test found the candidate significantly below the guard
    /// floor at stage end.
    SignificantLoss,
    /// `max_strikes` consecutive ticks breached the hard floor mid-stage.
    HardStrikes,
}

/// Observed statistics of one stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Fleet fraction the stage targeted.
    pub fraction: f64,
    /// Candidate replicas actually staged (holdback-clamped).
    pub candidate_replicas: usize,
    /// Ticks observed.
    pub ticks: usize,
    /// Ticks the MAD screen rejected.
    pub screened: usize,
    /// Mean per-replica baseline QPS over the stage.
    pub baseline_qps: f64,
    /// Mean per-replica candidate QPS over the stage.
    pub candidate_qps: f64,
    /// Relative diff of the stage means.
    pub relative_diff: f64,
    /// The violation that ended the stage, if any.
    pub violation: Option<StageViolation>,
}

/// Outcome of one rollout execution.
#[derive(Debug)]
pub struct RolloutReport {
    /// Terminal state: [`RolloutState::Deployed`] or
    /// [`RolloutState::RolledBack`].
    pub state: RolloutState,
    /// Per-stage observations, in stage order (the last entry carries the
    /// violation on rollback).
    pub stages: Vec<StageReport>,
}

impl RolloutReport {
    /// Whether the SKU reached full deployment.
    pub fn deployed(&self) -> bool {
        self.state == RolloutState::Deployed
    }
}

/// The guardrail decision after feeding one fleet sample to a stepwise
/// rollout ([`StagedRollout::step`]).
#[derive(Debug)]
pub enum StepDecision {
    /// Mid-stage; keep feeding samples.
    Observing,
    /// The stage completed clean; call [`StagedRollout::promote`] to move
    /// on (the coordinator may defer this while a stage stall pins the
    /// domain).
    StageClean {
        /// The completed stage's index.
        stage: usize,
        /// The completed stage's statistics.
        report: StageReport,
    },
    /// A guardrail fired; the machine is now terminally
    /// [`RolloutState::RolledBack`] — revert the fleet.
    RolledBack {
        /// The violating stage's index.
        stage: usize,
        /// The violating stage's statistics (carrying the violation).
        report: StageReport,
    },
}

/// Per-stage guardrail accumulator: the MAD screen, both groups' running
/// statistics, and the hard-strikes fast path. Both the blocking
/// ([`StagedRollout::execute`]) and stepwise ([`StagedRollout::step`])
/// paths feed samples through this one type, so their verdicts are
/// bit-identical by construction.
#[derive(Debug)]
struct StageObserver {
    mad: MadFilter,
    base: RunningStats,
    cand: RunningStats,
    screened: usize,
    strikes: usize,
    ticks: usize,
    violation: Option<StageViolation>,
}

impl StageObserver {
    fn new(config: &RolloutConfig) -> Self {
        StageObserver {
            mad: MadFilter::new(config.mad_window, config.mad_k),
            base: RunningStats::new(),
            cand: RunningStats::new(),
            screened: 0,
            strikes: 0,
            ticks: 0,
            violation: None,
        }
    }

    /// Feeds one sample; returns `true` when the stage is over (tick
    /// budget spent or the hard-strikes fast path fired).
    fn push(&mut self, config: &RolloutConfig, sample: &StagedSample) -> bool {
        self.ticks += 1;
        let done = self.ticks >= config.ticks_per_stage;
        let Some(cq) = sample.candidate_qps else {
            return done;
        };
        let diff = cq / sample.baseline_qps - 1.0;
        if diff < -3.0 * config.guard_loss {
            self.strikes += 1;
            if self.strikes >= config.max_strikes {
                self.violation = Some(StageViolation::HardStrikes);
                return true;
            }
        } else {
            self.strikes = 0;
        }
        if !self.mad.accept(diff) {
            self.screened += 1;
            return done;
        }
        self.base.push(sample.baseline_qps);
        self.cand.push(cq);
        done
    }

    /// Closes the stage: applies the Welch end-of-stage verdict (unless a
    /// mid-stage violation already fired) and produces the report.
    fn finish(
        self,
        config: &RolloutConfig,
        fraction: f64,
        staged: usize,
    ) -> Result<StageReport, RolloutError> {
        let baseline_qps = self.base.mean();
        let candidate_qps = self.cand.mean();
        let relative_diff = if baseline_qps > 0.0 {
            candidate_qps / baseline_qps - 1.0
        } else {
            0.0
        };
        let mut violation = self.violation;
        if violation.is_none() {
            violation = stage_end_verdict(config, &self.base, &self.cand)?;
        }
        Ok(StageReport {
            fraction,
            candidate_replicas: staged,
            ticks: self.ticks,
            screened: self.screened,
            baseline_qps,
            candidate_qps,
            relative_diff,
            violation,
        })
    }
}

/// Welch's guardrail at stage end: the candidate fails when it sits
/// significantly below the shifted baseline `b × (1 − guard_loss)`.
fn stage_end_verdict(
    config: &RolloutConfig,
    base: &RunningStats,
    cand: &RunningStats,
) -> Result<Option<StageViolation>, RolloutError> {
    if base.count() < 2 || cand.count() < 2 {
        // Too little surviving data to make a claim either way.
        return Ok(None);
    }
    let b = base.summary()?;
    let c = cand.summary()?;
    let scale = 1.0 - config.guard_loss;
    let floor = softsku_telemetry::stats::Summary::from_moments(
        b.count(),
        b.mean() * scale,
        b.variance() * scale * scale,
    );
    // `mean_diff = floor − candidate`: positive when the candidate sits
    // below the guard floor.
    let welch = welch_test(&floor, &c);
    if welch.mean_diff > 0.0 && welch.significant_at(config.confidence) {
        return Ok(Some(StageViolation::SignificantLoss));
    }
    Ok(None)
}

/// Drives a [`StagedFleet`] through the configured canary stages.
#[derive(Debug)]
pub struct StagedRollout {
    config: RolloutConfig,
    state: RolloutState,
    /// The in-flight stage accumulator of the stepwise path; `None` when
    /// driven through the blocking [`StagedRollout::execute`] path or when
    /// no stage is under observation.
    observer: Option<StageObserver>,
}

impl StagedRollout {
    /// Creates the state machine in [`RolloutState::Pending`].
    pub fn new(config: RolloutConfig) -> Self {
        StagedRollout {
            config,
            state: RolloutState::Pending,
            observer: None,
        }
    }

    /// Current state.
    pub fn state(&self) -> RolloutState {
        self.state
    }

    /// The guardrail configuration driving this rollout.
    pub fn config(&self) -> &RolloutConfig {
        &self.config
    }

    /// Begins stepwise observation: `Pending` → `Canary { stage: 0 }`.
    /// Returns the first stage's fleet fraction (stage the fleet toward it
    /// and start feeding samples through [`StagedRollout::step`]), or
    /// `None` when the machine is not pending or has no stages.
    pub fn begin(&mut self) -> Option<f64> {
        match self.state {
            RolloutState::Pending if !self.config.stages.is_empty() => {
                self.state = RolloutState::Canary { stage: 0 };
                self.observer = Some(StageObserver::new(&self.config));
                Some(self.config.stages[0])
            }
            _ => None,
        }
    }

    /// The fleet fraction of the stage currently under observation.
    pub fn current_fraction(&self) -> Option<f64> {
        match self.state {
            RolloutState::Canary { stage } => self.config.stages.get(stage).copied(),
            _ => None,
        }
    }

    /// Feeds one fleet sample to the stage under observation; `staged` is
    /// the candidate replica count the stage runs at (recorded into the
    /// stage report). Terminal or idle machines observe samples as no-ops,
    /// so a coordinator can keep ticking a rolled-back service's fleet
    /// without special-casing.
    ///
    /// # Errors
    ///
    /// Statistical-summary errors from the end-of-stage verdict.
    pub fn step(
        &mut self,
        sample: &StagedSample,
        staged: usize,
    ) -> Result<StepDecision, RolloutError> {
        let RolloutState::Canary { stage } = self.state else {
            return Ok(StepDecision::Observing);
        };
        let Some(observer) = self.observer.as_mut() else {
            return Ok(StepDecision::Observing);
        };
        if !observer.push(&self.config, sample) {
            return Ok(StepDecision::Observing);
        }
        // The observer was borrowed two lines up; take() cannot fail.
        let observer = self.observer.take().expect("observer present");
        let fraction = self.config.stages[stage];
        let report = observer.finish(&self.config, fraction, staged)?;
        if report.violation.is_some() {
            self.state = RolloutState::RolledBack { stage };
            return Ok(StepDecision::RolledBack { stage, report });
        }
        Ok(StepDecision::StageClean { stage, report })
    }

    /// Advances past a clean stage: `Canary { i }` → `Canary { i + 1 }`
    /// (returning the new stage's fraction) or → `Deployed` after the last
    /// stage (returning `None`). **A rolled-back machine never promotes**:
    /// this returns `None` and the state stays `RolledBack` — the
    /// invariant the property suite pins down.
    pub fn promote(&mut self) -> Option<f64> {
        let RolloutState::Canary { stage } = self.state else {
            return None;
        };
        let next = stage + 1;
        if next < self.config.stages.len() {
            self.state = RolloutState::Canary { stage: next };
            self.observer = Some(StageObserver::new(&self.config));
            Some(self.config.stages[next])
        } else {
            self.state = RolloutState::Deployed;
            self.observer = None;
            None
        }
    }

    /// Executes the staged rollout on `fleet`, recording every transition
    /// to the `rollout.*` ledger in `ods` under entity `service`.
    ///
    /// Series written: `rollout.stage` (fraction at each stage start),
    /// `rollout.promote` (stage index on promotion), `rollout.violation`
    /// (relative diff when a guardrail fires), `rollout.rollback` (stage
    /// index), and `rollout.deployed` (1.0 on full deployment).
    ///
    /// # Errors
    ///
    /// Fleet/engine errors and ODS append errors.
    pub fn execute(
        &mut self,
        fleet: &mut StagedFleet,
        service: &str,
        ods: &mut TieredOds,
    ) -> Result<RolloutReport, RolloutError> {
        self.execute_traced(fleet, service, ods, &mut TraceSink::disabled())
    }

    /// [`StagedRollout::execute`] with observability: a root `rollout` span
    /// on the sink's current track (time axis = the fleet's simulated
    /// clock), one child span per canary stage carrying the stage's
    /// statistics and verdict, instant leaf events for every promotion,
    /// rollback, and deployment, and a `rollout.relative_diff` counter
    /// sampled at each stage end.
    ///
    /// The rollout outcome and ledger contents are bit-identical with
    /// tracing on or off.
    ///
    /// # Errors
    ///
    /// Fleet/engine errors and ODS append errors.
    pub fn execute_traced(
        &mut self,
        fleet: &mut StagedFleet,
        service: &str,
        ods: &mut TieredOds,
        sink: &mut TraceSink,
    ) -> Result<RolloutReport, RolloutError> {
        let root = sink.open("rollout", &format!("rollout {service}"), fleet.time_s());
        sink.attr(root, "service", AttrValue::Str(service.to_string()));
        sink.attr(
            root,
            "stages",
            AttrValue::Int(self.config.stages.len() as i64),
        );
        let mut stages = Vec::with_capacity(self.config.stages.len());
        for (idx, &fraction) in self.config.stages.iter().enumerate() {
            self.state = RolloutState::Canary { stage: idx };
            let staged = fleet.stage_to(fraction);
            let stage_start = fleet.time_s();
            ods.append(
                &SeriesKey::new(service, "rollout.stage"),
                stage_start,
                fraction,
            )?;
            let span = sink.open("rollout.stage", &format!("stage {idx}"), stage_start);
            let report = self.observe_stage(fleet, fraction, staged)?;
            let now = fleet.time_s();
            sink.attr(span, "fraction", AttrValue::F64(fraction));
            sink.attr(
                span,
                "candidate_replicas",
                AttrValue::Int(report.candidate_replicas as i64),
            );
            sink.attr(span, "ticks", AttrValue::Int(report.ticks as i64));
            sink.attr(span, "screened", AttrValue::Int(report.screened as i64));
            sink.attr(span, "baseline_qps", AttrValue::F64(report.baseline_qps));
            sink.attr(span, "candidate_qps", AttrValue::F64(report.candidate_qps));
            sink.attr(span, "relative_diff", AttrValue::F64(report.relative_diff));
            if let Some(v) = report.violation {
                sink.attr(span, "violation", AttrValue::Str(format!("{v:?}")));
            }
            sink.counter("rollout.relative_diff", now, report.relative_diff);
            let violated = report.violation.is_some();
            let diff = report.relative_diff;
            stages.push(report);
            if violated {
                fleet.rollback();
                let t = fleet.time_s();
                ods.append(&SeriesKey::new(service, "rollout.violation"), t, diff)?;
                ods.append(&SeriesKey::new(service, "rollout.rollback"), t, idx as f64)?;
                let ev = sink.leaf("rollout.event", "rollback", t, 0.0);
                sink.attr(ev, "stage", AttrValue::Int(idx as i64));
                sink.attr(ev, "relative_diff", AttrValue::F64(diff));
                sink.close(span, t);
                self.state = RolloutState::RolledBack { stage: idx };
                sink.attr(root, "state", AttrValue::Str("rolled-back".to_string()));
                sink.close(root, t);
                return Ok(RolloutReport {
                    state: self.state,
                    stages,
                });
            }
            ods.append(&SeriesKey::new(service, "rollout.promote"), now, idx as f64)?;
            let ev = sink.leaf("rollout.event", "promote", now, 0.0);
            sink.attr(ev, "stage", AttrValue::Int(idx as i64));
            sink.close(span, now);
        }
        self.state = RolloutState::Deployed;
        let t = fleet.time_s();
        ods.append(&SeriesKey::new(service, "rollout.deployed"), t, 1.0)?;
        sink.leaf("rollout.event", "deployed", t, 0.0);
        sink.attr(root, "state", AttrValue::Str("deployed".to_string()));
        sink.close(root, t);
        Ok(RolloutReport {
            state: self.state,
            stages,
        })
    }

    /// Observes one stage for `ticks_per_stage` ticks and applies the
    /// guardrails.
    fn observe_stage(
        &self,
        fleet: &mut StagedFleet,
        fraction: f64,
        staged: usize,
    ) -> Result<StageReport, RolloutError> {
        let mut observer = StageObserver::new(&self.config);
        while observer.ticks < self.config.ticks_per_stage {
            let sample: StagedSample = fleet.tick()?;
            if observer.push(&self.config, &sample) {
                break;
            }
        }
        observer.finish(&self.config, fraction, staged)
    }
}
