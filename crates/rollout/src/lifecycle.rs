//! The closed tune → compose → rollout → monitor → re-tune loop.
//!
//! [`RolloutPipeline`] is the subsystem's front door: it tunes one service
//! with the core fleet tuner, composes the per-knob winners into a soft SKU
//! ([`SkuComposer`]), walks the SKU through staged canary deployment
//! ([`StagedRollout`]), then leaves a [`DriftMonitor`] watching the live
//! fleet. When drift fires, the scoped [`RetuneRequest`] re-enters the loop
//! — re-tune, re-compose, re-deploy — exactly once per run, which is the
//! paper's "ongoing process" (Sec. 7) closed into a single deterministic
//! cycle: every stage derives its randomness from the lifecycle base seed
//! through registered stream families, so the whole report is a pure
//! function of `(config, seed)`.

use crate::compose::{ComposerConfig, Composition, SkuComposer};
use crate::drift::{DeployedSku, DriftConfig, DriftMonitor, DriftOutcome, RetuneRequest};
use crate::error::RolloutError;
use crate::rollout::{RolloutConfig, RolloutReport, StagedRollout};
use softsku_archsim::engine::ServerConfig;
use softsku_cluster::{AbEnvironment, EnvConfig, StagedFleet, StagedFleetConfig};
use softsku_knobs::Knob;
use softsku_telemetry::streams::IdentitySeed;
use softsku_telemetry::trace::{AttrValue, TraceSink};
use softsku_telemetry::{Ods, TieredOds};
use softsku_workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;
use usku::abtest::AbTestConfig;
use usku::map::DesignSpaceMap;
use usku::metric::PerformanceMetric;
use usku::scheduler::FleetTuner;

/// Every parameter of one lifecycle run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// A/B stopping rules for tuning and composition validation.
    pub abtest: AbTestConfig,
    /// A/B environment parameters.
    pub env: EnvConfig,
    /// Composer validation parameters.
    pub composer: ComposerConfig,
    /// Staged-rollout guardrails.
    pub rollout: RolloutConfig,
    /// Drift-detection parameters.
    pub drift: DriftConfig,
    /// Staged-fleet simulation parameters (drift injection lives here).
    pub staged: StagedFleetConfig,
    /// Worker-pool size for tuning and validation (wall-clock only; results
    /// are bit-identical for any value).
    pub workers: NonZeroUsize,
    /// The lifecycle base seed every stream derives from.
    pub base_seed: u64,
}

impl PipelineConfig {
    /// Small, fast parameters for tests and smoke runs.
    pub fn fast_test(base_seed: u64) -> Self {
        PipelineConfig {
            abtest: AbTestConfig::fast_test(),
            env: EnvConfig::fast_test(),
            composer: ComposerConfig::fast_test(),
            rollout: RolloutConfig::fast_test(),
            drift: DriftConfig::fast_test(),
            staged: StagedFleetConfig::fast_test(),
            workers: usku::scheduler::default_workers(),
            base_seed,
        }
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: NonZeroUsize) -> Self {
        self.workers = workers;
        self
    }
}

/// One compose → rollout pass.
#[derive(Debug)]
pub struct CycleReport {
    /// The composition decision and deployed configuration.
    pub composition: Composition,
    /// The staged rollout, absent when the composition fell back to the
    /// baseline (nothing to deploy).
    pub rollout: Option<RolloutReport>,
}

impl CycleReport {
    /// Whether this cycle ended with the SKU serving the fleet.
    pub fn deployed(&self) -> bool {
        self.rollout.as_ref().is_some_and(RolloutReport::deployed)
    }
}

/// The drift-triggered second pass.
#[derive(Debug)]
pub struct RetunedCycle {
    /// The re-tune order drift produced.
    pub request: RetuneRequest,
    /// The re-tuned design-space map's winner count.
    pub winners: usize,
    /// The re-compose → re-rollout pass.
    pub cycle: CycleReport,
}

/// Everything one lifecycle run produced.
#[derive(Debug)]
pub struct LifecycleReport {
    /// The service taken through the lifecycle.
    pub service: Microservice,
    /// Its platform.
    pub platform: PlatformKind,
    /// The initial tune → compose → rollout pass.
    pub initial: CycleReport,
    /// Drift monitoring, present when the initial pass deployed.
    pub drift: Option<DriftOutcome>,
    /// The re-tuned pass, present when drift fired.
    pub retuned: Option<RetunedCycle>,
    /// Per-campaign tuning telemetry (`tune.wall_s`/`tune.sim_s` series),
    /// one ledger per tuning campaign in run order — separate ledgers
    /// because each campaign restarts its plan-indexed time axis.
    pub tuning: Vec<Ods>,
    /// The `rollout.*` transition ledger, one continuous fleet-time axis,
    /// stored with tiered retention ([`TieredOds::rollout_ledger`]) so a
    /// long-lived fleet runs on bounded memory.
    pub rollout_ods: TieredOds,
}

impl LifecycleReport {
    /// Whether a SKU (initial or re-tuned) ended the run deployed.
    pub fn deployed(&self) -> bool {
        match &self.retuned {
            Some(r) => r.cycle.deployed(),
            None => self.initial.deployed(),
        }
    }

    /// Renders a human-readable lifecycle summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "rollout lifecycle — {} on {}\n",
            self.service, self.platform
        );
        render_cycle(&mut out, "initial", &self.initial);
        match &self.drift {
            Some(d) => {
                out.push_str(&format!("  drift: {:?}\n", d.verdict));
            }
            None => out.push_str("  drift: not monitored\n"),
        }
        if let Some(r) = &self.retuned {
            out.push_str(&format!(
                "  re-tune: {} knobs, seed {:#x}, {} winners\n",
                r.request.knobs.len(),
                r.request.base_seed,
                r.winners
            ));
            render_cycle(&mut out, "retuned", &r.cycle);
        }
        out.push_str(&format!(
            "  final: {}\n",
            if self.deployed() {
                "deployed"
            } else {
                "baseline"
            }
        ));
        out
    }
}

fn render_cycle(out: &mut String, label: &str, cycle: &CycleReport) {
    out.push_str(&format!(
        "  {label}: {:?} gain {:+.2}%\n",
        cycle.composition.decision,
        cycle.composition.measured_gain * 100.0
    ));
    if let Some(rollout) = &cycle.rollout {
        for s in &rollout.stages {
            out.push_str(&format!(
                "    stage {:>4.0}% × {:>3} replicas: diff {:+.2}% {}\n",
                s.fraction * 100.0,
                s.candidate_replicas,
                s.relative_diff * 100.0,
                match s.violation {
                    Some(v) => format!("VIOLATION {v:?}"),
                    None => "ok".to_string(),
                }
            ));
        }
        out.push_str(&format!("    state: {:?}\n", rollout.state));
    }
}

/// Runs the full lifecycle for one service.
#[derive(Debug)]
pub struct RolloutPipeline {
    config: PipelineConfig,
}

impl RolloutPipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        RolloutPipeline { config }
    }

    /// Drives `service` through tune → compose → staged rollout → drift
    /// watch, and — when drift fires — one scoped re-tune, re-compose, and
    /// re-rollout on the same live fleet.
    ///
    /// # Errors
    ///
    /// Tuning, environment, fleet, and telemetry errors.
    pub fn run(
        &self,
        service: Microservice,
        platform: PlatformKind,
        knobs: &[Knob],
    ) -> Result<LifecycleReport, RolloutError> {
        self.run_traced(service, platform, knobs, &mut TraceSink::disabled())
    }

    /// [`RolloutPipeline::run`] with observability: the whole lifecycle
    /// becomes one span tree. A `lifecycle` root span (on a `lifecycle`
    /// track whose synthetic time axis counts phases) holds one `phase`
    /// span per step — tune, compose, rollout, drift, and the re-tuned
    /// second cycle — and each step's own spans nest inside its phase:
    /// tuning campaigns on `tune:<service>@<platform>` tracks (cumulative
    /// sim-seconds), composition on `compose#N` tracks (validation
    /// sim-seconds), rollout and drift on the shared `fleet` track (the
    /// staged fleet's continuous simulated clock).
    ///
    /// Everything is recorded on this orchestration thread in canonical
    /// order, so the trace — like the report — is a pure function of
    /// `(config, seed)`: bit-identical across worker counts and across
    /// traced/untraced runs.
    ///
    /// # Errors
    ///
    /// Tuning, environment, fleet, and telemetry errors.
    pub fn run_traced(
        &self,
        service: Microservice,
        platform: PlatformKind,
        knobs: &[Knob],
        sink: &mut TraceSink,
    ) -> Result<LifecycleReport, RolloutError> {
        let lifecycle_track = sink.track("lifecycle");
        sink.set_track(lifecycle_track);
        let root = sink.open("lifecycle", &format!("lifecycle {}", service.name()), 0.0);
        sink.attr(root, "service", AttrValue::Str(service.name().to_string()));
        sink.attr(root, "platform", AttrValue::Str(platform.to_string()));
        sink.attr(
            root,
            "base_seed",
            AttrValue::Str(format!("{:#018x}", self.config.base_seed)),
        );
        let mut phases = 0.0;
        let result = self.run_inner(service, platform, knobs, sink, lifecycle_track, &mut phases);
        sink.set_track(lifecycle_track);
        if let Ok(r) = &result {
            sink.attr(root, "deployed", AttrValue::Bool(r.deployed()));
        }
        sink.close(root, phases);
        result
    }

    /// The lifecycle body; `phases` counts completed phase spans on the
    /// `lifecycle` track's synthetic axis.
    fn run_inner(
        &self,
        service: Microservice,
        platform: PlatformKind,
        knobs: &[Knob],
        sink: &mut TraceSink,
        lifecycle_track: u32,
        phases: &mut f64,
    ) -> Result<LifecycleReport, RolloutError> {
        let cfg = &self.config;
        let profile = service.profile(platform)?;
        let baseline = profile.production_config.clone();
        let mut tuning = Vec::new();
        let mut rollout_ods = TieredOds::rollout_ledger();

        // 1. Tune: the core fleet tuner sweeps the knob subset.
        let ph = sink.open("phase", "tune", *phases);
        let (map, ods) = self.tune(service, platform, knobs, cfg.base_seed, sink)?;
        sink.set_track(lifecycle_track);
        sink.close(ph, *phases + 1.0);
        *phases += 1.0;
        tuning.push(ods);

        // 2. Compose the winners and validate jointly.
        let ph = sink.open("phase", "compose", *phases);
        let track = sink.track("compose#0");
        sink.set_track(track);
        let composition = self.compose(service, platform, &baseline, &map, cfg.base_seed, sink)?;
        sink.set_track(lifecycle_track);
        sink.close(ph, *phases + 1.0);
        *phases += 1.0;

        if composition.decision == crate::compose::CompositionDecision::Baseline {
            return Ok(LifecycleReport {
                service,
                platform,
                initial: CycleReport {
                    composition,
                    rollout: None,
                },
                drift: None,
                retuned: None,
                tuning,
                rollout_ods,
            });
        }

        // 3. Staged rollout on the service's replica fleet.
        let fleet_seed = IdentitySeed::new(cfg.base_seed)
            .field(service.name())
            .field("staged-fleet")
            .field(&platform.to_string())
            .finish();
        let mut fleet = StagedFleet::new(
            profile.clone(),
            baseline.clone(),
            composition.config.clone(),
            cfg.staged,
            fleet_seed,
        )?;
        let mut rollout = StagedRollout::new(cfg.rollout.clone());
        let ph = sink.open("phase", "rollout", *phases);
        let track = sink.track("fleet");
        sink.set_track(track);
        let report = rollout.execute_traced(&mut fleet, service.name(), &mut rollout_ods, sink)?;
        sink.set_track(lifecycle_track);
        sink.close(ph, *phases + 1.0);
        *phases += 1.0;
        let deployed_knobs = composition.deployed_knobs();
        let initial = CycleReport {
            composition,
            rollout: Some(report),
        };
        if !initial.deployed() {
            return Ok(LifecycleReport {
                service,
                platform,
                initial,
                drift: None,
                retuned: None,
                tuning,
                rollout_ods,
            });
        }

        // 4. Drift watch on the live fleet (code pushes keep landing).
        let sku = DeployedSku {
            service,
            platform,
            knobs: deployed_knobs,
            base_seed: cfg.base_seed,
        };
        let monitor = DriftMonitor::new(cfg.drift);
        let ph = sink.open("phase", "drift", *phases);
        let track = sink.track("fleet");
        sink.set_track(track);
        let drift = monitor.watch_traced(&mut fleet, &sku, &mut rollout_ods, sink)?;
        sink.set_track(lifecycle_track);
        sink.close(ph, *phases + 1.0);
        *phases += 1.0;
        let Some(request) = drift.retune.clone() else {
            return Ok(LifecycleReport {
                service,
                platform,
                initial,
                drift: Some(drift),
                retuned: None,
                tuning,
                rollout_ods,
            });
        };

        // 5. Scoped re-tune against current code, then re-deploy through
        // the same staged guardrails on the same live fleet.
        let ph = sink.open("phase", "re-tune", *phases);
        let (remap, ods) = self.tune(
            request.service,
            request.platform,
            &request.knobs,
            request.base_seed,
            sink,
        )?;
        sink.set_track(lifecycle_track);
        sink.close(ph, *phases + 1.0);
        *phases += 1.0;
        tuning.push(ods);
        let ph = sink.open("phase", "re-compose", *phases);
        let track = sink.track("compose#1");
        sink.set_track(track);
        let recomposition = self.compose(
            service,
            platform,
            &baseline,
            &remap,
            request.base_seed,
            sink,
        )?;
        sink.set_track(lifecycle_track);
        sink.close(ph, *phases + 1.0);
        *phases += 1.0;
        let winners = remap.winners().len();
        let cycle = if recomposition.decision == crate::compose::CompositionDecision::Baseline {
            // Nothing validated; the fleet stays rolled back to baseline.
            fleet.rollback();
            CycleReport {
                composition: recomposition,
                rollout: None,
            }
        } else {
            let needs_reboot = recomposition.config.active_cores != baseline.active_cores
                || recomposition.config.shp_pages != baseline.shp_pages;
            fleet.deploy_candidate(recomposition.config.clone(), needs_reboot)?;
            let mut redo = StagedRollout::new(cfg.rollout.clone());
            let ph = sink.open("phase", "re-rollout", *phases);
            let track = sink.track("fleet");
            sink.set_track(track);
            let report = redo.execute_traced(&mut fleet, service.name(), &mut rollout_ods, sink)?;
            sink.set_track(lifecycle_track);
            sink.close(ph, *phases + 1.0);
            *phases += 1.0;
            CycleReport {
                composition: recomposition,
                rollout: Some(report),
            }
        };
        Ok(LifecycleReport {
            service,
            platform,
            initial,
            drift: Some(drift),
            retuned: Some(RetunedCycle {
                request,
                winners,
                cycle,
            }),
            tuning,
            rollout_ods,
        })
    }

    /// One tuning campaign; returns the design-space map and its telemetry.
    fn tune(
        &self,
        service: Microservice,
        platform: PlatformKind,
        knobs: &[Knob],
        base_seed: u64,
        sink: &mut TraceSink,
    ) -> Result<(DesignSpaceMap, Ods), RolloutError> {
        let cfg = &self.config;
        let tuner = FleetTuner::new(cfg.abtest, cfg.env, base_seed)
            .with_workers(cfg.workers)
            .with_knobs(knobs.to_vec());
        let mut outcome = tuner.tune_traced(&[(service, platform)], sink)?;
        // tune() returns one ServiceTuning per target; exactly one target.
        let tuned = outcome.services.pop().expect("one target, one tuning");
        Ok((tuned.outcome.map, outcome.ods))
    }

    /// One composition pass on a fresh proto environment derived from
    /// `base_seed`.
    #[allow(clippy::too_many_arguments)]
    fn compose(
        &self,
        service: Microservice,
        platform: PlatformKind,
        baseline: &ServerConfig,
        map: &DesignSpaceMap,
        base_seed: u64,
        sink: &mut TraceSink,
    ) -> Result<Composition, RolloutError> {
        let cfg = &self.config;
        let proto_seed = IdentitySeed::new(base_seed)
            .field(service.name())
            .field("compose-proto")
            .field(&platform.to_string())
            .finish();
        let profile = service.profile(platform)?;
        let mut proto = AbEnvironment::new(profile, cfg.env, proto_seed)?;
        let composer = SkuComposer::new(
            cfg.abtest,
            PerformanceMetric::recommended_for(service),
            cfg.composer,
            base_seed,
        )
        .with_workers(cfg.workers);
        composer.compose_traced(&mut proto, baseline, map, sink)
    }
}
