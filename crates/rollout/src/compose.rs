//! Soft-SKU composition with interaction detection (paper Secs. 5.3/6).
//!
//! The design-space map holds *per-knob* winners, each measured alone
//! against the production baseline. The paper's soft SKU applies them
//! together — but knobs interact (Sec. 6: "the benefits of individual knob
//! configurations are not additive"), so the composed configuration must be
//! re-validated jointly before it earns fleet deployment. [`SkuComposer`]
//! runs that joint validation as parallel scheduler replicas and, when the
//! composition underperforms the best single knob, demotes the SKU to the
//! strongest per-knob winner that still survives validation.

use crate::error::RolloutError;
use softsku_archsim::engine::ServerConfig;
use softsku_cluster::AbEnvironment;
use softsku_knobs::{Knob, KnobSetting};
use softsku_telemetry::streams::IdentitySeed;
use softsku_telemetry::trace::{AttrValue, TraceSink};
use std::num::NonZeroUsize;
use usku::abtest::{AbTestConfig, AbTestResult, AbTester};
use usku::map::DesignSpaceMap;
use usku::metric::PerformanceMetric;
use usku::profile::ArmCpiStacks;
use usku::scheduler::{run_replicas, trace_test_span, ReplicaOutput};

/// Validation parameters of the composer.
#[derive(Debug, Clone, Copy)]
pub struct ComposerConfig {
    /// Independent A/B validation replicas per candidate configuration; the
    /// combined verdict needs a strict majority of `Better` outcomes.
    pub replicas: usize,
    /// The composed SKU must retain at least this fraction of the best
    /// single knob's *measured* gain, or it is demoted (interaction
    /// detection).
    pub min_composed_fraction: f64,
}

impl ComposerConfig {
    /// Small, fast parameters for tests and smoke runs.
    pub fn fast_test() -> Self {
        ComposerConfig {
            replicas: 3,
            min_composed_fraction: 0.8,
        }
    }
}

impl Default for ComposerConfig {
    fn default() -> Self {
        ComposerConfig {
            replicas: 5,
            min_composed_fraction: 0.9,
        }
    }
}

/// What the composer decided to deploy.
#[derive(Debug, Clone, PartialEq)]
pub enum CompositionDecision {
    /// The jointly validated composition of every per-knob winner.
    Composed {
        /// The knobs whose winners were composed.
        knobs: Vec<Knob>,
    },
    /// Knob interactions sank the composition; the strongest per-knob
    /// winner that survived validation is deployed alone.
    PerKnobFallback {
        /// The surviving knob.
        knob: Knob,
        /// Its winning setting.
        setting: KnobSetting,
    },
    /// Nothing survived validation; the production baseline stands.
    Baseline,
}

/// Joint validation of one candidate configuration across replicas.
#[derive(Debug, Clone)]
pub struct CandidateValidation {
    /// Display label of the candidate.
    pub label: String,
    /// Whether a strict majority of replicas returned `Better`.
    pub accepted: bool,
    /// Median measured gain across the `Better` replicas (0.0 if none).
    pub gain: f64,
    /// Replicas that returned `Better`.
    pub better_votes: usize,
    /// Replicas run.
    pub replicas: usize,
    /// The per-replica A/B results, in replica order.
    pub results: Vec<AbTestResult>,
    /// Simulated machine-seconds consumed across the replicas.
    pub sim_time_s: f64,
}

/// The composed-SKU outcome.
#[derive(Debug)]
pub struct Composition {
    /// What to deploy.
    pub decision: CompositionDecision,
    /// The deployable configuration (the baseline itself for
    /// [`CompositionDecision::Baseline`]).
    pub config: ServerConfig,
    /// Measured gain of the deployed configuration (0.0 for baseline).
    pub measured_gain: f64,
    /// The per-knob winners the map claimed, in knob order.
    pub winners: Vec<(Knob, KnobSetting, f64)>,
    /// Every joint validation run, in decision order.
    pub validations: Vec<CandidateValidation>,
}

impl Composition {
    /// The knobs the deployed configuration changes relative to baseline.
    pub fn deployed_knobs(&self) -> Vec<Knob> {
        match &self.decision {
            CompositionDecision::Composed { knobs } => knobs.clone(),
            CompositionDecision::PerKnobFallback { knob, .. } => vec![*knob],
            CompositionDecision::Baseline => Vec::new(),
        }
    }
}

impl CompositionDecision {
    /// Stable lowercase category label, used as a trace attribute and in
    /// `skuctl` output.
    pub fn label(&self) -> &'static str {
        match self {
            CompositionDecision::Composed { .. } => "composed",
            CompositionDecision::PerKnobFallback { .. } => "per-knob-fallback",
            CompositionDecision::Baseline => "baseline",
        }
    }
}

/// Composes per-knob winners into a soft SKU and validates the composition
/// jointly on parallel environment replicas.
#[derive(Debug)]
pub struct SkuComposer {
    tester: AbTester,
    config: ComposerConfig,
    base_seed: u64,
    workers: NonZeroUsize,
}

/// One validation replica: its derived seed.
struct ValidationUnit {
    seed: u64,
}

impl SkuComposer {
    /// Creates a composer with the given A/B stopping rules, metric, and
    /// validation parameters.
    pub fn new(
        abtest: AbTestConfig,
        metric: PerformanceMetric,
        config: ComposerConfig,
        base_seed: u64,
    ) -> Self {
        SkuComposer {
            tester: AbTester::new(abtest, metric),
            config,
            base_seed,
            workers: usku::scheduler::default_workers(),
        }
    }

    /// Overrides the worker count used for validation replicas.
    pub fn with_workers(mut self, workers: NonZeroUsize) -> Self {
        self.workers = workers;
        self
    }

    /// Composes the map's per-knob winners onto `baseline` and validates.
    ///
    /// With no winners the baseline stands. With one winner the composition
    /// *is* that winner, so a single validation decides between it and the
    /// baseline. With several, both the composition and the best single
    /// winner are measured; the composition deploys only if it is accepted
    /// and keeps [`ComposerConfig::min_composed_fraction`] of the single
    /// knob's measured gain — otherwise winners are retried alone in
    /// descending claimed-gain order until one validates.
    ///
    /// # Errors
    ///
    /// Tester/environment errors; rejections are decisions, not errors.
    pub fn compose(
        &self,
        proto: &mut AbEnvironment,
        baseline: &ServerConfig,
        map: &DesignSpaceMap,
    ) -> Result<Composition, RolloutError> {
        self.compose_traced(proto, baseline, map, &mut TraceSink::disabled())
    }

    /// [`SkuComposer::compose`] with observability: a root `compose` span
    /// on the sink's current track (time axis = cumulative validation
    /// sim time) carrying the decision and measured gain, one child span
    /// per joint validation, and one grandchild span per validation
    /// replica with the full A/B record and per-arm TMAM attribution.
    ///
    /// Spans are recorded post-merge in canonical order; the composition
    /// outcome is bit-identical with tracing on or off.
    ///
    /// # Errors
    ///
    /// Tester/environment errors; rejections are decisions, not errors.
    pub fn compose_traced(
        &self,
        proto: &mut AbEnvironment,
        baseline: &ServerConfig,
        map: &DesignSpaceMap,
        sink: &mut TraceSink,
    ) -> Result<Composition, RolloutError> {
        let service = proto.profile().service.name().to_string();
        let root = sink.open("compose", &format!("compose {service}"), 0.0);
        sink.attr(root, "service", AttrValue::Str(service));
        let mut cursor = 0.0;
        let result = self.compose_inner(proto, baseline, map, sink, &mut cursor);
        match &result {
            Ok(c) => {
                sink.attr(
                    root,
                    "decision",
                    AttrValue::Str(c.decision.label().to_string()),
                );
                sink.attr(root, "measured_gain", AttrValue::F64(c.measured_gain));
                sink.attr(root, "winners", AttrValue::Int(c.winners.len() as i64));
            }
            Err(_) => sink.attr(root, "decision", AttrValue::Str("error".to_string())),
        }
        sink.close(root, cursor);
        result
    }

    fn compose_inner(
        &self,
        proto: &mut AbEnvironment,
        baseline: &ServerConfig,
        map: &DesignSpaceMap,
        sink: &mut TraceSink,
        cursor: &mut f64,
    ) -> Result<Composition, RolloutError> {
        let winners = map.winners();
        let mut validations = Vec::new();
        if winners.is_empty() {
            return Ok(Composition {
                decision: CompositionDecision::Baseline,
                config: baseline.clone(),
                measured_gain: 0.0,
                winners,
                validations,
            });
        }

        let mut composed = baseline.clone();
        for (_, setting, _) in &winners {
            setting
                .apply(&mut composed)
                .map_err(usku::UskuError::Knob)?;
        }
        let composed_label = winners[winners.len() - 1].1;
        let composed_name = winners
            .iter()
            .map(|(_, s, _)| s.to_string())
            .collect::<Vec<_>>()
            .join(" + ");
        warm_baseline(proto, baseline);

        let composed_v = self.validate(
            proto,
            baseline,
            &composed,
            composed_label,
            &composed_name,
            sink,
            cursor,
        )?;
        let composed_accepted = composed_v.accepted;
        let composed_gain = composed_v.gain;
        validations.push(composed_v);

        if winners.len() == 1 {
            // One winner: the composition and the per-knob SKU coincide.
            let decision = if composed_accepted {
                CompositionDecision::Composed {
                    knobs: vec![winners[0].0],
                }
            } else {
                CompositionDecision::Baseline
            };
            return Ok(self.finish(
                decision,
                baseline,
                composed,
                composed_gain,
                winners,
                validations,
            ));
        }

        // Interaction detection: measure the strongest single claim under
        // the same validation regime and compare measured gains.
        let (bk, bs, _) = map.best_single().expect("winners exist");
        let single_v = self.validate_single(proto, baseline, bs, sink, cursor)?;
        let single_accepted = single_v.accepted;
        let single_gain = single_v.gain;
        validations.push(single_v);

        let composed_holds = composed_accepted
            && (!single_accepted
                || composed_gain >= self.config.min_composed_fraction * single_gain);
        if composed_holds {
            let knobs = winners.iter().map(|(k, _, _)| *k).collect();
            return Ok(self.finish(
                CompositionDecision::Composed { knobs },
                baseline,
                composed,
                composed_gain,
                winners,
                validations,
            ));
        }
        if single_accepted {
            let mut config = baseline.clone();
            bs.apply(&mut config).map_err(usku::UskuError::Knob)?;
            return Ok(self.finish(
                CompositionDecision::PerKnobFallback {
                    knob: bk,
                    setting: bs,
                },
                baseline,
                config,
                single_gain,
                winners,
                validations,
            ));
        }

        // The best single claim failed too; retry the remaining winners in
        // descending claimed-gain order (stable sort keeps knob order on
        // ties, so the scan order is canonical).
        let mut ranked = winners.clone();
        ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
        for (knob, setting, _) in ranked {
            if setting == bs {
                continue; // already measured above
            }
            let v = self.validate_single(proto, baseline, setting, sink, cursor)?;
            let accepted = v.accepted;
            let gain = v.gain;
            validations.push(v);
            if accepted {
                let mut config = baseline.clone();
                setting.apply(&mut config).map_err(usku::UskuError::Knob)?;
                return Ok(self.finish(
                    CompositionDecision::PerKnobFallback { knob, setting },
                    baseline,
                    config,
                    gain,
                    winners,
                    validations,
                ));
            }
        }
        Ok(self.finish(
            CompositionDecision::Baseline,
            baseline,
            baseline.clone(),
            0.0,
            winners,
            validations,
        ))
    }

    fn finish(
        &self,
        decision: CompositionDecision,
        baseline: &ServerConfig,
        config: ServerConfig,
        measured_gain: f64,
        winners: Vec<(Knob, KnobSetting, f64)>,
        validations: Vec<CandidateValidation>,
    ) -> Composition {
        let config = if decision == CompositionDecision::Baseline {
            baseline.clone()
        } else {
            config
        };
        Composition {
            decision,
            config,
            measured_gain,
            winners,
            validations,
        }
    }

    fn validate_single(
        &self,
        proto: &AbEnvironment,
        baseline: &ServerConfig,
        setting: KnobSetting,
        sink: &mut TraceSink,
        cursor: &mut f64,
    ) -> Result<CandidateValidation, RolloutError> {
        let mut config = baseline.clone();
        setting.apply(&mut config).map_err(usku::UskuError::Knob)?;
        self.validate(
            proto,
            baseline,
            &config,
            setting,
            &setting.to_string(),
            sink,
            cursor,
        )
    }

    /// Validates one candidate configuration on `replicas` forked
    /// environments, each seeded purely from the candidate's identity and
    /// the replica index — the verdict cannot depend on worker count.
    ///
    /// When the sink is enabled, records a `compose.validate` span at the
    /// caller's cumulative sim-time cursor with one child span per replica
    /// (spans laid down post-merge, in replica order), and advances the
    /// cursor by the validation's total simulated time.
    #[allow(clippy::too_many_arguments)]
    fn validate(
        &self,
        proto: &AbEnvironment,
        baseline: &ServerConfig,
        candidate: &ServerConfig,
        label: KnobSetting,
        name: &str,
        sink: &mut TraceSink,
        cursor: &mut f64,
    ) -> Result<CandidateValidation, RolloutError> {
        let service = proto.profile().service.name();
        let platform = proto.profile().platform.to_string();
        let units: Vec<ValidationUnit> = (0..self.config.replicas.max(1))
            .map(|i| ValidationUnit {
                seed: IdentitySeed::new(self.base_seed)
                    .field(service)
                    .field("compose.validate")
                    .field(name)
                    .field(&i.to_string())
                    .finish(),
            })
            .collect();
        let needs_reboot = candidate.active_cores != baseline.active_cores
            || candidate.shp_pages != baseline.shp_pages;
        let probe_cpi = sink.is_enabled();
        let runs = run_replicas(&units, self.workers.get(), |unit: &ValidationUnit| {
            let mut env = proto.fork(unit.seed);
            let result =
                self.tester
                    .run_config(&mut env, baseline, candidate, needs_reboot, label)?;
            // Sim time read before the (read-only) CPI probe, so traced and
            // untraced runs report identical numbers.
            let sim_time_s = env.time_s();
            let mut out = ReplicaOutput::new(result, sim_time_s);
            if probe_cpi {
                out.cpi = ArmCpiStacks::capture(&mut env);
            }
            Ok(out)
        })
        .map_err(RolloutError::Usku)?;

        let sim_time_s: f64 = runs.iter().map(|r| r.sim_time_s).sum();
        let mut gains: Vec<f64> = runs
            .iter()
            .filter_map(|r| r.result.verdict.gain())
            .collect();
        gains.sort_by(f64::total_cmp);
        let better_votes = gains.len();
        let accepted = better_votes * 2 > units.len();
        // Lower median of the winning replicas' gains: a conservative,
        // order-independent point estimate.
        let gain = if accepted {
            gains[(better_votes - 1) / 2]
        } else {
            0.0
        };

        if sink.is_enabled() {
            let span = sink.open("compose.validate", name, *cursor);
            sink.attr(span, "candidate", AttrValue::Str(name.to_string()));
            sink.attr(span, "accepted", AttrValue::Bool(accepted));
            sink.attr(span, "gain", AttrValue::F64(gain));
            sink.attr(span, "better_votes", AttrValue::Int(better_votes as i64));
            sink.attr(span, "replicas", AttrValue::Int(units.len() as i64));
            let mut t = *cursor;
            for (unit, run) in units.iter().zip(&runs) {
                trace_test_span(
                    sink,
                    service,
                    &platform,
                    run,
                    unit.seed,
                    t,
                    self.tester.config().confidence,
                );
                t += run.sim_time_s;
            }
            sink.close(span, *cursor + sim_time_s);
        }
        *cursor += sim_time_s;

        let results: Vec<AbTestResult> = runs.into_iter().map(|r| r.result).collect();
        Ok(CandidateValidation {
            label: name.to_string(),
            accepted,
            gain,
            better_votes,
            replicas: units.len(),
            results,
            sim_time_s,
        })
    }
}

/// Pre-evaluates the baseline load curve on the proto environment so every
/// validation fork inherits it from the cloned arm (same warm-up the core
/// scheduler performs).
fn warm_baseline(proto: &mut AbEnvironment, baseline: &ServerConfig) {
    let arm = proto.arm_mut(softsku_cluster::Arm::A);
    if arm.reconfigure(baseline.clone(), false).is_ok() {
        let _ = arm.mips(1.0);
    }
}
