//! The seven configurable server knobs (paper Sec. 5).

use crate::error::KnobError;
use softsku_archsim::cache::CdpPartition;
use softsku_archsim::engine::ServerConfig;
use softsku_archsim::pagemap::ThpMode;
use softsku_archsim::prefetch::PrefetcherConfig;

/// Identifies one of the seven knobs µSKU tunes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Knob {
    /// Core-domain frequency (MSR-controlled, Sec. 5 knob 1).
    CoreFrequency,
    /// Uncore-domain frequency (Sec. 5 knob 2).
    UncoreFrequency,
    /// Active physical core count via `isolcpus` + reboot (knob 3).
    CoreCount,
    /// Code/data prioritization in the LLC ways via Intel RDT (knob 4).
    Cdp,
    /// Hardware prefetcher enables (knob 5).
    Prefetcher,
    /// Transparent huge pages (knob 6).
    Thp,
    /// Statically-allocated huge pages (knob 7).
    Shp,
}

impl Knob {
    /// All knobs in the paper's order.
    pub const ALL: [Knob; 7] = [
        Knob::CoreFrequency,
        Knob::UncoreFrequency,
        Knob::CoreCount,
        Knob::Cdp,
        Knob::Prefetcher,
        Knob::Thp,
        Knob::Shp,
    ];

    /// Short identifier used in input files and reports.
    pub fn name(self) -> &'static str {
        match self {
            Knob::CoreFrequency => "core_frequency",
            Knob::UncoreFrequency => "uncore_frequency",
            Knob::CoreCount => "core_count",
            Knob::Cdp => "cdp",
            Knob::Prefetcher => "prefetcher",
            Knob::Thp => "thp",
            Knob::Shp => "shp",
        }
    }

    /// Parses a knob from its [`Knob::name`] identifier.
    pub fn from_name(name: &str) -> Option<Knob> {
        Knob::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether changing this knob requires a server reboot (core-count
    /// changes go through the boot loader's `isolcpus`; SHP pools are
    /// reserved by the kernel at boot).
    pub fn requires_reboot(self) -> bool {
        matches!(self, Knob::CoreCount | Knob::Shp)
    }
}

impl std::fmt::Display for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete setting of one knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KnobSetting {
    /// Core frequency in GHz.
    CoreFrequencyGhz(f64),
    /// Uncore frequency in GHz.
    UncoreFrequencyGhz(f64),
    /// Number of active physical cores.
    CoreCount(u32),
    /// CDP partition; `None` disables CDP (shared ways).
    Cdp(Option<CdpPartition>),
    /// Prefetcher enables.
    Prefetcher(PrefetcherConfig),
    /// THP mode.
    Thp(ThpMode),
    /// SHP page count.
    ShpPages(u32),
}

impl KnobSetting {
    /// The knob this setting belongs to.
    pub fn knob(&self) -> Knob {
        match self {
            KnobSetting::CoreFrequencyGhz(_) => Knob::CoreFrequency,
            KnobSetting::UncoreFrequencyGhz(_) => Knob::UncoreFrequency,
            KnobSetting::CoreCount(_) => Knob::CoreCount,
            KnobSetting::Cdp(_) => Knob::Cdp,
            KnobSetting::Prefetcher(_) => Knob::Prefetcher,
            KnobSetting::Thp(_) => Knob::Thp,
            KnobSetting::ShpPages(_) => Knob::Shp,
        }
    }

    /// Applies the setting to a server configuration, validating against the
    /// platform.
    ///
    /// Setting the CDP knob re-derives the partition against the currently
    /// enabled way count; setting core count leaves the LLC allocation
    /// untouched (all ways stay shared among fewer cores, as `isolcpus`
    /// does).
    ///
    /// # Errors
    ///
    /// [`KnobError::Platform`] when the platform rejects the value.
    pub fn apply(&self, config: &mut ServerConfig) -> Result<(), KnobError> {
        match *self {
            KnobSetting::CoreFrequencyGhz(ghz) => {
                config.platform.validate_core_freq(ghz)?;
                config.core_freq_ghz = ghz;
            }
            KnobSetting::UncoreFrequencyGhz(ghz) => {
                config.platform.validate_uncore_freq(ghz)?;
                config.uncore_freq_ghz = ghz;
            }
            KnobSetting::CoreCount(n) => {
                config.platform.validate_core_count(n)?;
                config.active_cores = n;
            }
            KnobSetting::Cdp(p) => {
                if let Some(part) = p {
                    // Validate against enabled ways.
                    CdpPartition::new(part.data_ways, part.code_ways, config.llc_ways_enabled)?;
                }
                config.cdp = p;
            }
            KnobSetting::Prefetcher(pc) => config.prefetchers = pc,
            KnobSetting::Thp(mode) => config.thp = mode,
            KnobSetting::ShpPages(n) => config.shp_pages = n,
        }
        config.validate()?;
        Ok(())
    }

    /// Reads the current setting of `knob` out of a configuration.
    pub fn read_from(knob: Knob, config: &ServerConfig) -> KnobSetting {
        match knob {
            Knob::CoreFrequency => KnobSetting::CoreFrequencyGhz(config.core_freq_ghz),
            Knob::UncoreFrequency => KnobSetting::UncoreFrequencyGhz(config.uncore_freq_ghz),
            Knob::CoreCount => KnobSetting::CoreCount(config.active_cores),
            Knob::Cdp => KnobSetting::Cdp(config.cdp),
            Knob::Prefetcher => KnobSetting::Prefetcher(config.prefetchers),
            Knob::Thp => KnobSetting::Thp(config.thp),
            Knob::Shp => KnobSetting::ShpPages(config.shp_pages),
        }
    }
}

impl std::fmt::Display for KnobSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KnobSetting::CoreFrequencyGhz(g) => write!(f, "core {g:.1} GHz"),
            KnobSetting::UncoreFrequencyGhz(g) => write!(f, "uncore {g:.1} GHz"),
            KnobSetting::CoreCount(n) => write!(f, "{n} cores"),
            KnobSetting::Cdp(None) => write!(f, "CDP off"),
            KnobSetting::Cdp(Some(p)) => write!(f, "CDP {p}"),
            KnobSetting::Prefetcher(p) => write!(f, "prefetch: {p}"),
            KnobSetting::Thp(m) => write!(f, "THP {m}"),
            KnobSetting::ShpPages(n) => write!(f, "{n} SHPs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_archsim::platform::PlatformSpec;

    fn base() -> ServerConfig {
        ServerConfig::stock(PlatformSpec::skylake18())
    }

    #[test]
    fn knob_names_roundtrip() {
        for k in Knob::ALL {
            assert_eq!(Knob::from_name(k.name()), Some(k));
        }
        assert_eq!(Knob::from_name("bogus"), None);
    }

    #[test]
    fn reboot_knobs() {
        assert!(Knob::CoreCount.requires_reboot());
        assert!(Knob::Shp.requires_reboot());
        assert!(!Knob::CoreFrequency.requires_reboot());
        assert!(!Knob::Thp.requires_reboot());
    }

    #[test]
    fn apply_and_read_back() {
        let mut cfg = base();
        for setting in [
            KnobSetting::CoreFrequencyGhz(1.8),
            KnobSetting::UncoreFrequencyGhz(1.5),
            KnobSetting::CoreCount(8),
            KnobSetting::Cdp(Some(CdpPartition::new(6, 5, 11).unwrap())),
            KnobSetting::Prefetcher(PrefetcherConfig::dcu_only()),
            KnobSetting::Thp(ThpMode::NeverOn),
            KnobSetting::ShpPages(300),
        ] {
            setting.apply(&mut cfg).unwrap();
            assert_eq!(KnobSetting::read_from(setting.knob(), &cfg), setting);
        }
    }

    #[test]
    fn invalid_values_rejected() {
        let mut cfg = base();
        assert!(KnobSetting::CoreFrequencyGhz(3.5).apply(&mut cfg).is_err());
        assert!(KnobSetting::UncoreFrequencyGhz(0.9)
            .apply(&mut cfg)
            .is_err());
        assert!(KnobSetting::CoreCount(99).apply(&mut cfg).is_err());
        // Partition that does not match the 11 enabled ways.
        let bad = CdpPartition::new(4, 4, 8).unwrap();
        assert!(KnobSetting::Cdp(Some(bad)).apply(&mut cfg).is_err());
        // Config unchanged by failed applies.
        assert_eq!(cfg, base());
    }

    #[test]
    fn display_is_informative() {
        let s = KnobSetting::Cdp(Some(CdpPartition::new(6, 5, 11).unwrap()));
        assert_eq!(s.to_string(), "CDP {6, 5}");
        assert_eq!(KnobSetting::ShpPages(300).to_string(), "300 SHPs");
    }
}
