//! The soft-SKU design space: per-knob candidate settings for a platform,
//! filtered by workload applicability (paper Secs. 4–5).

use crate::error::KnobError;
use crate::knob::{Knob, KnobSetting};
use softsku_archsim::cache::CdpPartition;
use softsku_archsim::pagemap::ThpMode;
use softsku_archsim::platform::PlatformSpec;
use softsku_archsim::prefetch::PrefetcherConfig;

/// Constraints a target microservice imposes on the sweep (µSKU input file,
/// Sec. 4: "some microservices may not tolerate reboots on live traffic",
/// "SHPs are inapplicable to Ads1 since it does not use the APIs", and
/// Sec. 6.1's Ads1 core-count exclusion for QoS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConstraints {
    /// Whether live-traffic reboots are tolerable (gates CoreCount and SHP
    /// sweeps when false… SHP only needs a boot-parameter change, which also
    /// reboots).
    pub tolerates_reboot: bool,
    /// Whether the service allocates through the SHP APIs at all.
    pub uses_shp: bool,
    /// Minimum core count below which QoS collapses (load-balancer design);
    /// `None` allows the full 2..=max sweep.
    pub min_cores_for_qos: Option<u32>,
}

impl WorkloadConstraints {
    /// Fully permissive constraints.
    pub fn permissive() -> Self {
        WorkloadConstraints {
            tolerates_reboot: true,
            uses_shp: true,
            min_cores_for_qos: None,
        }
    }
}

/// Candidate settings for every knob on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSpace {
    core_freq: Vec<KnobSetting>,
    uncore_freq: Vec<KnobSetting>,
    core_count: Vec<KnobSetting>,
    cdp: Vec<KnobSetting>,
    prefetcher: Vec<KnobSetting>,
    thp: Vec<KnobSetting>,
    shp: Vec<KnobSetting>,
}

impl KnobSpace {
    /// Builds the paper's sweep for `platform` under `constraints`:
    ///
    /// * core frequency 1.6–2.2 GHz in 0.1 GHz steps;
    /// * uncore frequency 1.4–1.8 GHz in 0.1 GHz steps;
    /// * core count 2..=max in steps of 2 (reboot-gated);
    /// * CDP off plus every `{data, code}` split of the LLC ways;
    /// * the five prefetcher configurations;
    /// * the three THP modes;
    /// * SHP 0–600 in steps of 100 (reboot- and API-gated).
    pub fn for_platform(platform: &PlatformSpec, constraints: WorkloadConstraints) -> Self {
        let (cf_lo, cf_hi) = platform.core_freq_range_ghz;
        let core_freq = freq_steps(cf_lo, cf_hi)
            .into_iter()
            .map(KnobSetting::CoreFrequencyGhz)
            .collect();
        let (uf_lo, uf_hi) = platform.uncore_freq_range_ghz;
        let uncore_freq = freq_steps(uf_lo, uf_hi)
            .into_iter()
            .map(KnobSetting::UncoreFrequencyGhz)
            .collect();

        let core_count = if constraints.tolerates_reboot {
            let max = platform.total_cores();
            let min = constraints.min_cores_for_qos.unwrap_or(2).max(2);
            let mut counts: Vec<u32> = (min..=max).step_by(2).collect();
            if counts.last() != Some(&max) {
                counts.push(max);
            }
            counts.into_iter().map(KnobSetting::CoreCount).collect()
        } else {
            Vec::new()
        };

        let mut cdp = vec![KnobSetting::Cdp(None)];
        cdp.extend(
            CdpPartition::sweep(platform.llc.ways)
                .into_iter()
                .map(|p| KnobSetting::Cdp(Some(p))),
        );

        let prefetcher = PrefetcherConfig::sweep()
            .into_iter()
            .map(KnobSetting::Prefetcher)
            .collect();

        let thp = ThpMode::ALL.into_iter().map(KnobSetting::Thp).collect();

        let shp = if constraints.tolerates_reboot && constraints.uses_shp {
            (0..=600).step_by(100).map(KnobSetting::ShpPages).collect()
        } else {
            Vec::new()
        };

        KnobSpace {
            core_freq,
            uncore_freq,
            core_count,
            cdp,
            prefetcher,
            thp,
            shp,
        }
    }

    /// The candidate settings for `knob` (empty when gated off).
    pub fn candidates(&self, knob: Knob) -> &[KnobSetting] {
        match knob {
            Knob::CoreFrequency => &self.core_freq,
            Knob::UncoreFrequency => &self.uncore_freq,
            Knob::CoreCount => &self.core_count,
            Knob::Cdp => &self.cdp,
            Knob::Prefetcher => &self.prefetcher,
            Knob::Thp => &self.thp,
            Knob::Shp => &self.shp,
        }
    }

    /// Candidates, as a `Result` that surfaces gating as an error.
    ///
    /// # Errors
    ///
    /// [`KnobError::EmptySweep`] when the knob is gated off for this
    /// workload.
    pub fn candidates_checked(&self, knob: Knob) -> Result<&[KnobSetting], KnobError> {
        let c = self.candidates(knob);
        if c.is_empty() {
            Err(KnobError::EmptySweep(knob.name()))
        } else {
            Ok(c)
        }
    }

    /// Knobs with at least one candidate, in sweep order.
    pub fn active_knobs(&self) -> Vec<Knob> {
        Knob::ALL
            .into_iter()
            .filter(|&k| !self.candidates(k).is_empty())
            .collect()
    }

    /// Total number of points in the exhaustive cross-product sweep — the
    /// quantity that makes exhaustive search "prohibitive" (Sec. 7).
    pub fn exhaustive_size(&self) -> u128 {
        Knob::ALL
            .into_iter()
            .map(|k| self.candidates(k).len().max(1) as u128)
            .product()
    }

    /// Total number of A/B tests for the independent sweep.
    pub fn independent_size(&self) -> usize {
        Knob::ALL
            .into_iter()
            .map(|k| self.candidates(k).len())
            .sum()
    }
}

/// 0.1 GHz-step inclusive frequency ladder.
fn freq_steps(lo: f64, hi: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut f = lo;
    while f <= hi + 1e-9 {
        v.push((f * 10.0).round() / 10.0);
        f += 0.1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_space_matches_paper() {
        let plat = PlatformSpec::skylake18();
        let space = KnobSpace::for_platform(&plat, WorkloadConstraints::permissive());
        // 1.6..2.2 → 7 core frequencies; 1.4..1.8 → 5 uncore.
        assert_eq!(space.candidates(Knob::CoreFrequency).len(), 7);
        assert_eq!(space.candidates(Knob::UncoreFrequency).len(), 5);
        // CDP: off + 10 partitions of 11 ways.
        assert_eq!(space.candidates(Knob::Cdp).len(), 11);
        assert_eq!(space.candidates(Knob::Prefetcher).len(), 5);
        assert_eq!(space.candidates(Knob::Thp).len(), 3);
        // SHP 0..600 step 100.
        assert_eq!(space.candidates(Knob::Shp).len(), 7);
        // Core count: 2,4,…,18.
        assert_eq!(space.candidates(Knob::CoreCount).len(), 9);
        assert_eq!(space.active_knobs().len(), 7);
    }

    #[test]
    fn exhaustive_is_prohibitive_independent_is_not() {
        let plat = PlatformSpec::skylake18();
        let space = KnobSpace::for_platform(&plat, WorkloadConstraints::permissive());
        assert!(space.exhaustive_size() > 100_000);
        assert!(space.independent_size() < 60);
    }

    #[test]
    fn reboot_intolerance_gates_core_count_and_shp() {
        let plat = PlatformSpec::skylake18();
        let c = WorkloadConstraints {
            tolerates_reboot: false,
            uses_shp: true,
            min_cores_for_qos: None,
        };
        let space = KnobSpace::for_platform(&plat, c);
        assert!(space.candidates(Knob::CoreCount).is_empty());
        assert!(space.candidates(Knob::Shp).is_empty());
        assert!(space.candidates_checked(Knob::Shp).is_err());
        assert_eq!(space.active_knobs().len(), 5);
    }

    #[test]
    fn non_shp_service_gates_shp_only() {
        let plat = PlatformSpec::skylake18();
        let c = WorkloadConstraints {
            tolerates_reboot: true,
            uses_shp: false,
            min_cores_for_qos: None,
        };
        let space = KnobSpace::for_platform(&plat, c);
        assert!(space.candidates(Knob::Shp).is_empty());
        assert!(!space.candidates(Knob::CoreCount).is_empty());
    }

    #[test]
    fn qos_floor_trims_core_counts() {
        let plat = PlatformSpec::skylake18();
        let c = WorkloadConstraints {
            tolerates_reboot: true,
            uses_shp: true,
            min_cores_for_qos: Some(10),
        };
        let space = KnobSpace::for_platform(&plat, c);
        for s in space.candidates(Knob::CoreCount) {
            if let KnobSetting::CoreCount(n) = s {
                assert!(*n >= 10);
            }
        }
    }

    #[test]
    fn broadwell_cdp_sweep_has_twelve_ways() {
        let plat = PlatformSpec::broadwell16();
        let space = KnobSpace::for_platform(&plat, WorkloadConstraints::permissive());
        // Off + 11 partitions of 12 ways.
        assert_eq!(space.candidates(Knob::Cdp).len(), 12);
    }

    #[test]
    fn every_candidate_applies_cleanly() {
        use softsku_archsim::engine::ServerConfig;
        let plat = PlatformSpec::skylake18();
        let space = KnobSpace::for_platform(&plat, WorkloadConstraints::permissive());
        for knob in space.active_knobs() {
            for setting in space.candidates(knob) {
                let mut cfg = ServerConfig::stock(PlatformSpec::skylake18());
                setting
                    .apply(&mut cfg)
                    .unwrap_or_else(|e| panic!("{setting} failed: {e}"));
            }
        }
    }
}
