//! Error type for knob operations.

use softsku_archsim::ArchSimError;
use std::error::Error;
use std::fmt;

/// Errors raised when constructing or applying knob settings.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KnobError {
    /// The platform rejected the setting (frequency range, core count, …).
    Platform(ArchSimError),
    /// The knob is not applicable to the target workload (e.g. SHP on a
    /// service that never calls the hugetlbfs APIs, or core-count scaling on
    /// a service that cannot tolerate reboots).
    NotApplicable {
        /// Knob name.
        knob: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A sweep was requested over an empty candidate list.
    EmptySweep(&'static str),
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobError::Platform(e) => write!(f, "platform rejected setting: {e}"),
            KnobError::NotApplicable { knob, reason } => {
                write!(f, "knob {knob} not applicable: {reason}")
            }
            KnobError::EmptySweep(knob) => write!(f, "empty sweep for knob {knob}"),
        }
    }
}

impl Error for KnobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KnobError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchSimError> for KnobError {
    fn from(e: ArchSimError) -> Self {
        KnobError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KnobError::from(ArchSimError::FixedPointDiverged { iterations: 3 });
        assert!(e.to_string().contains("platform"));
        assert!(Error::source(&e).is_some());
        let n = KnobError::NotApplicable {
            knob: "shp",
            reason: "service does not use hugetlbfs".into(),
        };
        assert!(n.to_string().contains("shp"));
        assert!(Error::source(&n).is_none());
    }
}
