//! The soft-SKU knob design space (paper Secs. 3–5).
//!
//! A "soft SKU" tunes a limited hardware SKU to its assigned microservice
//! through coarse-grain configuration knobs instead of custom silicon. This
//! crate provides:
//!
//! * [`Knob`] / [`KnobSetting`] — the seven knobs µSKU sweeps (core
//!   frequency, uncore frequency, core count, LLC CDP, prefetchers, THP,
//!   SHP), typed and platform-validated.
//! * [`KnobSpace`] — the per-platform candidate lists, gated by
//!   [`WorkloadConstraints`] (reboot tolerance, SHP API usage, QoS core
//!   floors).
//!
//! # Example
//!
//! ```
//! use softsku_archsim::engine::ServerConfig;
//! use softsku_archsim::platform::PlatformSpec;
//! use softsku_knobs::{Knob, KnobSpace, WorkloadConstraints};
//!
//! # fn main() -> Result<(), softsku_knobs::KnobError> {
//! let platform = PlatformSpec::skylake18();
//! let space = KnobSpace::for_platform(&platform, WorkloadConstraints::permissive());
//! let mut config = ServerConfig::stock(platform);
//! // Apply the first CDP candidate to a stock server.
//! space.candidates_checked(Knob::Cdp)?[1].apply(&mut config)?;
//! assert!(config.cdp.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod knob;
pub mod space;

pub use error::KnobError;
pub use knob::{Knob, KnobSetting};
pub use space::{KnobSpace, WorkloadConstraints};
