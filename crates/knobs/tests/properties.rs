//! Property-based tests on the knob design space.

use proptest::prelude::*;
use softsku_archsim::engine::ServerConfig;
use softsku_archsim::platform::PlatformKind;
use softsku_knobs::{Knob, KnobSetting, KnobSpace, WorkloadConstraints};

fn platform_strategy() -> impl Strategy<Value = PlatformKind> {
    prop_oneof![
        Just(PlatformKind::Skylake18),
        Just(PlatformKind::Skylake20),
        Just(PlatformKind::Broadwell16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every candidate in every gated knob space applies cleanly to a stock
    /// config of its platform, and read_from round-trips the setting.
    #[test]
    fn candidates_apply_and_roundtrip(
        platform in platform_strategy(),
        tolerates_reboot in any::<bool>(),
        uses_shp in any::<bool>(),
        floor in proptest::option::of(2u32..16),
    ) {
        let spec = platform.spec();
        let constraints = WorkloadConstraints {
            tolerates_reboot,
            uses_shp,
            min_cores_for_qos: floor,
        };
        let space = KnobSpace::for_platform(&spec, constraints);
        for knob in Knob::ALL {
            for &setting in space.candidates(knob) {
                let mut cfg = ServerConfig::stock(platform.spec());
                setting.apply(&mut cfg).expect("gated candidates are valid");
                prop_assert_eq!(KnobSetting::read_from(knob, &cfg), setting);
                cfg.validate().expect("applied config validates");
            }
        }
    }

    /// Gating is monotone: loosening constraints never removes candidates.
    #[test]
    fn gating_is_monotone(platform in platform_strategy()) {
        let spec = platform.spec();
        let strict = KnobSpace::for_platform(&spec, WorkloadConstraints {
            tolerates_reboot: false,
            uses_shp: false,
            min_cores_for_qos: Some(spec.total_cores()),
        });
        let loose = KnobSpace::for_platform(&spec, WorkloadConstraints::permissive());
        for knob in Knob::ALL {
            prop_assert!(loose.candidates(knob).len() >= strict.candidates(knob).len());
        }
        prop_assert!(loose.independent_size() >= strict.independent_size());
        prop_assert!(loose.exhaustive_size() >= strict.exhaustive_size());
    }

    /// The exhaustive size is exactly the product of the per-knob candidate
    /// counts (empty knobs contribute a factor of 1).
    #[test]
    fn exhaustive_size_is_a_product(
        platform in platform_strategy(),
        tolerates_reboot in any::<bool>(),
        uses_shp in any::<bool>(),
    ) {
        let spec = platform.spec();
        let space = KnobSpace::for_platform(&spec, WorkloadConstraints {
            tolerates_reboot,
            uses_shp,
            min_cores_for_qos: None,
        });
        let product: u128 = Knob::ALL
            .into_iter()
            .map(|k| space.candidates(k).len().max(1) as u128)
            .product();
        prop_assert_eq!(space.exhaustive_size(), product);
    }

    /// Failed applies never mutate the configuration.
    #[test]
    fn failed_apply_is_atomic(ghz in 2.3f64..10.0, cores in 41u32..512) {
        let mut cfg = ServerConfig::stock(PlatformKind::Skylake18.spec());
        let before = cfg.clone();
        prop_assert!(KnobSetting::CoreFrequencyGhz(ghz).apply(&mut cfg).is_err());
        prop_assert!(KnobSetting::CoreCount(cores).apply(&mut cfg).is_err());
        prop_assert_eq!(cfg, before);
    }
}
