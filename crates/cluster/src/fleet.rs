//! Fleet-scale soft-SKU validation.
//!
//! After µSKU composes a soft SKU, the paper validates it "by comparing the
//! QPS achieved (via ODS) by soft-SKU servers against hand-tuned production
//! servers for prolonged durations (including across code updates and under
//! diurnal load)" (Sec. 4). [`ValidationFleet`] runs that experiment: two
//! server groups under common diurnal load and a shared code-push process,
//! streaming per-group QPS into the ODS time-series store.
//!
//! [`StagedFleet`] is the deployment-side counterpart: one service's fleet
//! of replicas partitioned into a baseline group and a candidate (soft-SKU)
//! group whose size the rollout controller moves through canary stages. It
//! produces per-tick group QPS samples for guardrail statistics and models
//! post-deployment *drift* — every code push can erode the candidate's
//! tuned advantage — which is what the rollout crate's `DriftMonitor`
//! watches for.

use crate::domains::FailureDomain;
use crate::error::ClusterError;
use crate::server::SimServer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softsku_archsim::engine::ServerConfig;
use softsku_telemetry::streams::{StreamFamily, StreamRegistry};
use softsku_telemetry::{Ods, SeriesKey};
use softsku_workloads::loadgen::{CodeEvolution, LoadGenerator};
use softsku_workloads::WorkloadProfile;

/// Result of a long-horizon QPS comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationOutcome {
    /// Mean QPS of the candidate (soft-SKU) group.
    pub candidate_qps: f64,
    /// Mean QPS of the baseline (hand-tuned) group.
    pub baseline_qps: f64,
    /// Relative gain of candidate over baseline.
    pub relative_gain: f64,
    /// Code pushes that landed during validation.
    pub code_pushes: u64,
    /// Whether the gain held in every daily bucket (stability check).
    pub stable_across_days: bool,
}

/// Two server groups under common production traffic, feeding ODS.
#[derive(Debug)]
pub struct ValidationFleet {
    baseline: SimServer,
    candidate: SimServer,
    load: LoadGenerator,
    evolution: CodeEvolution,
    ods: Ods,
    time_s: f64,
    tick_s: f64,
}

impl ValidationFleet {
    /// Creates a fleet: `baseline_config` vs `candidate_config`, sampling
    /// QPS every `tick_s` seconds of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates server construction errors.
    pub fn new(
        profile: WorkloadProfile,
        baseline_config: ServerConfig,
        candidate_config: ServerConfig,
        window_insns: u64,
        tick_s: f64,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        // Both groups share the engine seed (identical hardware); see the
        // same-seed rationale in `AbEnvironment::new`.
        let baseline =
            SimServer::with_window(profile.clone(), baseline_config, seed, window_insns)?;
        let candidate = SimServer::with_window(profile, candidate_config, seed, window_insns)?;
        // Historically the code-push stream was `seed ^ 0xBEEF` — the same
        // derivation the engine (seeded with this very `seed` through the
        // servers above) uses for its sampling stream, so the two streams
        // drew identical sequences. The registry family breaks the tie and
        // its mask table forbids reintroducing the alias.
        let mut streams = StreamRegistry::new(seed);
        Ok(ValidationFleet {
            baseline,
            candidate,
            load: LoadGenerator::new(
                0.85,
                0.15,
                86_400.0,
                0.02,
                streams.derive(StreamFamily::FleetLoad),
            ),
            evolution: CodeEvolution::new(0.25, 0.01, streams.derive(StreamFamily::FleetCodePush)),
            ods: Ods::new(),
            time_s: 0.0,
            tick_s: tick_s.max(1.0),
        })
    }

    /// Runs the fleet for `duration_s` of simulated time and returns the
    /// comparison outcome.
    ///
    /// # Errors
    ///
    /// Engine errors on configuration evaluation.
    pub fn run(&mut self, duration_s: f64) -> Result<ValidationOutcome, ClusterError> {
        let base_key = SeriesKey::new("fleet.baseline", "qps");
        let cand_key = SeriesKey::new("fleet.candidate", "qps");
        let end = self.time_s + duration_s;
        let mut pushes = 0u64;
        while self.time_s < end {
            self.time_s += self.tick_s;
            while let Some(push) = self.evolution.push_before(self.time_s) {
                self.baseline.apply_code_push(push);
                self.candidate.apply_code_push(push);
                pushes += 1;
            }
            let load = self.load.load_at(self.time_s);
            let bq = self.baseline.qps(load)?;
            let cq = self.candidate.qps(load)?;
            // detlint::allow(panic_path): fleet time only moves forward, so
            // the ODS append cannot be out of order.
            self.ods
                .append(&base_key, self.time_s, bq)
                .expect("monotone fleet time");
            // detlint::allow(panic_path): same monotone fleet time as above.
            self.ods
                .append(&cand_key, self.time_s, cq)
                .expect("monotone fleet time");
        }
        let start = end - duration_s;
        // detlint::allow(panic_path): the loop above appended at least one
        // sample to this series inside the queried window.
        let baseline_qps = self
            .ods
            .mean_in(&base_key, start, end + 1.0)
            .expect("series populated above");
        // detlint::allow(panic_path): same population guarantee as above.
        let candidate_qps = self
            .ods
            .mean_in(&cand_key, start, end + 1.0)
            .expect("series populated above");

        // Daily-bucket stability: the win must not be an artifact of one
        // load phase.
        let day = 86_400.0;
        let mut stable = true;
        let mut t = start;
        while t < end {
            let hi = (t + day).min(end + 1.0);
            if hi - t > day * 0.5 {
                let b = self.ods.mean_in(&base_key, t, hi).unwrap_or(baseline_qps);
                let c = self.ods.mean_in(&cand_key, t, hi).unwrap_or(candidate_qps);
                if c < b * 0.998 {
                    stable = false;
                }
            }
            t += day;
        }
        Ok(ValidationOutcome {
            candidate_qps,
            baseline_qps,
            relative_gain: candidate_qps / baseline_qps - 1.0,
            code_pushes: pushes,
            stable_across_days: stable,
        })
    }

    /// Read access to the collected ODS series.
    pub fn ods(&self) -> &Ods {
        &self.ods
    }
}

/// Parameters of a staged canary fleet.
#[derive(Debug, Clone, Copy)]
pub struct StagedFleetConfig {
    /// Total replicas serving this service.
    pub replicas: usize,
    /// Seconds of simulated time between QPS samples.
    pub tick_s: f64,
    /// Engine sampling window, instructions.
    pub window_insns: u64,
    /// Relative measurement noise of a single replica's QPS report; a
    /// group of `n` replicas averages it down by `sqrt(n)`.
    pub noise_rel: f64,
    /// Code-push arrival rate, pushes per hour.
    pub pushes_per_hour: f64,
    /// Magnitude of each push's CPI/miss perturbation.
    pub push_magnitude: f64,
    /// Fraction of the candidate's tuned advantage each push erodes —
    /// the drift-injection hook. `0.0` models a perfectly durable SKU;
    /// large values force the decay a `DriftMonitor` must catch.
    pub drift_per_push: f64,
}

impl StagedFleetConfig {
    /// Small, fast parameters for unit tests and smoke runs.
    pub fn fast_test() -> Self {
        StagedFleetConfig {
            replicas: 100,
            tick_s: 600.0,
            window_insns: 50_000,
            noise_rel: 0.01,
            pushes_per_hour: 0.25,
            push_magnitude: 0.01,
            drift_per_push: 0.0,
        }
    }
}

/// One per-tick observation of the staged fleet.
#[derive(Debug, Clone, Copy)]
pub struct StagedSample {
    /// Simulated time of the sample, seconds.
    pub time_s: f64,
    /// Offered load at the sample time (fraction of peak).
    pub load: f64,
    /// Replicas serving the baseline configuration.
    pub baseline_replicas: usize,
    /// Replicas serving the candidate (soft-SKU) configuration.
    pub candidate_replicas: usize,
    /// Measured mean per-replica QPS of the baseline group.
    pub baseline_qps: f64,
    /// Measured mean per-replica QPS of the candidate group, `None` while
    /// no replica carries the candidate (pre-canary or after rollback).
    pub candidate_qps: Option<f64>,
    /// Code pushes that have landed since the fleet was created.
    pub code_pushes_total: u64,
}

/// One service's replica fleet under staged soft-SKU rollout.
///
/// The fleet always holds back a baseline control group of at least
/// `max(1, replicas / 100)` replicas — even at the 100 % stage — so drift
/// monitoring retains a live comparison population, mirroring the paper's
/// long-horizon ODS comparison against hand-tuned production servers.
///
/// Determinism: the diurnal load, the per-group measurement noise, and the
/// code-push process each draw from their own registered stream family
/// ([`StreamFamily::RolloutStagedLoad`], [`StreamFamily::RolloutGroupNoise`],
/// [`StreamFamily::FleetCodePush`]), and every tick consumes exactly two
/// noise draws regardless of group sizes — so a sample trace is a pure
/// function of `(config, seed)` and the staging schedule.
#[derive(Debug)]
pub struct StagedFleet {
    baseline: SimServer,
    candidate: SimServer,
    load: LoadGenerator,
    evolution: CodeEvolution,
    noise: SmallRng,
    config: StagedFleetConfig,
    candidate_replicas: usize,
    /// Multiplicative erosion of the candidate's throughput; starts at 1.0
    /// and decays by `drift_per_push` per code push.
    candidate_drift: f64,
    code_pushes: u64,
    time_s: f64,
    /// The failure domain this fleet's replicas live in, when the fleet is
    /// coordinated at fleet scale. `None` for standalone rollouts.
    domain: Option<FailureDomain>,
    /// External (chaos) load multiplier; 1.0 when healthy. Applied as a
    /// pure multiply, so the default is bitwise inert.
    external_load_mult: f64,
    /// Crashed candidate replicas and when they come back.
    down_replicas: usize,
    down_until_s: f64,
}

impl StagedFleet {
    /// Creates the fleet with every replica on `baseline_config`; call
    /// [`StagedFleet::stage_to`] to move replicas onto `candidate_config`.
    ///
    /// # Errors
    ///
    /// Server construction errors.
    pub fn new(
        profile: WorkloadProfile,
        baseline_config: ServerConfig,
        candidate_config: ServerConfig,
        config: StagedFleetConfig,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        // Both groups share the engine seed (identical hardware), as in
        // `ValidationFleet::new`.
        let baseline =
            SimServer::with_window(profile.clone(), baseline_config, seed, config.window_insns)?;
        let candidate =
            SimServer::with_window(profile, candidate_config, seed, config.window_insns)?;
        let mut streams = StreamRegistry::new(seed);
        Ok(StagedFleet {
            baseline,
            candidate,
            load: LoadGenerator::new(
                0.85,
                0.15,
                86_400.0,
                0.02,
                streams.derive(StreamFamily::RolloutStagedLoad),
            ),
            evolution: CodeEvolution::new(
                config.pushes_per_hour,
                config.push_magnitude,
                streams.derive(StreamFamily::FleetCodePush),
            ),
            noise: SmallRng::seed_from_u64(streams.derive(StreamFamily::RolloutGroupNoise)),
            candidate_replicas: 0,
            candidate_drift: 1.0,
            code_pushes: 0,
            time_s: 0.0,
            domain: None,
            external_load_mult: 1.0,
            down_replicas: 0,
            down_until_s: f64::NEG_INFINITY,
            config: StagedFleetConfig {
                replicas: config.replicas.max(2),
                tick_s: config.tick_s.max(1.0),
                ..config
            },
        })
    }

    /// Moves the candidate group to `fraction` of the fleet (rounded up),
    /// clamped so the baseline holdback group survives. Returns the actual
    /// candidate replica count.
    pub fn stage_to(&mut self, fraction: f64) -> usize {
        let replicas = self.config.replicas;
        let want = (fraction.clamp(0.0, 1.0) * replicas as f64).ceil() as usize;
        self.candidate_replicas = want.min(replicas - self.holdback());
        self.candidate_replicas
    }

    /// Moves the candidate group to exactly `count` replicas (clamped so
    /// the baseline holdback group survives) — the coordinator's
    /// budget-metered staging primitive. Returns the actual count.
    pub fn stage_replicas(&mut self, count: usize) -> usize {
        self.candidate_replicas = count.min(self.config.replicas - self.holdback());
        self.candidate_replicas
    }

    /// Tags the fleet with the failure domain its replicas live in.
    pub fn set_domain(&mut self, domain: FailureDomain) {
        self.domain = Some(domain);
    }

    /// The failure domain this fleet lives in, if any.
    pub fn domain(&self) -> Option<&FailureDomain> {
        self.domain.as_ref()
    }

    /// Sets the external (chaos) load multiplier: 1.0 healthy, `1 − depth`
    /// browned out, 0.0 dark. Applied multiplicatively to the diurnal load
    /// each tick, so the healthy value is bitwise inert.
    pub fn set_external_load(&mut self, mult: f64) {
        self.external_load_mult = mult.max(0.0);
    }

    /// A correlated code-push wave landed on this service: erodes the
    /// candidate's remaining tuned advantage by `erosion` on top of the
    /// organic per-push drift.
    pub fn apply_push_wave(&mut self, erosion: f64) {
        self.candidate_drift *= 1.0 - erosion.clamp(0.0, 1.0);
        self.code_pushes += 1;
    }

    /// Crashes `count` candidate replicas until sim-time `until_s`; they
    /// serve nothing while down (the sample reports the surviving group).
    /// A later crash extends, never shortens, an outage.
    pub fn crash_candidates(&mut self, count: usize, until_s: f64) {
        if self.time_s >= self.down_until_s {
            // The previous outage (if any) is over; start fresh.
            self.down_replicas = count;
            self.down_until_s = until_s;
        } else if until_s >= self.down_until_s {
            self.down_until_s = until_s;
            self.down_replicas = self.down_replicas.max(count);
        }
    }

    /// Candidate replicas currently down from a canary crash.
    pub fn crashed_candidates(&self) -> usize {
        if self.time_s < self.down_until_s {
            self.down_replicas.min(self.candidate_replicas)
        } else {
            0
        }
    }

    /// Reverts every candidate replica to the baseline configuration.
    pub fn rollback(&mut self) {
        self.candidate_replicas = 0;
    }

    /// Swaps in a new candidate configuration (a re-tuned SKU). The
    /// candidate group is emptied; stage it back up explicitly. The drift
    /// erosion resets — the new SKU was tuned against current code.
    ///
    /// # Errors
    ///
    /// Reboot-tolerance and configuration-validation errors.
    pub fn deploy_candidate(
        &mut self,
        config: ServerConfig,
        needs_reboot: bool,
    ) -> Result<(), ClusterError> {
        self.candidate.reconfigure(config, needs_reboot)?;
        self.candidate_replicas = 0;
        self.candidate_drift = 1.0;
        Ok(())
    }

    /// Advances one tick: lands due code pushes, samples the diurnal load,
    /// and measures both groups' mean per-replica QPS.
    ///
    /// # Errors
    ///
    /// Engine errors on configuration evaluation.
    pub fn tick(&mut self) -> Result<StagedSample, ClusterError> {
        self.time_s += self.config.tick_s;
        while let Some(push) = self.evolution.push_before(self.time_s) {
            self.baseline.apply_code_push(push);
            self.candidate.apply_code_push(push);
            self.candidate_drift *= 1.0 - self.config.drift_per_push.clamp(0.0, 1.0);
            self.code_pushes += 1;
        }
        // The external multiplier is 1.0 when no chaos layer drives this
        // fleet — a bitwise-identity multiply, so standalone rollouts
        // replay exactly as before the chaos hooks existed.
        let load = self.load.load_at(self.time_s) * self.external_load_mult;
        // Crashed canary replicas serve nothing; the surviving group is
        // what the sample reports and what the noise averages over.
        let serving_candidates = self.candidate_replicas - self.crashed_candidates();
        let baseline_replicas = self.config.replicas - self.candidate_replicas;
        // Both noise draws happen every tick, staged or not, to keep the
        // stream position independent of the staging schedule.
        let bnoise = self.group_noise(baseline_replicas);
        let cnoise = self.group_noise(serving_candidates);
        let baseline_qps = self.baseline.qps(load)? * bnoise;
        let candidate_qps = if serving_candidates > 0 {
            Some(self.candidate.qps(load)? * self.candidate_drift * cnoise)
        } else {
            None
        };
        Ok(StagedSample {
            time_s: self.time_s,
            load,
            baseline_replicas,
            candidate_replicas: serving_candidates,
            baseline_qps,
            candidate_qps,
            code_pushes_total: self.code_pushes,
        })
    }

    /// The baseline holdback group size: at least one replica, scaling as
    /// 1 % of the fleet.
    pub fn holdback(&self) -> usize {
        (self.config.replicas / 100).max(1)
    }

    /// Total fleet replicas.
    pub fn replicas(&self) -> usize {
        self.config.replicas
    }

    /// The fleet's simulation parameters (after construction clamping).
    pub fn config(&self) -> &StagedFleetConfig {
        &self.config
    }

    /// Replicas currently serving the candidate configuration.
    pub fn candidate_replicas(&self) -> usize {
        self.candidate_replicas
    }

    /// Fraction of the fleet on the candidate configuration.
    pub fn candidate_fraction(&self) -> f64 {
        self.candidate_replicas as f64 / self.config.replicas as f64
    }

    /// Cumulative drift-erosion factor on the candidate's throughput.
    pub fn candidate_drift(&self) -> f64 {
        self.candidate_drift
    }

    /// Code pushes landed so far.
    pub fn code_pushes(&self) -> u64 {
        self.code_pushes
    }

    /// Current simulated time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    fn group_noise(&mut self, group: usize) -> f64 {
        let u1: f64 = self.noise.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.noise.gen();
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        1.0 + self.config.noise_rel * g / (group.max(1) as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_archsim::platform::PlatformKind;
    use softsku_workloads::Microservice;

    #[test]
    fn better_candidate_wins_over_days() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let mut candidate = baseline.clone();
        candidate.shp_pages = 300; // the Fig. 18b sweet spot
        let mut fleet =
            ValidationFleet::new(profile, baseline, candidate, 50_000, 3600.0, 4).unwrap();
        let out = fleet.run(2.0 * 86_400.0).unwrap();
        assert!(
            out.relative_gain > 0.01,
            "300-SHP candidate should win: {:+.2}%",
            out.relative_gain * 100.0
        );
        assert!(out.stable_across_days, "gain must persist across days");
        assert!(fleet.ods().series_count() == 2);
    }

    #[test]
    fn identical_groups_tie() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let cfg = profile.production_config.clone();
        let mut fleet = ValidationFleet::new(profile, cfg.clone(), cfg, 50_000, 5400.0, 9).unwrap();
        let out = fleet.run(86_400.0).unwrap();
        assert!(
            out.relative_gain.abs() < 0.002,
            "identical groups: {:+.3}%",
            out.relative_gain * 100.0
        );
    }

    #[test]
    fn code_pushes_are_counted() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let cfg = profile.production_config.clone();
        let mut fleet = ValidationFleet::new(profile, cfg.clone(), cfg, 50_000, 5400.0, 2).unwrap();
        let out = fleet.run(2.0 * 86_400.0).unwrap();
        assert!(out.code_pushes > 3, "pushes {}", out.code_pushes);
    }

    fn staged_setup(config: StagedFleetConfig, seed: u64) -> StagedFleet {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let mut candidate = baseline.clone();
        candidate.shp_pages = 300;
        StagedFleet::new(profile, baseline, candidate, config, seed).unwrap()
    }

    #[test]
    fn staging_respects_the_holdback_group() {
        let mut fleet = staged_setup(StagedFleetConfig::fast_test(), 7);
        assert_eq!(fleet.candidate_replicas(), 0);
        assert_eq!(fleet.stage_to(0.01), 1);
        assert_eq!(fleet.stage_to(0.25), 25);
        // Full rollout still keeps the 1 % baseline control population.
        assert_eq!(fleet.stage_to(1.0), 99);
        assert_eq!(fleet.holdback(), 1);
        fleet.rollback();
        assert_eq!(fleet.candidate_replicas(), 0);
    }

    #[test]
    fn staged_samples_are_deterministic_across_replays() {
        let cfg = StagedFleetConfig::fast_test();
        let mut a = staged_setup(cfg, 11);
        let mut b = staged_setup(cfg, 11);
        a.stage_to(0.25);
        b.stage_to(0.25);
        for _ in 0..50 {
            let sa = a.tick().unwrap();
            let sb = b.tick().unwrap();
            assert_eq!(sa.baseline_qps.to_bits(), sb.baseline_qps.to_bits());
            assert_eq!(
                sa.candidate_qps.map(f64::to_bits),
                sb.candidate_qps.map(f64::to_bits)
            );
            assert_eq!(sa.load.to_bits(), sb.load.to_bits());
            assert_eq!(sa.code_pushes_total, sb.code_pushes_total);
        }
    }

    #[test]
    fn drift_erodes_the_candidate_advantage() {
        let mut cfg = StagedFleetConfig::fast_test();
        cfg.pushes_per_hour = 2.0;
        cfg.drift_per_push = 0.02;
        cfg.noise_rel = 0.0;
        let mut fleet = staged_setup(cfg, 3);
        fleet.stage_to(1.0);
        let first = fleet.tick().unwrap();
        let early_gain = first.candidate_qps.unwrap() / first.baseline_qps - 1.0;
        let mut last = first;
        for _ in 0..200 {
            last = fleet.tick().unwrap();
        }
        let late_gain = last.candidate_qps.unwrap() / last.baseline_qps - 1.0;
        assert!(last.code_pushes_total > 10, "pushes should land");
        assert!(fleet.candidate_drift() < 0.9);
        assert!(
            late_gain < early_gain - 0.05,
            "gain should decay: early {early_gain:+.3}, late {late_gain:+.3}"
        );
    }

    #[test]
    fn chaos_hooks_default_to_bitwise_inert() {
        let cfg = StagedFleetConfig::fast_test();
        let mut plain = staged_setup(cfg, 13);
        let mut hooked = staged_setup(cfg, 13);
        hooked.set_domain(FailureDomain::new("skl18", "r0"));
        hooked.set_external_load(1.0);
        hooked.crash_candidates(0, f64::NEG_INFINITY);
        plain.stage_to(0.25);
        hooked.stage_to(0.25);
        for _ in 0..50 {
            let a = plain.tick().unwrap();
            let b = hooked.tick().unwrap();
            assert_eq!(a.baseline_qps.to_bits(), b.baseline_qps.to_bits());
            assert_eq!(
                a.candidate_qps.map(f64::to_bits),
                b.candidate_qps.map(f64::to_bits)
            );
            assert_eq!(a.load.to_bits(), b.load.to_bits());
        }
        assert_eq!(hooked.domain(), Some(&FailureDomain::new("skl18", "r0")));
        assert_eq!(plain.domain(), None);
    }

    #[test]
    fn brownout_load_and_push_waves_hit_the_fleet() {
        let mut cfg = StagedFleetConfig::fast_test();
        cfg.noise_rel = 0.0;
        cfg.pushes_per_hour = 0.0;
        let mut fleet = staged_setup(cfg, 17);
        fleet.stage_to(0.5);
        let healthy = fleet.tick().unwrap();
        fleet.set_external_load(0.7);
        let dimmed = fleet.tick().unwrap();
        assert!(
            dimmed.load < healthy.load,
            "brownout must cut the offered load"
        );
        // A push wave erodes the candidate's advantage immediately.
        let pushes_before = fleet.code_pushes();
        fleet.apply_push_wave(0.10);
        assert!((fleet.candidate_drift() - 0.9).abs() < 1e-12);
        assert_eq!(fleet.code_pushes(), pushes_before + 1);
        // Dark pool: zero load still evaluates without panicking.
        fleet.set_external_load(0.0);
        let dark = fleet.tick().unwrap();
        assert_eq!(dark.load, 0.0);
    }

    #[test]
    fn crashed_canaries_leave_the_serving_group() {
        let mut cfg = StagedFleetConfig::fast_test();
        cfg.noise_rel = 0.0;
        let mut fleet = staged_setup(cfg, 19);
        assert_eq!(fleet.stage_replicas(10), 10);
        let t = fleet.time_s();
        fleet.crash_candidates(4, t + 2.5 * cfg.tick_s);
        let during = fleet.tick().unwrap();
        assert_eq!(during.candidate_replicas, 6);
        assert_eq!(fleet.crashed_candidates(), 4);
        fleet.tick().unwrap();
        let after = fleet.tick().unwrap();
        assert_eq!(after.candidate_replicas, 10, "outage must lift");
        assert_eq!(fleet.crashed_candidates(), 0);
        // Crashing more replicas than are staged blanks the whole group.
        fleet.crash_candidates(50, fleet.time_s() + 1.5 * cfg.tick_s);
        let blank = fleet.tick().unwrap();
        assert_eq!(blank.candidate_replicas, 0);
        assert!(blank.candidate_qps.is_none());
        // stage_replicas clamps to the holdback like stage_to does.
        assert_eq!(fleet.stage_replicas(1_000), 99);
    }

    #[test]
    fn deploying_a_retuned_candidate_resets_drift() {
        let mut cfg = StagedFleetConfig::fast_test();
        cfg.pushes_per_hour = 2.0;
        cfg.drift_per_push = 0.05;
        let mut fleet = staged_setup(cfg, 5);
        fleet.stage_to(0.25);
        for _ in 0..100 {
            fleet.tick().unwrap();
        }
        assert!(fleet.candidate_drift() < 1.0);
        let retuned = fleet.baseline.config().clone();
        fleet.deploy_candidate(retuned, false).unwrap();
        assert_eq!(fleet.candidate_replicas(), 0);
        assert!((fleet.candidate_drift() - 1.0).abs() < 1e-12);
    }
}
