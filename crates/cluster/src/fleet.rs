//! Fleet-scale soft-SKU validation.
//!
//! After µSKU composes a soft SKU, the paper validates it "by comparing the
//! QPS achieved (via ODS) by soft-SKU servers against hand-tuned production
//! servers for prolonged durations (including across code updates and under
//! diurnal load)" (Sec. 4). [`ValidationFleet`] runs that experiment: two
//! server groups under common diurnal load and a shared code-push process,
//! streaming per-group QPS into the ODS time-series store.

use crate::error::ClusterError;
use crate::server::SimServer;
use softsku_archsim::engine::ServerConfig;
use softsku_telemetry::streams::{StreamFamily, StreamRegistry};
use softsku_telemetry::{Ods, SeriesKey};
use softsku_workloads::loadgen::{CodeEvolution, LoadGenerator};
use softsku_workloads::WorkloadProfile;

/// Result of a long-horizon QPS comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationOutcome {
    /// Mean QPS of the candidate (soft-SKU) group.
    pub candidate_qps: f64,
    /// Mean QPS of the baseline (hand-tuned) group.
    pub baseline_qps: f64,
    /// Relative gain of candidate over baseline.
    pub relative_gain: f64,
    /// Code pushes that landed during validation.
    pub code_pushes: u64,
    /// Whether the gain held in every daily bucket (stability check).
    pub stable_across_days: bool,
}

/// Two server groups under common production traffic, feeding ODS.
#[derive(Debug)]
pub struct ValidationFleet {
    baseline: SimServer,
    candidate: SimServer,
    load: LoadGenerator,
    evolution: CodeEvolution,
    ods: Ods,
    time_s: f64,
    tick_s: f64,
}

impl ValidationFleet {
    /// Creates a fleet: `baseline_config` vs `candidate_config`, sampling
    /// QPS every `tick_s` seconds of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates server construction errors.
    pub fn new(
        profile: WorkloadProfile,
        baseline_config: ServerConfig,
        candidate_config: ServerConfig,
        window_insns: u64,
        tick_s: f64,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        // Both groups share the engine seed (identical hardware); see the
        // same-seed rationale in `AbEnvironment::new`.
        let baseline =
            SimServer::with_window(profile.clone(), baseline_config, seed, window_insns)?;
        let candidate = SimServer::with_window(profile, candidate_config, seed, window_insns)?;
        // Historically the code-push stream was `seed ^ 0xBEEF` — the same
        // derivation the engine (seeded with this very `seed` through the
        // servers above) uses for its sampling stream, so the two streams
        // drew identical sequences. The registry family breaks the tie and
        // its mask table forbids reintroducing the alias.
        let mut streams = StreamRegistry::new(seed);
        Ok(ValidationFleet {
            baseline,
            candidate,
            load: LoadGenerator::new(
                0.85,
                0.15,
                86_400.0,
                0.02,
                streams.derive(StreamFamily::FleetLoad),
            ),
            evolution: CodeEvolution::new(0.25, 0.01, streams.derive(StreamFamily::FleetCodePush)),
            ods: Ods::new(),
            time_s: 0.0,
            tick_s: tick_s.max(1.0),
        })
    }

    /// Runs the fleet for `duration_s` of simulated time and returns the
    /// comparison outcome.
    ///
    /// # Errors
    ///
    /// Engine errors on configuration evaluation.
    pub fn run(&mut self, duration_s: f64) -> Result<ValidationOutcome, ClusterError> {
        let base_key = SeriesKey::new("fleet.baseline", "qps");
        let cand_key = SeriesKey::new("fleet.candidate", "qps");
        let end = self.time_s + duration_s;
        let mut pushes = 0u64;
        while self.time_s < end {
            self.time_s += self.tick_s;
            while let Some(push) = self.evolution.push_before(self.time_s) {
                self.baseline.apply_code_push(push);
                self.candidate.apply_code_push(push);
                pushes += 1;
            }
            let load = self.load.load_at(self.time_s);
            let bq = self.baseline.qps(load)?;
            let cq = self.candidate.qps(load)?;
            // detlint::allow(panic_path): fleet time only moves forward, so
            // the ODS append cannot be out of order.
            self.ods
                .append(&base_key, self.time_s, bq)
                .expect("monotone fleet time");
            // detlint::allow(panic_path): same monotone fleet time as above.
            self.ods
                .append(&cand_key, self.time_s, cq)
                .expect("monotone fleet time");
        }
        let start = end - duration_s;
        // detlint::allow(panic_path): the loop above appended at least one
        // sample to this series inside the queried window.
        let baseline_qps = self
            .ods
            .mean_in(&base_key, start, end + 1.0)
            .expect("series populated above");
        // detlint::allow(panic_path): same population guarantee as above.
        let candidate_qps = self
            .ods
            .mean_in(&cand_key, start, end + 1.0)
            .expect("series populated above");

        // Daily-bucket stability: the win must not be an artifact of one
        // load phase.
        let day = 86_400.0;
        let mut stable = true;
        let mut t = start;
        while t < end {
            let hi = (t + day).min(end + 1.0);
            if hi - t > day * 0.5 {
                let b = self.ods.mean_in(&base_key, t, hi).unwrap_or(baseline_qps);
                let c = self.ods.mean_in(&cand_key, t, hi).unwrap_or(candidate_qps);
                if c < b * 0.998 {
                    stable = false;
                }
            }
            t += day;
        }
        Ok(ValidationOutcome {
            candidate_qps,
            baseline_qps,
            relative_gain: candidate_qps / baseline_qps - 1.0,
            code_pushes: pushes,
            stable_across_days: stable,
        })
    }

    /// Read access to the collected ODS series.
    pub fn ods(&self) -> &Ods {
        &self.ods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_archsim::platform::PlatformKind;
    use softsku_workloads::Microservice;

    #[test]
    fn better_candidate_wins_over_days() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let baseline = profile.production_config.clone();
        let mut candidate = baseline.clone();
        candidate.shp_pages = 300; // the Fig. 18b sweet spot
        let mut fleet =
            ValidationFleet::new(profile, baseline, candidate, 50_000, 3600.0, 4).unwrap();
        let out = fleet.run(2.0 * 86_400.0).unwrap();
        assert!(
            out.relative_gain > 0.01,
            "300-SHP candidate should win: {:+.2}%",
            out.relative_gain * 100.0
        );
        assert!(out.stable_across_days, "gain must persist across days");
        assert!(fleet.ods().series_count() == 2);
    }

    #[test]
    fn identical_groups_tie() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let cfg = profile.production_config.clone();
        let mut fleet = ValidationFleet::new(profile, cfg.clone(), cfg, 50_000, 5400.0, 9).unwrap();
        let out = fleet.run(86_400.0).unwrap();
        assert!(
            out.relative_gain.abs() < 0.002,
            "identical groups: {:+.3}%",
            out.relative_gain * 100.0
        );
    }

    #[test]
    fn code_pushes_are_counted() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let cfg = profile.production_config.clone();
        let mut fleet = ValidationFleet::new(profile, cfg.clone(), cfg, 50_000, 5400.0, 2).unwrap();
        let out = fleet.run(2.0 * 86_400.0).unwrap();
        assert!(out.code_pushes > 3, "pushes {}", out.code_pushes);
    }
}
