//! Error type for the cluster substrate.

use crate::env::Arm;
use softsku_archsim::ArchSimError;
use softsku_workloads::WorkloadError;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulated fleet.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The simulator rejected a configuration.
    Sim(ArchSimError),
    /// The workload model could not be built.
    Workload(WorkloadError),
    /// A reconfiguration required a reboot the service cannot tolerate on
    /// live traffic (paper Sec. 4: µSKU disables such knobs).
    RebootNotTolerated {
        /// Service name.
        service: String,
    },
    /// A configuration was rejected because it violates the service's QoS
    /// (latency above the SLO ceiling at the operating load).
    QosViolation {
        /// Modeled request latency in seconds.
        latency_s: f64,
        /// The SLO ceiling in seconds.
        limit_s: f64,
    },
    /// An injected crash took the arm down; it returns (re-warmed) at
    /// `until_s`. Consumers should wait out the outage and re-warm.
    ArmDown {
        /// The crashed arm.
        arm: Arm,
        /// Simulated time when the arm comes back.
        until_s: f64,
    },
    /// The telemetry pipeline dropped this paired sample; the next sample
    /// is unaffected.
    TelemetryDropout {
        /// Simulated time of the lost sample.
        time_s: f64,
    },
    /// Fleet tooling failed to apply a knob change; the failure is
    /// transient and retrying is expected to succeed.
    KnobApplyFailed {
        /// The arm whose reconfiguration failed.
        arm: Arm,
        /// Simulated time of the failed attempt.
        time_s: f64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Sim(e) => write!(f, "simulator rejected configuration: {e}"),
            ClusterError::Workload(e) => write!(f, "workload model error: {e}"),
            ClusterError::RebootNotTolerated { service } => {
                write!(f, "{service} cannot tolerate a live-traffic reboot")
            }
            ClusterError::QosViolation { latency_s, limit_s } => {
                write!(
                    f,
                    "qos violation: latency {latency_s:.6}s exceeds SLO {limit_s:.6}s"
                )
            }
            ClusterError::ArmDown { arm, until_s } => {
                write!(
                    f,
                    "arm {arm:?} is down until t={until_s:.0}s (injected crash)"
                )
            }
            ClusterError::TelemetryDropout { time_s } => {
                write!(f, "telemetry dropout at t={time_s:.0}s (sample lost)")
            }
            ClusterError::KnobApplyFailed { arm, time_s } => {
                write!(
                    f,
                    "transient knob-apply failure on arm {arm:?} at t={time_s:.0}s"
                )
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Sim(e) => Some(e),
            ClusterError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchSimError> for ClusterError {
    fn from(e: ArchSimError) -> Self {
        ClusterError::Sim(e)
    }
}

impl From<WorkloadError> for ClusterError {
    fn from(e: WorkloadError) -> Self {
        ClusterError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ClusterError::from(ArchSimError::FixedPointDiverged { iterations: 1 });
        assert!(Error::source(&e).is_some());
        let q = ClusterError::QosViolation {
            latency_s: 0.2,
            limit_s: 0.1,
        };
        assert!(q.to_string().contains("qos"));
        let r = ClusterError::RebootNotTolerated {
            service: "Cache1".into(),
        };
        assert!(r.to_string().contains("Cache1"));
    }

    #[test]
    fn hazard_variants_display() {
        let d = ClusterError::ArmDown {
            arm: Arm::B,
            until_s: 1200.0,
        };
        assert!(d.to_string().contains("down until"));
        assert!(Error::source(&d).is_none());
        let t = ClusterError::TelemetryDropout { time_s: 30.0 };
        assert!(t.to_string().contains("dropout"));
        let k = ClusterError::KnobApplyFailed {
            arm: Arm::A,
            time_s: 60.0,
        };
        assert!(k.to_string().contains("knob-apply"));
    }
}
