//! Error type for the cluster substrate.

use softsku_archsim::ArchSimError;
use softsku_workloads::WorkloadError;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulated fleet.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The simulator rejected a configuration.
    Sim(ArchSimError),
    /// The workload model could not be built.
    Workload(WorkloadError),
    /// A reconfiguration required a reboot the service cannot tolerate on
    /// live traffic (paper Sec. 4: µSKU disables such knobs).
    RebootNotTolerated {
        /// Service name.
        service: String,
    },
    /// A configuration was rejected because it violates the service's QoS
    /// (latency above the SLO ceiling at the operating load).
    QosViolation {
        /// Modeled request latency in seconds.
        latency_s: f64,
        /// The SLO ceiling in seconds.
        limit_s: f64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Sim(e) => write!(f, "simulator rejected configuration: {e}"),
            ClusterError::Workload(e) => write!(f, "workload model error: {e}"),
            ClusterError::RebootNotTolerated { service } => {
                write!(f, "{service} cannot tolerate a live-traffic reboot")
            }
            ClusterError::QosViolation { latency_s, limit_s } => {
                write!(f, "qos violation: latency {latency_s:.6}s exceeds SLO {limit_s:.6}s")
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Sim(e) => Some(e),
            ClusterError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchSimError> for ClusterError {
    fn from(e: ArchSimError) -> Self {
        ClusterError::Sim(e)
    }
}

impl From<WorkloadError> for ClusterError {
    fn from(e: WorkloadError) -> Self {
        ClusterError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ClusterError::from(ArchSimError::FixedPointDiverged { iterations: 1 });
        assert!(Error::source(&e).is_some());
        let q = ClusterError::QosViolation {
            latency_s: 0.2,
            limit_s: 0.1,
        };
        assert!(q.to_string().contains("qos"));
        let r = ClusterError::RebootNotTolerated {
            service: "Cache1".into(),
        };
        assert!(r.to_string().contains("Cache1"));
    }
}
