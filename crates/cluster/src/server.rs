//! One simulated production server: a workload pinned to a platform under a
//! knob configuration, exposing throughput (MIPS/QPS), latency, and QoS.
//!
//! µSKU measures servers for minutes to hours per knob setting; simulating
//! every instruction of every sample would be intractable and pointless —
//! the microarchitecture does not change between samples, only load and
//! noise do. [`SimServer`] therefore evaluates the architecture engine once
//! per (configuration, load level) and caches a small load→performance
//! curve; the cheap per-sample path interpolates it. Code pushes invalidate
//! the cache (the binary changed), reproducing the measurement-vs-evolution
//! tension of paper Sec. 4.

use crate::error::ClusterError;
use softsku_archsim::engine::{Engine, ServerConfig, WindowReport};
use softsku_telemetry::streams::{stream_seed, StreamFamily};
use softsku_workloads::loadgen::CodePush;
use softsku_workloads::queuesim::{simulate_queue, ServiceDist, TailLatency};
use softsku_workloads::request::mmc_wait_factor;
use softsku_workloads::WorkloadProfile;
use std::collections::HashMap;

/// Load grid the engine is evaluated on (fractions of the service's peak
/// utilization); samples interpolate between the grid points.
const LOAD_GRID: [f64; 3] = [0.5, 0.75, 1.0];

/// A simulated server.
///
/// Cloning is cheap relative to construction: the clone carries the
/// already-computed calibration (`insn_per_query`, `production_mips`) and
/// the warmed load-curve cache, so a replica does not re-run the engine for
/// any configuration the original has already evaluated. The A/B scheduler
/// relies on this to fork per-test environment replicas.
#[derive(Debug, Clone)]
pub struct SimServer {
    profile: WorkloadProfile,
    config: ServerConfig,
    seed: u64,
    window_insns: u64,
    /// Instructions of *server* work per query, derived so the production
    /// configuration at peak load serves the profile's peak QPS.
    insn_per_query: f64,
    /// MIPS of the production configuration at peak load (speedup baseline).
    production_mips: f64,
    cache: HashMap<u64, LoadCurve>,
    /// Cumulative multiplier from code pushes.
    push_cpi_scale: f64,
}

#[derive(Debug, Clone)]
struct LoadCurve {
    mips: [f64; 3],
    peak_report: WindowReport,
}

impl SimServer {
    /// Default simulation window per engine evaluation.
    pub const DEFAULT_WINDOW: u64 = 300_000;

    /// Creates a server for `profile` starting in configuration `config`.
    ///
    /// # Errors
    ///
    /// Propagates engine validation/evaluation errors.
    pub fn new(
        profile: WorkloadProfile,
        config: ServerConfig,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        Self::with_window(profile, config, seed, Self::DEFAULT_WINDOW)
    }

    /// Creates a server with an explicit engine window size (tests use
    /// smaller windows for speed; figures use the default).
    ///
    /// # Errors
    ///
    /// Propagates engine validation/evaluation errors.
    pub fn with_window(
        profile: WorkloadProfile,
        config: ServerConfig,
        seed: u64,
        window_insns: u64,
    ) -> Result<Self, ClusterError> {
        let mut server = SimServer {
            profile,
            config,
            seed,
            window_insns,
            insn_per_query: 0.0,
            production_mips: 0.0,
            cache: HashMap::new(),
            push_cpi_scale: 1.0,
        };
        // Calibrate the on-server path length against the production
        // configuration at peak load (see DESIGN.md on Table 2 consistency).
        let prod = server.profile.production_config.clone();
        let prod_mips = server
            .evaluate(&prod, server.profile.peak_utilization)?
            .mips_total;
        server.production_mips = prod_mips;
        server.insn_per_query = prod_mips * 1e6 / server.profile.request.peak_qps;
        Ok(server)
    }

    /// The workload profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Current configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Reconfigures the server. Settings that require a reboot are rejected
    /// for services that cannot tolerate one on live traffic.
    ///
    /// # Errors
    ///
    /// [`ClusterError::RebootNotTolerated`] when `needs_reboot` and the
    /// profile forbids it; engine validation errors otherwise.
    pub fn reconfigure(
        &mut self,
        config: ServerConfig,
        needs_reboot: bool,
    ) -> Result<(), ClusterError> {
        if needs_reboot && !self.profile.constraints.tolerates_reboot {
            return Err(ClusterError::RebootNotTolerated {
                service: self.profile.service.name().to_string(),
            });
        }
        config.validate()?;
        self.config = config;
        Ok(())
    }

    /// Mean MIPS at `load` (fraction of peak utilization, 0–1 scale of the
    /// *service's* peak operating point).
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn mips(&mut self, load: f64) -> Result<f64, ClusterError> {
        let curve = self.curve_for(self.config.clone())?;
        Ok(interp(&curve.mips, load))
    }

    /// Queries per second at `load`.
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn qps(&mut self, load: f64) -> Result<f64, ClusterError> {
        Ok(self.mips(load)? * 1e6 / self.insn_per_query)
    }

    /// Average request latency at `load`, combining the Fig. 2 breakdown
    /// with an M/M/c queueing factor and the configuration's speed ratio.
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn latency(&mut self, load: f64) -> Result<f64, ClusterError> {
        let mips = self.mips(load)?;
        let speed = (mips / self.production_mips).max(1e-3);
        let base = self.profile.request.avg_latency_s;
        let servers = (self.config.active_cores * self.config.platform.smt).max(1);
        let rho = (load * self.profile.peak_utilization).clamp(0.01, 0.999);
        let rho_peak = self.profile.peak_utilization.clamp(0.01, 0.999);
        let wait_now = mmc_wait_factor(rho, servers);
        let wait_peak = mmc_wait_factor(rho_peak, servers).max(1e-9);
        let queue_scale = (wait_now / wait_peak).min(50.0);
        match self.profile.request.breakdown {
            Some(b) => {
                let running = base * b.running / speed;
                let queueing = base * (b.queue + b.scheduler) * queue_scale / speed;
                let io = base * b.io;
                Ok(running + queueing + io)
            }
            None => {
                // Cache tiers: concurrent paths; scale the whole latency by
                // speed with a mild queueing term.
                Ok(base / speed * (1.0 + 0.5 * (queue_scale - 1.0).max(0.0)))
            }
        }
    }

    /// Sojourn-time percentiles at `load` from the event-driven queue
    /// simulation: the request's running portion is the service time
    /// (heavy-tailed log-normal), the worker pool is the server set, and the
    /// configuration's speed ratio scales the work.
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn latency_tail(&mut self, load: f64) -> Result<TailLatency, ClusterError> {
        let mips = self.mips(load)?;
        let speed = (mips / self.production_mips).max(1e-3);
        let base = self.profile.request.avg_latency_s;
        let running_frac = self.profile.request.breakdown.map_or(1.0, |b| b.running);
        let service_s = base * running_frac / speed;
        let servers = (self.config.active_cores * self.config.platform.smt).max(1);
        let rho = (load * self.profile.peak_utilization).clamp(0.05, 0.98);
        let blocked_s = base * (1.0 - running_frac);
        let tail = simulate_queue(
            servers,
            rho,
            ServiceDist::LogNormal {
                mean: service_s.max(1e-9),
                cv2: 2.0,
            },
            20_000,
            stream_seed(self.seed, StreamFamily::ServerQueue),
        );
        // Blocked time (downstream I/O) adds on top of the local sojourn.
        Ok(TailLatency {
            mean: tail.mean + blocked_s,
            p50: tail.p50 + blocked_s,
            p95: tail.p95 + blocked_s,
            p99: tail.p99 + blocked_s,
        })
    }

    /// Whether the p99 SLO holds at `load` (tail-based QoS; stricter than
    /// the mean-based [`SimServer::qos_ok`]). The p99 budget is the QoS
    /// ceiling times the tail allowance implied by the paper's
    /// latency-constrained operation (3× the mean SLO).
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn qos_tail_ok(&mut self, load: f64) -> Result<bool, ClusterError> {
        let tail = self.latency_tail(load)?;
        Ok(tail.p99 <= self.profile.request.qos_latency_s() * 3.0)
    }

    /// Whether the SLO holds at `load`.
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn qos_ok(&mut self, load: f64) -> Result<bool, ClusterError> {
        Ok(self.latency(load)? <= self.profile.request.qos_latency_s())
    }

    /// Full engine report at the peak-load grid point for the current
    /// configuration (counters, TMAM, bandwidth).
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a configuration.
    pub fn peak_report(&mut self) -> Result<WindowReport, ClusterError> {
        Ok(self.curve_for(self.config.clone())?.peak_report.clone())
    }

    /// Applies a code push: the binary changed, perturbing base CPI and
    /// invalidating every cached measurement.
    pub fn apply_code_push(&mut self, push: CodePush) {
        // Quantize to 0.5% steps: binaries differ discretely, and quantized
        // states let the evaluation cache be reused when a later push lands
        // near a previously-seen performance level.
        let raw = (self.push_cpi_scale * push.cpi_scale).clamp(0.8, 1.25);
        self.push_cpi_scale = (raw * 200.0).round() / 200.0;
        self.cache.clear();
    }

    /// Cumulative code-push CPI multiplier (diagnostic).
    pub fn push_cpi_scale(&self) -> f64 {
        self.push_cpi_scale
    }

    fn curve_for(&mut self, config: ServerConfig) -> Result<&LoadCurve, ClusterError> {
        let key = config_key(&config, self.push_cpi_scale);
        if !self.cache.contains_key(&key) {
            // The three load-grid evaluations are independent; run them in
            // parallel (they dominate the cost of every reconfiguration).
            let profile = &self.profile;
            let push_scale = self.push_cpi_scale;
            let seed = self.seed;
            let window = self.window_insns;
            let eval = |load: f64| -> Result<WindowReport, ClusterError> {
                let mut stream = profile.stream.clone();
                stream.base_cpi_scale *= push_scale;
                let engine = Engine::new(config.clone(), stream, seed)?;
                Ok(engine.run_window(window, load)?)
            };
            let results: Vec<Result<WindowReport, ClusterError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = LOAD_GRID
                    .iter()
                    .map(|&g| {
                        let eval = &eval;
                        scope.spawn(move || eval(g * profile.peak_utilization))
                    })
                    .collect();
                // detlint::allow(panic_path): join() only fails if the worker
                // panicked; re-raising that panic is the correct response.
                handles
                    .into_iter()
                    .map(|h| h.join().expect("evaluation thread panicked"))
                    .collect()
            });
            let mut mips = [0.0; 3];
            let mut peak_report = None;
            for (i, result) in results.into_iter().enumerate() {
                let report = result?;
                mips[i] = report.mips_total;
                if i == LOAD_GRID.len() - 1 {
                    peak_report = Some(report);
                }
            }
            self.cache.insert(
                key,
                LoadCurve {
                    mips,
                    // detlint::allow(panic_path): LOAD_GRID has a fixed,
                    // non-zero length, so the last iteration always sets it.
                    peak_report: peak_report.expect("grid is non-empty"),
                },
            );
        }
        // detlint::allow(panic_path): the entry was inserted two statements
        // up under this very key.
        Ok(self.cache.get(&key).expect("inserted above"))
    }

    fn evaluate(&self, config: &ServerConfig, load: f64) -> Result<WindowReport, ClusterError> {
        let mut stream = self.profile.stream.clone();
        stream.base_cpi_scale *= self.push_cpi_scale;
        let engine = Engine::new(config.clone(), stream, self.seed)?;
        Ok(engine.run_window(self.window_insns, load)?)
    }
}

/// Interpolates the load curve (grid in fractions of peak).
fn interp(mips: &[f64; 3], load: f64) -> f64 {
    let l = load.clamp(0.0, 1.2);
    if l <= LOAD_GRID[0] {
        // Below the grid: throughput is load-proportional.
        return mips[0] * l / LOAD_GRID[0];
    }
    for i in 0..LOAD_GRID.len() - 1 {
        if l <= LOAD_GRID[i + 1] {
            let t = (l - LOAD_GRID[i]) / (LOAD_GRID[i + 1] - LOAD_GRID[i]);
            return mips[i] + t * (mips[i + 1] - mips[i]);
        }
    }
    // Slight overload: extrapolate the last segment.
    let t = (l - LOAD_GRID[1]) / (LOAD_GRID[2] - LOAD_GRID[1]);
    mips[1] + t * (mips[2] - mips[1])
}

/// Hashes a configuration (plus code-push state) into a cache key.
fn config_key(c: &ServerConfig, push_scale: f64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(c.core_freq_ghz.to_bits());
    mix(c.uncore_freq_ghz.to_bits());
    mix(c.active_cores as u64);
    mix(c.llc_ways_enabled as u64);
    match c.cdp {
        None => mix(0),
        Some(p) => mix(1 | ((p.data_ways as u64) << 8) | ((p.code_ways as u64) << 16)),
    }
    let pf = &c.prefetchers;
    mix(pf.l2_stream as u64
        | (pf.l2_adjacent as u64) << 1
        | (pf.dcu as u64) << 2
        | (pf.dcu_ip as u64) << 3);
    mix(match c.thp {
        softsku_archsim::ThpMode::Madvise => 11,
        softsku_archsim::ThpMode::AlwaysOn => 12,
        softsku_archsim::ThpMode::NeverOn => 13,
    });
    mix(c.shp_pages as u64);
    mix(push_scale.to_bits());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_archsim::platform::PlatformKind;
    use softsku_workloads::Microservice;

    const TEST_WINDOW: u64 = 60_000;

    fn web_server() -> SimServer {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let cfg = profile.production_config.clone();
        SimServer::with_window(profile, cfg, 7, TEST_WINDOW).unwrap()
    }

    #[test]
    fn production_peak_qps_matches_table2() {
        let mut s = web_server();
        let qps = s.qps(1.0).unwrap();
        let target = Microservice::Web.targets().table2.0;
        assert!(
            (qps - target).abs() / target < 0.02,
            "qps {qps} vs table2 {target}"
        );
    }

    #[test]
    fn mips_scales_with_load() {
        let mut s = web_server();
        let half = s.mips(0.5).unwrap();
        let full = s.mips(1.0).unwrap();
        assert!(half < full);
        assert!(half > 0.3 * full);
    }

    #[test]
    fn latency_rises_with_load_and_violates_qos_eventually() {
        let mut s = web_server();
        let l_low = s.latency(0.6).unwrap();
        let l_peak = s.latency(1.0).unwrap();
        let l_over = s.latency(1.15).unwrap();
        assert!(l_low < l_peak, "queueing must grow with load");
        assert!(l_peak < l_over);
        assert!(
            s.qos_ok(1.0).unwrap(),
            "peak operating point is QoS-feasible"
        );
    }

    #[test]
    fn faster_config_serves_lower_latency() {
        let mut s = web_server();
        let base = s.latency(1.0).unwrap();
        // Slow the cores down drastically.
        let mut slow_cfg = s.config().clone();
        slow_cfg.core_freq_ghz = 1.6;
        s.reconfigure(slow_cfg, false).unwrap();
        let slow = s.latency(1.0).unwrap();
        assert!(slow > base * 1.02, "slow {slow} vs base {base}");
    }

    #[test]
    fn reboot_gating() {
        let profile = Microservice::Cache2
            .profile(PlatformKind::Skylake18)
            .unwrap();
        let cfg = profile.production_config.clone();
        let mut s = SimServer::with_window(profile, cfg.clone(), 3, TEST_WINDOW).unwrap();
        let mut fewer_cores = cfg.clone();
        fewer_cores.active_cores = 8;
        assert!(matches!(
            s.reconfigure(fewer_cores.clone(), true),
            Err(ClusterError::RebootNotTolerated { .. })
        ));
        // Non-reboot change is fine.
        let mut freq = cfg;
        freq.core_freq_ghz = 1.8;
        s.reconfigure(freq, false).unwrap();
    }

    #[test]
    fn code_push_invalidates_and_perturbs() {
        let mut s = web_server();
        let before = s.mips(1.0).unwrap();
        s.apply_code_push(CodePush {
            cpi_scale: 1.05,
            miss_scale: 1.0,
        });
        let after = s.mips(1.0).unwrap();
        assert!(after < before, "5% CPI regression must reduce MIPS");
    }

    #[test]
    fn curve_is_cached() {
        let mut s = web_server();
        let _ = s.mips(1.0).unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..1000 {
            let _ = s.mips(0.8).unwrap();
        }
        assert!(
            t0.elapsed().as_millis() < 200,
            "cached samples must be cheap"
        );
    }

    #[test]
    fn tail_latency_is_ordered_and_binds_before_the_mean() {
        let mut s = web_server();
        let tail = s.latency_tail(1.0).unwrap();
        assert!(tail.p50 <= tail.p95 && tail.p95 <= tail.p99);
        assert!(tail.p99 > tail.mean);
        // The mean-based QoS holds at peak; slow the server drastically and
        // the tail check must fail at least as early as the mean check.
        let mut slow = s.config().clone();
        slow.core_freq_ghz = 1.6;
        slow.llc_ways_enabled = 2;
        s.reconfigure(slow, false).unwrap();
        if s.qos_ok(1.0).unwrap() {
            // Mean may survive; the tail is the stricter constraint.
            let _ = s.qos_tail_ok(1.0).unwrap();
        } else {
            assert!(!s.qos_tail_ok(1.0).unwrap());
        }
    }

    #[test]
    fn cache_tier_latency_model_works() {
        let profile = Microservice::Cache1
            .profile(PlatformKind::Skylake20)
            .unwrap();
        let cfg = profile.production_config.clone();
        let mut s = SimServer::with_window(profile, cfg, 5, TEST_WINDOW).unwrap();
        let lat = s.latency(1.0).unwrap();
        assert!(lat < 1e-3, "cache latency stays microsecond-scale: {lat}");
        // Starving the LLC must blow QoS (the paper's Fig. 10 exclusion).
        let mut starved = s.config().clone();
        starved.llc_ways_enabled = 2;
        s.reconfigure(starved, false).unwrap();
        assert!(!s.qos_ok(1.0).unwrap(), "2-way LLC must violate Cache QoS");
    }
}
