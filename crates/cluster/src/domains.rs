//! Named failure domains and the deterministic chaos campaign layer.
//!
//! The paper's "@scale" story (Sec. 6) runs per-platform soft-SKU
//! campaigns across a heterogeneous fleet; at that scale the dominant
//! hazard is *correlated* failure — a bad code push or a shared-pool
//! brownout hits many services at once, which no single-service rollback
//! can absorb. This module models the fleet's failure-domain structure
//! ([`FleetTopology`]: platform pools à la Broadwell16/Skylake18, racks
//! within pools) and generates domain-correlated hazards against it
//! ([`ChaosSchedule`]): pool-wide load brownouts (some of which go fully
//! dark), code-push waves that erode several services' tuned gains at
//! once, canary-replica crashes, and stuck stage transitions.
//!
//! Determinism mirrors [`crate::hazards`]: every fault family draws from
//! its own registered [`StreamFamily`] stream, so the same
//! `(topology, config, seed)` triple always yields the same campaign and
//! disabling one family never perturbs another's timeline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softsku_telemetry::streams::{StreamFamily, StreamRegistry};
use std::fmt;

/// One named failure domain: a rack inside a platform pool.
///
/// Pool-scoped faults (brownouts, push waves) hit every rack of the pool
/// at once — that is the correlation the coordinator must survive — while
/// rack-scoped faults (canary crashes, stage stalls) hit one rack.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FailureDomain {
    /// The platform pool (e.g. `bdw16`, `skl18`).
    pub pool: String,
    /// The rack within the pool (e.g. `r0`).
    pub rack: String,
}

impl FailureDomain {
    /// Builds a domain from its pool and rack names.
    pub fn new(pool: &str, rack: &str) -> Self {
        FailureDomain {
            pool: pool.to_string(),
            rack: rack.to_string(),
        }
    }
}

impl fmt::Display for FailureDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.pool, self.rack)
    }
}

/// The fleet's failure-domain structure: platform pools, racks within
/// pools, in declaration order (the canonical order every index refers
/// to).
#[derive(Debug, Clone, Default)]
pub struct FleetTopology {
    pools: Vec<(String, Vec<String>)>,
}

impl FleetTopology {
    /// An empty topology; add pools with [`FleetTopology::pool`].
    pub fn new() -> Self {
        FleetTopology::default()
    }

    /// Appends a pool with the given racks.
    #[must_use]
    pub fn pool(mut self, name: &str, racks: &[&str]) -> Self {
        self.pools.push((
            name.to_string(),
            racks.iter().map(|r| (*r).to_string()).collect(),
        ));
        self
    }

    /// The paper-shaped two-platform fleet: a Broadwell16 pool and a
    /// Skylake18 pool, two racks each.
    pub fn paper_pools() -> Self {
        FleetTopology::new()
            .pool("bdw16", &["r0", "r1"])
            .pool("skl18", &["r0", "r1"])
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// The pool name at `index` (canonical order).
    pub fn pool_name(&self, index: usize) -> Option<&str> {
        self.pools.get(index).map(|(name, _)| name.as_str())
    }

    /// The canonical index of the named pool.
    pub fn pool_index(&self, name: &str) -> Option<usize> {
        self.pools.iter().position(|(n, _)| n == name)
    }

    /// Every domain (rack) in canonical order: pools in declaration order,
    /// racks in declaration order within each pool.
    pub fn domains(&self) -> Vec<FailureDomain> {
        let mut out = Vec::new();
        for (pool, racks) in &self.pools {
            for rack in racks {
                out.push(FailureDomain {
                    pool: pool.clone(),
                    rack: rack.clone(),
                });
            }
        }
        out
    }

    /// Number of domains (racks) across all pools.
    pub fn domain_count(&self) -> usize {
        self.pools.iter().map(|(_, racks)| racks.len()).sum()
    }

    /// The domain at canonical index `index`.
    pub fn domain(&self, index: usize) -> Option<FailureDomain> {
        let mut i = index;
        for (pool, racks) in &self.pools {
            if i < racks.len() {
                return Some(FailureDomain {
                    pool: pool.clone(),
                    rack: racks[i].clone(),
                });
            }
            i -= racks.len();
        }
        None
    }

    /// The canonical index of `domain`, if it exists in the topology.
    pub fn domain_index(&self, domain: &FailureDomain) -> Option<usize> {
        let mut i = 0;
        for (pool, racks) in &self.pools {
            for rack in racks {
                if *pool == domain.pool && *rack == domain.rack {
                    return Some(i);
                }
                i += 1;
            }
        }
        None
    }

    /// The pool index a canonical domain index belongs to.
    pub fn pool_of_domain(&self, index: usize) -> Option<usize> {
        let mut i = index;
        for (pool_idx, (_, racks)) in self.pools.iter().enumerate() {
            if i < racks.len() {
                return Some(pool_idx);
            }
            i -= racks.len();
        }
        None
    }
}

/// Chaos-campaign knobs. All rates default to zero ([`ChaosConfig::none`])
/// so a chaos-free coordinator behaves exactly like independent rollouts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Mean pool-wide load brownouts per simulated day across the fleet.
    pub brownout_rate_per_day: f64,
    /// Seconds each brownout lasts.
    pub brownout_duration_s: f64,
    /// Relative load lost while a brownout is active (0.3 → −30 %).
    pub brownout_depth: f64,
    /// Probability a brownout goes fully dark (the domain serves nothing
    /// and staged services must degrade to their holdback configs).
    pub blackout_prob: f64,
    /// Mean correlated code-push waves per simulated day.
    pub push_wave_rate_per_day: f64,
    /// Fraction of every affected service's tuned advantage one wave
    /// erodes.
    pub push_wave_erosion: f64,
    /// Mean canary-replica crashes per simulated day.
    pub canary_crash_rate_per_day: f64,
    /// Seconds crashed canary replicas stay down.
    pub canary_crash_outage_s: f64,
    /// Candidate replicas each crash takes down.
    pub canary_crash_replicas: usize,
    /// Mean stuck-stage-transition windows per simulated day.
    pub stall_rate_per_day: f64,
    /// Seconds each stall pins a domain's stage transitions.
    pub stall_duration_s: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl ChaosConfig {
    /// No chaos at all.
    pub fn none() -> Self {
        ChaosConfig {
            brownout_rate_per_day: 0.0,
            brownout_duration_s: 0.0,
            brownout_depth: 0.0,
            blackout_prob: 0.0,
            push_wave_rate_per_day: 0.0,
            push_wave_erosion: 0.0,
            canary_crash_rate_per_day: 0.0,
            canary_crash_outage_s: 0.0,
            canary_crash_replicas: 0,
            stall_rate_per_day: 0.0,
            stall_duration_s: 0.0,
        }
    }

    /// A lively campaign exercising all four fault families: several
    /// brownouts and push waves a day (some brownouts going dark), crashed
    /// canary replicas, and stalled stage transitions.
    pub fn campaign() -> Self {
        ChaosConfig {
            brownout_rate_per_day: 4.0,
            brownout_duration_s: 3_600.0,
            brownout_depth: 0.3,
            blackout_prob: 0.25,
            push_wave_rate_per_day: 6.0,
            push_wave_erosion: 0.08,
            canary_crash_rate_per_day: 6.0,
            canary_crash_outage_s: 1_800.0,
            canary_crash_replicas: 2,
            stall_rate_per_day: 3.0,
            stall_duration_s: 2_400.0,
        }
    }

    /// Whether any fault family is enabled.
    pub fn is_active(&self) -> bool {
        self.brownout_rate_per_day > 0.0
            || self.push_wave_rate_per_day > 0.0
            || self.canary_crash_rate_per_day > 0.0
            || self.stall_rate_per_day > 0.0
    }

    /// Clamps every field into its sane range.
    fn validated(self) -> Self {
        ChaosConfig {
            brownout_rate_per_day: self.brownout_rate_per_day.max(0.0),
            brownout_duration_s: self.brownout_duration_s.max(0.0),
            brownout_depth: self.brownout_depth.clamp(0.0, 1.0),
            blackout_prob: self.blackout_prob.clamp(0.0, 1.0),
            push_wave_rate_per_day: self.push_wave_rate_per_day.max(0.0),
            push_wave_erosion: self.push_wave_erosion.clamp(0.0, 1.0),
            canary_crash_rate_per_day: self.canary_crash_rate_per_day.max(0.0),
            canary_crash_outage_s: self.canary_crash_outage_s.max(0.0),
            canary_crash_replicas: self.canary_crash_replicas,
            stall_rate_per_day: self.stall_rate_per_day.max(0.0),
            stall_duration_s: self.stall_duration_s.max(0.0),
        }
    }
}

/// One injected chaos fault. Domain references are canonical topology
/// indices; resolve names through the [`FleetTopology`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosEvent {
    /// A pool-wide load brownout started (dark = the pool serves nothing).
    Brownout {
        /// Affected pool (canonical index).
        pool: usize,
        /// When it started.
        at_s: f64,
        /// When it lifts.
        until_s: f64,
        /// Relative load lost while active.
        depth: f64,
        /// Whether the pool went fully dark.
        dark: bool,
    },
    /// A correlated code-push wave landed on every service in a pool.
    PushWave {
        /// Affected pool (canonical index).
        pool: usize,
        /// When it landed.
        at_s: f64,
        /// Fraction of each affected service's tuned advantage eroded.
        erosion: f64,
    },
    /// Canary replicas crashed in one rack.
    CanaryCrash {
        /// Affected domain (canonical index).
        domain: usize,
        /// When the crash landed.
        at_s: f64,
        /// When the replicas come back.
        until_s: f64,
        /// Candidate replicas taken down.
        replicas: usize,
    },
    /// Stage transitions stalled in one rack.
    StageStall {
        /// Affected domain (canonical index).
        domain: usize,
        /// When the stall started.
        at_s: f64,
        /// When transitions unstick.
        until_s: f64,
    },
}

impl ChaosEvent {
    /// The ledger metric name of this fault family (`chaos.*`).
    pub fn metric(&self) -> &'static str {
        match self {
            ChaosEvent::Brownout { .. } => "chaos.brownout",
            ChaosEvent::PushWave { .. } => "chaos.push_wave",
            ChaosEvent::CanaryCrash { .. } => "chaos.canary_crash",
            ChaosEvent::StageStall { .. } => "chaos.stall",
        }
    }

    /// When the fault was injected.
    pub fn at_s(&self) -> f64 {
        match *self {
            ChaosEvent::Brownout { at_s, .. }
            | ChaosEvent::PushWave { at_s, .. }
            | ChaosEvent::CanaryCrash { at_s, .. }
            | ChaosEvent::StageStall { at_s, .. } => at_s,
        }
    }

    /// The fault's headline magnitude, as recorded to the ledger: brownout
    /// depth, wave erosion, crashed replicas, or stall duration.
    pub fn magnitude(&self) -> f64 {
        match *self {
            ChaosEvent::Brownout { depth, dark, .. } => {
                if dark {
                    1.0
                } else {
                    depth
                }
            }
            ChaosEvent::PushWave { erosion, .. } => erosion,
            ChaosEvent::CanaryCrash { replicas, .. } => replicas as f64,
            ChaosEvent::StageStall { at_s, until_s, .. } => until_s - at_s,
        }
    }

    /// The affected scope rendered against `topology`: the pool name for
    /// pool-wide faults, `pool/rack` for rack faults.
    pub fn scope(&self, topology: &FleetTopology) -> String {
        match *self {
            ChaosEvent::Brownout { pool, .. } | ChaosEvent::PushWave { pool, .. } => {
                topology.pool_name(pool).unwrap_or("?").to_string()
            }
            ChaosEvent::CanaryCrash { domain, .. } | ChaosEvent::StageStall { domain, .. } => {
                match topology.domain(domain) {
                    Some(d) => d.to_string(),
                    None => "?".to_string(),
                }
            }
        }
    }
}

/// Deterministic domain-correlated chaos timeline for one topology.
///
/// # Example
///
/// ```
/// use softsku_cluster::domains::{ChaosConfig, ChaosSchedule, FleetTopology};
///
/// let topo = FleetTopology::paper_pools();
/// let a = ChaosSchedule::preview(&topo, ChaosConfig::campaign(), 7, 86_400.0, 600.0);
/// let b = ChaosSchedule::preview(&topo, ChaosConfig::campaign(), 7, 86_400.0, 600.0);
/// assert_eq!(a, b); // same (topology, config, seed) → same campaign
/// ```
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    topology: FleetTopology,
    config: ChaosConfig,
    brownout_rng: SmallRng,
    wave_rng: SmallRng,
    crash_rng: SmallRng,
    stall_rng: SmallRng,
    next_brownout_t: f64,
    next_wave_t: f64,
    next_crash_t: f64,
    next_stall_t: f64,
    /// Per-pool brownout end time, depth, and darkness.
    brownout_until: Vec<f64>,
    brownout_depth: Vec<f64>,
    brownout_dark: Vec<bool>,
    /// Per-domain stall end time.
    stall_until: Vec<f64>,
}

impl ChaosSchedule {
    /// Builds the campaign for `(topology, config, seed)`; each fault
    /// family derives an independent stream from `seed` through the
    /// registry.
    pub fn new(topology: &FleetTopology, config: ChaosConfig, seed: u64) -> Self {
        let config = config.validated();
        let mut streams = StreamRegistry::new(seed);
        let mut brownout_rng = SmallRng::seed_from_u64(streams.derive(StreamFamily::ChaosBrownout));
        let mut wave_rng = SmallRng::seed_from_u64(streams.derive(StreamFamily::ChaosPushWave));
        let mut crash_rng = SmallRng::seed_from_u64(streams.derive(StreamFamily::ChaosCanaryCrash));
        let mut stall_rng = SmallRng::seed_from_u64(streams.derive(StreamFamily::ChaosStall));
        let next_brownout_t = daily_gap(&mut brownout_rng, config.brownout_rate_per_day);
        let next_wave_t = daily_gap(&mut wave_rng, config.push_wave_rate_per_day);
        let next_crash_t = daily_gap(&mut crash_rng, config.canary_crash_rate_per_day);
        let next_stall_t = daily_gap(&mut stall_rng, config.stall_rate_per_day);
        let pools = topology.pool_count().max(1);
        let domains = topology.domain_count().max(1);
        ChaosSchedule {
            topology: topology.clone(),
            config,
            brownout_rng,
            wave_rng,
            crash_rng,
            stall_rng,
            next_brownout_t,
            next_wave_t,
            next_crash_t,
            next_stall_t,
            brownout_until: vec![f64::NEG_INFINITY; pools],
            brownout_depth: vec![0.0; pools],
            brownout_dark: vec![false; pools],
            stall_until: vec![f64::NEG_INFINITY; domains],
        }
    }

    /// The topology the campaign targets.
    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    /// The (validated) configuration driving this campaign.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Advances the campaign to time `t` and returns every fault injected
    /// strictly up to and including `t`, in a canonical order (brownouts,
    /// waves, crashes, stalls; each family in arrival order). Must be
    /// called with nondecreasing `t`.
    pub fn tick(&mut self, t: f64) -> Vec<ChaosEvent> {
        let mut events = Vec::new();
        let pools = self.topology.pool_count();
        let domains = self.topology.domain_count();

        while self.next_brownout_t <= t && pools > 0 {
            let pool = self.brownout_rng.gen_range(0..pools);
            let dark = self.brownout_rng.gen::<f64>() < self.config.blackout_prob;
            let until = self.next_brownout_t + self.config.brownout_duration_s;
            if until > self.brownout_until[pool] {
                self.brownout_until[pool] = until;
                self.brownout_depth[pool] = self.config.brownout_depth;
                self.brownout_dark[pool] = dark;
            }
            events.push(ChaosEvent::Brownout {
                pool,
                at_s: self.next_brownout_t,
                until_s: until,
                depth: self.config.brownout_depth,
                dark,
            });
            self.next_brownout_t +=
                daily_gap(&mut self.brownout_rng, self.config.brownout_rate_per_day);
        }

        while self.next_wave_t <= t && pools > 0 {
            let pool = self.wave_rng.gen_range(0..pools);
            events.push(ChaosEvent::PushWave {
                pool,
                at_s: self.next_wave_t,
                erosion: self.config.push_wave_erosion,
            });
            self.next_wave_t += daily_gap(&mut self.wave_rng, self.config.push_wave_rate_per_day);
        }

        while self.next_crash_t <= t && domains > 0 {
            let domain = self.crash_rng.gen_range(0..domains);
            let until = self.next_crash_t + self.config.canary_crash_outage_s;
            events.push(ChaosEvent::CanaryCrash {
                domain,
                at_s: self.next_crash_t,
                until_s: until,
                replicas: self.config.canary_crash_replicas,
            });
            self.next_crash_t +=
                daily_gap(&mut self.crash_rng, self.config.canary_crash_rate_per_day);
        }

        while self.next_stall_t <= t && domains > 0 {
            let domain = self.stall_rng.gen_range(0..domains);
            let until = self.next_stall_t + self.config.stall_duration_s;
            if until > self.stall_until[domain] {
                self.stall_until[domain] = until;
            }
            events.push(ChaosEvent::StageStall {
                domain,
                at_s: self.next_stall_t,
                until_s: until,
            });
            self.next_stall_t += daily_gap(&mut self.stall_rng, self.config.stall_rate_per_day);
        }

        events
    }

    /// The load multiplier a pool serves under at time `t`: 1.0 when
    /// healthy, `1 − depth` while browned out, 0.0 while dark.
    pub fn load_multiplier(&self, pool: usize, t: f64) -> f64 {
        match self.brownout_until.get(pool) {
            Some(&until) if t < until => {
                if self.brownout_dark[pool] {
                    0.0
                } else {
                    1.0 - self.brownout_depth[pool]
                }
            }
            _ => 1.0,
        }
    }

    /// Whether the pool is fully dark at time `t`.
    pub fn pool_dark(&self, pool: usize, t: f64) -> bool {
        matches!(self.brownout_until.get(pool), Some(&until) if t < until)
            && self.brownout_dark[pool]
    }

    /// Whether stage transitions are stalled in `domain` at time `t`.
    pub fn stalled(&self, domain: usize, t: f64) -> bool {
        matches!(self.stall_until.get(domain), Some(&until) if t < until)
    }

    /// Replays the campaign for `(topology, config, seed)` over
    /// `horizon_s` at `spacing_s` tick spacing. Pure function of its
    /// arguments — the determinism tests compare these timelines
    /// byte-for-byte.
    pub fn preview(
        topology: &FleetTopology,
        config: ChaosConfig,
        seed: u64,
        horizon_s: f64,
        spacing_s: f64,
    ) -> Vec<ChaosEvent> {
        let spacing = spacing_s.max(1e-3);
        let mut schedule = ChaosSchedule::new(topology, config, seed);
        let mut events = Vec::new();
        let mut t = spacing;
        while t <= horizon_s {
            events.extend(schedule.tick(t));
            t += spacing;
        }
        events
    }
}

/// Exponential inter-arrival gap for a Poisson process at `rate_per_day`,
/// or infinity when the process is disabled.
fn daily_gap(rng: &mut SmallRng, rate_per_day: f64) -> f64 {
    if rate_per_day <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * 86_400.0 / rate_per_day
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FleetTopology {
        FleetTopology::paper_pools()
    }

    #[test]
    fn topology_orders_domains_canonically() {
        let t = topo();
        assert_eq!(t.pool_count(), 2);
        assert_eq!(t.domain_count(), 4);
        let domains = t.domains();
        assert_eq!(domains[0], FailureDomain::new("bdw16", "r0"));
        assert_eq!(domains[3], FailureDomain::new("skl18", "r1"));
        for (i, d) in domains.iter().enumerate() {
            assert_eq!(t.domain_index(d), Some(i));
            assert_eq!(t.domain(i).as_ref(), Some(d));
        }
        assert_eq!(t.pool_of_domain(0), Some(0));
        assert_eq!(t.pool_of_domain(2), Some(1));
        assert_eq!(t.pool_index("skl18"), Some(1));
        assert_eq!(t.pool_index("missing"), None);
        assert_eq!(domains[2].to_string(), "skl18/r0");
    }

    #[test]
    fn none_is_inert() {
        let mut s = ChaosSchedule::new(&topo(), ChaosConfig::none(), 3);
        for i in 1..=2_000 {
            assert!(s.tick(i as f64 * 600.0).is_empty());
        }
        for pool in 0..2 {
            assert_eq!(s.load_multiplier(pool, 1e6), 1.0);
            assert!(!s.pool_dark(pool, 1e6));
        }
        for domain in 0..4 {
            assert!(!s.stalled(domain, 1e6));
        }
        assert!(!ChaosConfig::none().is_active());
        assert!(ChaosConfig::campaign().is_active());
    }

    #[test]
    fn campaign_injects_all_four_families_at_roughly_configured_rates() {
        let events =
            ChaosSchedule::preview(&topo(), ChaosConfig::campaign(), 9, 30.0 * 86_400.0, 600.0);
        let count = |f: fn(&ChaosEvent) -> bool| events.iter().filter(|e| f(e)).count() as f64;
        let brownouts = count(|e| matches!(e, ChaosEvent::Brownout { .. }));
        let waves = count(|e| matches!(e, ChaosEvent::PushWave { .. }));
        let crashes = count(|e| matches!(e, ChaosEvent::CanaryCrash { .. }));
        let stalls = count(|e| matches!(e, ChaosEvent::StageStall { .. }));
        // 30 days at the campaign rates: 120 brownouts, 180 waves/crashes,
        // 90 stalls in expectation; accept a generous band.
        assert!((70.0..190.0).contains(&brownouts), "brownouts {brownouts}");
        assert!((110.0..270.0).contains(&waves), "waves {waves}");
        assert!((110.0..270.0).contains(&crashes), "crashes {crashes}");
        assert!((45.0..160.0).contains(&stalls), "stalls {stalls}");
        // Some but not all brownouts go dark at blackout_prob = 0.25.
        let dark = count(|e| matches!(e, ChaosEvent::Brownout { dark: true, .. }));
        assert!(dark > 0.0 && dark < brownouts, "dark {dark} of {brownouts}");
    }

    #[test]
    fn brownouts_lower_the_pool_load_then_clear() {
        let cfg = ChaosConfig {
            brownout_rate_per_day: 8.0,
            brownout_duration_s: 3_600.0,
            brownout_depth: 0.4,
            ..ChaosConfig::none()
        };
        let mut s = ChaosSchedule::new(&topo(), cfg, 5);
        let mut t = 0.0;
        loop {
            t += 600.0;
            let events = s.tick(t);
            if let Some(ChaosEvent::Brownout { pool, until_s, .. }) = events.first() {
                assert!((s.load_multiplier(*pool, t) - 0.6).abs() < 1e-12);
                assert_eq!(s.load_multiplier(*pool, until_s + 1.0), 1.0);
                break;
            }
            assert!(t < 30.0 * 86_400.0, "a brownout must arrive eventually");
        }
    }

    #[test]
    fn stalls_pin_exactly_their_domain() {
        let cfg = ChaosConfig {
            stall_rate_per_day: 8.0,
            stall_duration_s: 3_600.0,
            ..ChaosConfig::none()
        };
        let mut s = ChaosSchedule::new(&topo(), cfg, 11);
        let mut t = 0.0;
        loop {
            t += 600.0;
            let events = s.tick(t);
            if let Some(ChaosEvent::StageStall {
                domain, until_s, ..
            }) = events.first()
            {
                assert!(s.stalled(*domain, t));
                assert!(!s.stalled(*domain, until_s + 1.0));
                break;
            }
            assert!(t < 30.0 * 86_400.0, "a stall must arrive eventually");
        }
    }

    #[test]
    fn preview_is_deterministic_and_family_independent() {
        let cfg = ChaosConfig::campaign();
        let a = ChaosSchedule::preview(&topo(), cfg, 21, 7.0 * 86_400.0, 600.0);
        let b = ChaosSchedule::preview(&topo(), cfg, 21, 7.0 * 86_400.0, 600.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a week of campaign chaos is not silent");

        // Disabling stalls must not move the push-wave timeline (stream
        // independence across fault families).
        let no_stalls = ChaosConfig {
            stall_rate_per_day: 0.0,
            ..cfg
        };
        let waves = |events: &[ChaosEvent]| {
            events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::PushWave { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        let c = ChaosSchedule::preview(&topo(), no_stalls, 21, 7.0 * 86_400.0, 600.0);
        assert_eq!(waves(&a), waves(&c));
    }

    #[test]
    fn event_accessors_describe_the_fault() {
        let t = topo();
        let e = ChaosEvent::Brownout {
            pool: 1,
            at_s: 10.0,
            until_s: 20.0,
            depth: 0.3,
            dark: false,
        };
        assert_eq!(e.metric(), "chaos.brownout");
        assert_eq!(e.at_s(), 10.0);
        assert!((e.magnitude() - 0.3).abs() < 1e-12);
        assert_eq!(e.scope(&t), "skl18");
        let e = ChaosEvent::CanaryCrash {
            domain: 3,
            at_s: 5.0,
            until_s: 65.0,
            replicas: 2,
        };
        assert_eq!(e.metric(), "chaos.canary_crash");
        assert_eq!(e.scope(&t), "skl18/r1");
        assert_eq!(e.magnitude(), 2.0);
        let e = ChaosEvent::StageStall {
            domain: 0,
            at_s: 5.0,
            until_s: 65.0,
        };
        assert_eq!(e.metric(), "chaos.stall");
        assert_eq!(e.magnitude(), 60.0);
    }
}
