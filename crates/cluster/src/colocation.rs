//! Co-location: two microservices sharing one server (paper Sec. 7).
//!
//! The paper's fleet runs every service on dedicated bare metal, and Sec. 7
//! flags co-location as future work: "scheduler systems that map service
//! affinities can be designed in a µSKU-aware manner". This module
//! implements that extension on the simulator: a [`ColocatedPair`] couples
//! two engines through the shared LLC (capacity split) and the shared memory
//! queue (each service sees the other's bandwidth as background load), and
//! [`best_pairing`] is the toy µSKU-aware scheduler — it evaluates the
//! possible pairings of four services onto two servers and picks the one
//! with the highest total normalized throughput among QoS-feasible options.

use crate::error::ClusterError;
use softsku_archsim::engine::{Engine, ServerConfig};
use softsku_telemetry::streams::{stream_seed, StreamFamily};
use softsku_workloads::{Microservice, WorkloadProfile};

/// Result of co-locating two services on one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocationOutcome {
    /// MIPS of service A when co-located.
    pub mips_a: f64,
    /// MIPS of service B when co-located.
    pub mips_b: f64,
    /// A's throughput relative to running alone on its core allocation.
    pub retention_a: f64,
    /// B's throughput relative to running alone on its core allocation.
    pub retention_b: f64,
    /// Memory-bandwidth utilization of the shared socket.
    pub socket_mem_utilization: f64,
}

impl ColocationOutcome {
    /// Sum of normalized throughputs (2.0 = no interference at all).
    pub fn total_retention(&self) -> f64 {
        self.retention_a + self.retention_b
    }
}

/// Two services pinned to disjoint core partitions of one platform.
#[derive(Debug, Clone)]
pub struct ColocatedPair {
    profile_a: WorkloadProfile,
    profile_b: WorkloadProfile,
    cores_a: u32,
    cores_b: u32,
    window_insns: u64,
    seed: u64,
}

/// Fixed-point rounds for the mutual bandwidth coupling.
const COUPLING_ROUNDS: usize = 4;

impl ColocatedPair {
    /// Creates a pair; both profiles must target the same platform and the
    /// core split must fit it.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Sim`] when the split exceeds the platform or the
    /// platforms differ.
    pub fn new(
        profile_a: WorkloadProfile,
        profile_b: WorkloadProfile,
        cores_a: u32,
        cores_b: u32,
        window_insns: u64,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        let plat = profile_a.production_config.platform.clone();
        if profile_b.production_config.platform.kind != plat.kind {
            return Err(ClusterError::Sim(
                softsku_archsim::ArchSimError::InvalidGeometry(format!(
                    "co-located services must share a platform: {} vs {}",
                    plat.kind, profile_b.production_config.platform.kind
                )),
            ));
        }
        plat.validate_core_count(cores_a + cores_b)
            .map_err(ClusterError::Sim)?;
        Ok(ColocatedPair {
            profile_a,
            profile_b,
            cores_a,
            cores_b,
            window_insns,
            seed,
        })
    }

    /// Evaluates the pair: iterates the mutual bandwidth coupling to a fixed
    /// point and returns both services' throughput and interference.
    ///
    /// # Errors
    ///
    /// Engine errors.
    pub fn evaluate(&self) -> Result<ColocationOutcome, ClusterError> {
        // LLC split proportional to core allocation — what a CAT-based
        // scheduler would configure; µSKU-aware refinements would move this.
        let total = (self.cores_a + self.cores_b) as f64;
        let share_a = (self.cores_a as f64 / total).clamp(0.05, 0.95);
        let share_b = 1.0 - share_a;

        let cfg_a = self.partition_config(&self.profile_a, self.cores_a);
        let cfg_b = self.partition_config(&self.profile_b, self.cores_b);
        let engine_a = Engine::new(cfg_a.clone(), self.profile_a.stream.clone(), self.seed)?;
        let engine_b = Engine::new(
            cfg_b.clone(),
            self.profile_b.stream.clone(),
            stream_seed(self.seed, StreamFamily::ColocationPairB),
        )?;

        // Solo baselines: same core slice, full LLC, no background traffic.
        let solo_a = engine_a.run_window(self.window_insns, self.profile_a.peak_utilization)?;
        let solo_b = engine_b.run_window(self.window_insns, self.profile_b.peak_utilization)?;

        // Coupled fixed point.
        let mut bw_a = solo_a.bandwidth_gbps;
        let mut bw_b = solo_b.bandwidth_gbps;
        let mut report_a = solo_a.clone();
        let mut report_b = solo_b.clone();
        for _ in 0..COUPLING_ROUNDS {
            report_a = engine_a.run_colocated(
                self.window_insns,
                self.profile_a.peak_utilization,
                bw_b,
                Some(share_a),
            )?;
            report_b = engine_b.run_colocated(
                self.window_insns,
                self.profile_b.peak_utilization,
                bw_a,
                Some(share_b),
            )?;
            bw_a = report_a.bandwidth_gbps;
            bw_b = report_b.bandwidth_gbps;
        }

        Ok(ColocationOutcome {
            mips_a: report_a.mips_total,
            mips_b: report_b.mips_total,
            retention_a: report_a.mips_total / solo_a.mips_total.max(1e-9),
            retention_b: report_b.mips_total / solo_b.mips_total.max(1e-9),
            socket_mem_utilization: report_a.mem_utilization.max(report_b.mem_utilization),
        })
    }

    fn partition_config(&self, profile: &WorkloadProfile, cores: u32) -> ServerConfig {
        let mut cfg = profile.production_config.clone();
        cfg.active_cores = cores;
        cfg
    }
}

/// One scheduler decision: which two services share each of two servers.
#[derive(Debug, Clone, PartialEq)]
pub struct Pairing {
    /// Services on server 1.
    pub server1: (Microservice, Microservice),
    /// Services on server 2.
    pub server2: (Microservice, Microservice),
    /// Sum of the four normalized throughputs (max 4.0).
    pub total_retention: f64,
}

/// The µSKU-aware scheduler demo: places four services onto two identical
/// servers (half the cores each) and returns the pairing with the highest
/// total retention. Services must all support `platform`.
///
/// # Errors
///
/// Workload or engine errors.
pub fn best_pairing(
    services: [Microservice; 4],
    window_insns: u64,
    seed: u64,
) -> Result<Pairing, ClusterError> {
    let profiles: Vec<WorkloadProfile> = services
        .iter()
        .map(|s| s.profile(s.default_platform()))
        .collect::<Result<_, _>>()?;
    // All three distinct ways to split {0,1,2,3} into two pairs.
    let splits = [((0, 1), (2, 3)), ((0, 2), (1, 3)), ((0, 3), (1, 2))];
    let mut best: Option<Pairing> = None;
    for ((a1, a2), (b1, b2)) in splits {
        let score_pair = |x: usize, y: usize| -> Result<f64, ClusterError> {
            let plat = profiles[x].production_config.platform.clone();
            let half = plat.total_cores() / 2;
            let pair = ColocatedPair::new(
                profiles[x].clone(),
                profiles[y].clone(),
                half,
                half,
                window_insns,
                seed,
            )?;
            Ok(pair.evaluate()?.total_retention())
        };
        let total = score_pair(a1, a2)? + score_pair(b1, b2)?;
        let candidate = Pairing {
            server1: (services[a1], services[a2]),
            server2: (services[b1], services[b2]),
            total_retention: total,
        };
        if best.as_ref().is_none_or(|b| total > b.total_retention) {
            best = Some(candidate);
        }
    }
    // detlint::allow(panic_path): the loop above evaluates a fixed, non-empty
    // set of splits, so `best` is always populated.
    Ok(best.expect("three candidate splits evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_workloads::PlatformKind;

    const WINDOW: u64 = 80_000;

    fn profile(s: Microservice) -> WorkloadProfile {
        s.profile(s.default_platform()).unwrap()
    }

    #[test]
    fn colocation_costs_throughput() {
        let pair = ColocatedPair::new(
            profile(Microservice::Web),
            profile(Microservice::Feed1),
            9,
            9,
            WINDOW,
            3,
        )
        .unwrap();
        let out = pair.evaluate().unwrap();
        assert!(
            out.retention_a < 1.0,
            "Web must feel Feed1: {}",
            out.retention_a
        );
        assert!(
            out.retention_b < 1.0,
            "Feed1 must feel Web: {}",
            out.retention_b
        );
        assert!(out.retention_a > 0.4 && out.retention_b > 0.4, "{out:?}");
    }

    #[test]
    fn bandwidth_heavy_pairs_hurt_more_than_light_ones() {
        // Web + Feed1 are both bandwidth-hungry; Feed2 is light. Pairing Web
        // with Feed2 must retain more total throughput per service than
        // pairing Web with Feed1.
        let heavy = ColocatedPair::new(
            profile(Microservice::Web),
            profile(Microservice::Feed1),
            9,
            9,
            WINDOW,
            5,
        )
        .unwrap()
        .evaluate()
        .unwrap();
        let light = ColocatedPair::new(
            profile(Microservice::Web),
            profile(Microservice::Feed2),
            9,
            9,
            WINDOW,
            5,
        )
        .unwrap()
        .evaluate()
        .unwrap();
        assert!(
            light.retention_a > heavy.retention_a,
            "Web retains more next to Feed2 ({:.3}) than next to Feed1 ({:.3})",
            light.retention_a,
            heavy.retention_a
        );
    }

    #[test]
    fn mismatched_platforms_rejected() {
        let err = ColocatedPair::new(
            profile(Microservice::Web),
            profile(Microservice::Cache1), // Skylake20
            8,
            8,
            WINDOW,
            1,
        );
        assert!(err.is_err());

        let too_many = ColocatedPair::new(
            profile(Microservice::Web),
            profile(Microservice::Feed1),
            10,
            10,
            WINDOW,
            1,
        );
        assert!(too_many.is_err(), "18-core platform cannot host 20 cores");
    }

    #[test]
    fn scheduler_returns_the_optimal_split() {
        let services = [
            Microservice::Web,
            Microservice::Feed1,
            Microservice::Feed2,
            Microservice::Ads1,
        ];
        let pairing = best_pairing(services, WINDOW, 7).unwrap();
        assert!(pairing.total_retention > 2.0, "{pairing:?}");
        assert!(pairing.total_retention <= 4.0 + 1e-9);

        // Verify optimality against an explicitly enumerated alternative:
        // every pair the scheduler could have formed scores at most the
        // winner's per-server average.
        let score = |x: Microservice, y: Microservice| {
            let pa = profile(x);
            let pb = profile(y);
            let half = pa.production_config.platform.total_cores() / 2;
            ColocatedPair::new(pa, pb, half, half, WINDOW, 7)
                .unwrap()
                .evaluate()
                .unwrap()
                .total_retention()
        };
        let splits = [
            ((0usize, 1usize), (2usize, 3usize)),
            ((0, 2), (1, 3)),
            ((0, 3), (1, 2)),
        ];
        let best_total = splits
            .iter()
            .map(|&((a, b), (c, d))| {
                score(services[a], services[b]) + score(services[c], services[d])
            })
            .fold(f64::MIN, f64::max);
        assert!(
            (pairing.total_retention - best_total).abs() < 1e-6,
            "scheduler total {:.4} vs enumerated best {:.4}",
            pairing.total_retention,
            best_total
        );
        let _ = PlatformKind::Skylake18;
    }
}
