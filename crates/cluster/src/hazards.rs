//! Production-hazard injection for the A/B substrate.
//!
//! µSKU's statistics have to survive more than noise: real fleets lose
//! machines to crashes and reboots, telemetry pipelines drop or corrupt
//! samples, traffic spikes arrive on top of the diurnal curve, and knob
//! writes through fleet-management tooling fail transiently (paper Sec. 4
//! motivates the confidence machinery with exactly this kind of production
//! reality). [`HazardSchedule`] generates all of it, deterministically, from
//! an [`EnvConfig`](crate::env::EnvConfig) seed: the same `(config, seed)`
//! pair always yields the same hazard timeline, so experiments stay
//! reproducible and the self-healing consumer logic can be tested
//! byte-for-byte.
//!
//! Each hazard family draws from its own RNG stream, so enabling one family
//! never perturbs another's timeline — the same independence trick
//! [`CodeEvolution`](softsku_workloads::loadgen::CodeEvolution) uses for
//! code pushes.

use crate::env::Arm;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softsku_telemetry::streams::{StreamFamily, StreamRegistry};

/// Hazard-injection knobs, carried inside
/// [`EnvConfig`](crate::env::EnvConfig).
///
/// All rates/probabilities default to zero ([`HazardConfig::none`]), so the
/// hazard-free pipeline behaves exactly as before.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardConfig {
    /// Mean machine crashes per hour across the two arms.
    pub crash_rate_per_hour: f64,
    /// Seconds an arm stays down (and then re-warms) after a crash.
    pub crash_outage_s: f64,
    /// Probability a paired sample is lost to a telemetry dropout.
    pub dropout_prob: f64,
    /// Probability a paired sample has one arm's reading corrupted.
    pub outlier_prob: f64,
    /// Relative magnitude of a corrupted reading (0.5 → ±50 %).
    pub outlier_magnitude: f64,
    /// Mean transient load spikes per hour.
    pub spike_rate_per_hour: f64,
    /// Seconds each load spike lasts.
    pub spike_duration_s: f64,
    /// Relative load increase while a spike is active (0.3 → +30 %).
    pub spike_magnitude: f64,
    /// Probability a knob application through fleet tooling fails
    /// transiently (each retry draws afresh).
    pub knob_failure_prob: f64,
}

impl Default for HazardConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl HazardConfig {
    /// No hazards at all — the seed pipeline's behavior.
    pub fn none() -> Self {
        HazardConfig {
            crash_rate_per_hour: 0.0,
            crash_outage_s: 0.0,
            dropout_prob: 0.0,
            outlier_prob: 0.0,
            outlier_magnitude: 0.0,
            spike_rate_per_hour: 0.0,
            spike_duration_s: 0.0,
            spike_magnitude: 0.0,
            knob_failure_prob: 0.0,
        }
    }

    /// A production-plausible hazard mix: rare crashes, occasional dropped
    /// or corrupted samples, load spikes a few times a day, and flaky knob
    /// tooling.
    pub fn moderate() -> Self {
        HazardConfig {
            crash_rate_per_hour: 0.05,
            crash_outage_s: 600.0,
            dropout_prob: 0.01,
            outlier_prob: 0.02,
            outlier_magnitude: 0.5,
            spike_rate_per_hour: 0.2,
            spike_duration_s: 300.0,
            spike_magnitude: 0.25,
            knob_failure_prob: 0.1,
        }
    }

    /// Whether any hazard family is enabled.
    pub fn is_active(&self) -> bool {
        self.crash_rate_per_hour > 0.0
            || self.dropout_prob > 0.0
            || self.outlier_prob > 0.0
            || self.spike_rate_per_hour > 0.0
            || self.knob_failure_prob > 0.0
    }

    /// Clamps every field into its sane range. Probabilities are capped at
    /// 0.9 so bounded-retry consumers always have a path to success.
    fn validated(self) -> Self {
        HazardConfig {
            crash_rate_per_hour: self.crash_rate_per_hour.max(0.0),
            crash_outage_s: self.crash_outage_s.max(0.0),
            dropout_prob: self.dropout_prob.clamp(0.0, 0.9),
            outlier_prob: self.outlier_prob.clamp(0.0, 0.9),
            outlier_magnitude: self.outlier_magnitude.clamp(0.0, 10.0),
            spike_rate_per_hour: self.spike_rate_per_hour.max(0.0),
            spike_duration_s: self.spike_duration_s.max(0.0),
            spike_magnitude: self.spike_magnitude.clamp(0.0, 2.0),
            knob_failure_prob: self.knob_failure_prob.clamp(0.0, 0.9),
        }
    }
}

/// One injected hazard, as surfaced by [`HazardSchedule::preview`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HazardEvent {
    /// An arm crashed and is down until `until_s`.
    ArmCrash {
        /// The crashed arm.
        arm: Arm,
        /// When the crash landed.
        at_s: f64,
        /// When the arm comes back.
        until_s: f64,
    },
    /// A paired sample was lost in the telemetry pipeline.
    TelemetryDropout {
        /// When the sample was lost.
        at_s: f64,
    },
    /// One arm's reading was corrupted by `factor`.
    CorruptedSample {
        /// The affected arm.
        arm: Arm,
        /// When the corruption landed.
        at_s: f64,
        /// Multiplier applied to the true reading.
        factor: f64,
    },
    /// A transient load spike started.
    LoadSpike {
        /// When the spike started.
        at_s: f64,
        /// When it subsides.
        until_s: f64,
        /// Relative load increase while active.
        magnitude: f64,
    },
}

/// What the hazard schedule decided for one sampling tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tick {
    /// Outage end time per arm (`[A, B]`), when the arm is down at this tick.
    pub down_until: [Option<f64>; 2],
    /// Arms that crashed strictly within this tick (for event recording).
    pub crashes: [Option<f64>; 2],
    /// The paired sample is lost to a telemetry dropout.
    pub dropped: bool,
    /// Corruption of one arm's reading: `(arm, factor)`.
    pub corrupt: Option<(Arm, f64)>,
    /// Multiplier on the common load (1.0 when no spike is active).
    pub load_multiplier: f64,
    /// A spike started within this tick: `(until_s, magnitude)`.
    pub spike_started: Option<(f64, f64)>,
}

/// Deterministic hazard timeline for one environment.
///
/// # Example
///
/// ```
/// use softsku_cluster::hazards::{HazardConfig, HazardSchedule};
///
/// let cfg = HazardConfig { spike_rate_per_hour: 2.0, spike_duration_s: 60.0,
///                          spike_magnitude: 0.3, ..HazardConfig::none() };
/// let a = HazardSchedule::preview(cfg, 7, 36_000.0, 30.0);
/// let b = HazardSchedule::preview(cfg, 7, 36_000.0, 30.0);
/// assert_eq!(a, b); // same (config, seed) → same timeline
/// ```
#[derive(Debug, Clone)]
pub struct HazardSchedule {
    config: HazardConfig,
    crash_rng: SmallRng,
    sample_rng: SmallRng,
    spike_rng: SmallRng,
    knob_rng: SmallRng,
    next_crash_t: f64,
    /// End-of-outage time per arm (`[A, B]`); an arm is down while `t` is
    /// below its entry.
    down_until: [f64; 2],
    next_spike_t: f64,
    spike_until: f64,
}

fn arm_index(arm: Arm) -> usize {
    match arm {
        Arm::A => 0,
        Arm::B => 1,
    }
}

impl HazardSchedule {
    /// Builds the timeline for `(config, seed)`. The seed should be the
    /// environment seed; each hazard family derives an independent stream
    /// from it.
    pub fn new(config: HazardConfig, seed: u64) -> Self {
        let config = config.validated();
        let mut streams = StreamRegistry::new(seed);
        let mut crash_rng = SmallRng::seed_from_u64(streams.derive(StreamFamily::HazardCrash));
        let mut spike_rng = SmallRng::seed_from_u64(streams.derive(StreamFamily::HazardSpike));
        let next_crash_t = sample_gap(&mut crash_rng, config.crash_rate_per_hour);
        let next_spike_t = sample_gap(&mut spike_rng, config.spike_rate_per_hour);
        HazardSchedule {
            config,
            crash_rng,
            sample_rng: SmallRng::seed_from_u64(streams.derive(StreamFamily::HazardTelemetry)),
            spike_rng,
            knob_rng: SmallRng::seed_from_u64(streams.derive(StreamFamily::HazardKnob)),
            next_crash_t,
            down_until: [f64::NEG_INFINITY; 2],
            next_spike_t,
            spike_until: f64::NEG_INFINITY,
        }
    }

    /// The (validated) configuration driving this schedule.
    pub fn config(&self) -> &HazardConfig {
        &self.config
    }

    /// Advances the timeline to sampling tick `t` and reports every hazard
    /// decision for it. Must be called with nondecreasing `t`, once per
    /// sample — the environment clock drives it.
    pub fn tick(&mut self, t: f64) -> Tick {
        // Crash arrivals strictly up to t; each picks a victim arm.
        let mut crashes: [Option<f64>; 2] = [None, None];
        while self.next_crash_t <= t {
            let victim = if self.crash_rng.gen::<bool>() { 1 } else { 0 };
            let until = self.next_crash_t + self.config.crash_outage_s;
            if until > self.down_until[victim] {
                self.down_until[victim] = until;
                crashes[victim] = Some(until);
            }
            self.next_crash_t += sample_gap(&mut self.crash_rng, self.config.crash_rate_per_hour);
        }
        let down_until = [
            (t < self.down_until[0]).then_some(self.down_until[0]),
            (t < self.down_until[1]).then_some(self.down_until[1]),
        ];

        // Spike arrivals; overlapping spikes extend the active window.
        let mut spike_started = None;
        while self.next_spike_t <= t {
            let until = self.next_spike_t + self.config.spike_duration_s;
            if until > self.spike_until {
                self.spike_until = until;
                spike_started = Some((until, self.config.spike_magnitude));
            }
            self.next_spike_t += sample_gap(&mut self.spike_rng, self.config.spike_rate_per_hour);
        }
        let load_multiplier = if t < self.spike_until {
            1.0 + self.config.spike_magnitude
        } else {
            1.0
        };

        // Telemetry fates. A fixed number of draws per tick keeps the
        // stream stable regardless of which branches fire.
        let drop_u: f64 = self.sample_rng.gen();
        let corrupt_u: f64 = self.sample_rng.gen();
        let corrupt_arm = if self.sample_rng.gen::<bool>() {
            Arm::B
        } else {
            Arm::A
        };
        let corrupt_sign = if self.sample_rng.gen::<bool>() {
            1.0
        } else {
            -1.0
        };
        let dropped = drop_u < self.config.dropout_prob;
        let corrupt = (corrupt_u < self.config.outlier_prob).then(|| {
            (
                corrupt_arm,
                (1.0 + corrupt_sign * self.config.outlier_magnitude).max(0.05),
            )
        });

        Tick {
            down_until,
            crashes,
            dropped,
            corrupt,
            load_multiplier,
            spike_started,
        }
    }

    /// Whether an arm is down at time `t` (no stream advance).
    pub fn arm_down(&self, arm: Arm, t: f64) -> Option<f64> {
        let until = self.down_until[arm_index(arm)];
        (t < until).then_some(until)
    }

    /// Draws one knob-application attempt: `true` means the fleet tooling
    /// failed transiently and the caller should retry.
    pub fn knob_failure(&mut self) -> bool {
        if self.config.knob_failure_prob == 0.0 {
            return false;
        }
        self.knob_rng.gen::<f64>() < self.config.knob_failure_prob
    }

    /// Replays the time-driven hazards for `(config, seed)` over
    /// `horizon_s` at `spacing_s` sample spacing, without an environment.
    /// Pure function of its arguments — the determinism property tests
    /// compare these timelines byte-for-byte.
    pub fn preview(
        config: HazardConfig,
        seed: u64,
        horizon_s: f64,
        spacing_s: f64,
    ) -> Vec<HazardEvent> {
        let spacing = spacing_s.max(1e-3);
        let mut schedule = HazardSchedule::new(config, seed);
        let mut events = Vec::new();
        let mut t = spacing;
        while t <= horizon_s {
            let tick = schedule.tick(t);
            for (idx, crash) in tick.crashes.iter().enumerate() {
                if let Some(until_s) = crash {
                    let arm = if idx == 0 { Arm::A } else { Arm::B };
                    events.push(HazardEvent::ArmCrash {
                        arm,
                        at_s: t,
                        until_s: *until_s,
                    });
                }
            }
            if let Some((until_s, magnitude)) = tick.spike_started {
                events.push(HazardEvent::LoadSpike {
                    at_s: t,
                    until_s,
                    magnitude,
                });
            }
            if tick.dropped {
                events.push(HazardEvent::TelemetryDropout { at_s: t });
            }
            if let Some((arm, factor)) = tick.corrupt {
                events.push(HazardEvent::CorruptedSample {
                    arm,
                    at_s: t,
                    factor,
                });
            }
            t += spacing;
        }
        events
    }
}

/// Exponential inter-arrival gap for a Poisson process at `rate_per_hour`,
/// or infinity when the process is disabled.
fn sample_gap(rng: &mut SmallRng, rate_per_hour: f64) -> f64 {
    if rate_per_hour <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * 3600.0 / rate_per_hour
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy() -> HazardConfig {
        HazardConfig {
            crash_rate_per_hour: 2.0,
            crash_outage_s: 300.0,
            ..HazardConfig::none()
        }
    }

    #[test]
    fn none_is_inert() {
        let mut s = HazardSchedule::new(HazardConfig::none(), 1);
        for i in 1..=2_000 {
            let tick = s.tick(i as f64 * 30.0);
            assert_eq!(tick.down_until, [None, None]);
            assert!(!tick.dropped);
            assert_eq!(tick.corrupt, None);
            assert_eq!(tick.load_multiplier, 1.0);
        }
        assert!(!s.knob_failure());
        assert!(!HazardConfig::none().is_active());
        assert!(HazardConfig::moderate().is_active());
    }

    #[test]
    fn crashes_arrive_at_roughly_the_configured_rate() {
        let mut s = HazardSchedule::new(crashy(), 9);
        let mut crashes = 0;
        let hours = 200.0;
        let mut t = 0.0;
        while t < hours * 3600.0 {
            t += 30.0;
            let tick = s.tick(t);
            crashes += tick.crashes.iter().flatten().count();
        }
        let expect = 2.0 * hours;
        assert!(
            (crashes as f64) > 0.7 * expect && (crashes as f64) < 1.4 * expect,
            "crashes {crashes} vs expected ~{expect}"
        );
    }

    #[test]
    fn outages_block_the_victim_then_clear() {
        let mut s = HazardSchedule::new(crashy(), 3);
        let mut t = 0.0;
        loop {
            t += 30.0;
            let tick = s.tick(t);
            let victim = tick.crashes.iter().position(Option::is_some);
            if let Some(idx) = victim {
                let arm = if idx == 0 { Arm::A } else { Arm::B };
                let until = tick.crashes[idx].unwrap();
                assert!(s.arm_down(arm, t).is_some());
                assert!(s.arm_down(arm, until + 1.0).is_none());
                break;
            }
            assert!(t < 1e7, "a crash must arrive eventually");
        }
    }

    #[test]
    fn dropouts_and_outliers_hit_the_configured_fractions() {
        let cfg = HazardConfig {
            dropout_prob: 0.1,
            outlier_prob: 0.05,
            outlier_magnitude: 0.5,
            ..HazardConfig::none()
        };
        let mut s = HazardSchedule::new(cfg, 5);
        let n = 20_000;
        let mut drops = 0;
        let mut outliers = 0;
        for i in 1..=n {
            let tick = s.tick(i as f64 * 30.0);
            drops += tick.dropped as u32;
            if let Some((_, factor)) = tick.corrupt {
                outliers += 1;
                assert!((factor - 1.5).abs() < 1e-12 || (factor - 0.5).abs() < 1e-12);
            }
        }
        let drop_rate = f64::from(drops) / f64::from(n);
        let outlier_rate = f64::from(outliers) / f64::from(n);
        assert!((drop_rate - 0.1).abs() < 0.01, "drop rate {drop_rate}");
        assert!(
            (outlier_rate - 0.05).abs() < 0.01,
            "outlier rate {outlier_rate}"
        );
    }

    #[test]
    fn spikes_raise_load_while_active() {
        let cfg = HazardConfig {
            spike_rate_per_hour: 4.0,
            spike_duration_s: 240.0,
            spike_magnitude: 0.3,
            ..HazardConfig::none()
        };
        let mut s = HazardSchedule::new(cfg, 11);
        let mut spiked = 0;
        let mut calm = 0;
        for i in 1..=10_000 {
            let tick = s.tick(i as f64 * 30.0);
            if tick.load_multiplier > 1.0 {
                assert!((tick.load_multiplier - 1.3).abs() < 1e-12);
                spiked += 1;
            } else {
                calm += 1;
            }
        }
        // 4/hour × 240 s ≈ 27 % duty cycle.
        assert!(
            spiked > 1_000 && calm > 4_000,
            "spiked {spiked} calm {calm}"
        );
    }

    #[test]
    fn knob_failures_are_transient() {
        let cfg = HazardConfig {
            knob_failure_prob: 0.5,
            ..HazardConfig::none()
        };
        let mut s = HazardSchedule::new(cfg, 13);
        let fails = (0..1_000).filter(|_| s.knob_failure()).count();
        assert!((300..700).contains(&fails), "fails {fails}");
        // Validation caps the probability below 1, so retries can succeed.
        let all_in = HazardConfig {
            knob_failure_prob: 5.0,
            ..HazardConfig::none()
        };
        let mut s = HazardSchedule::new(all_in, 17);
        assert!((0..1_000).any(|_| !s.knob_failure()));
    }

    #[test]
    fn preview_is_deterministic_and_family_independent() {
        let cfg = HazardConfig::moderate();
        let a = HazardSchedule::preview(cfg, 21, 86_400.0, 30.0);
        let b = HazardSchedule::preview(cfg, 21, 86_400.0, 30.0);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a day of moderate hazards is not silent");

        // Disabling spikes must not move the crash timeline (stream
        // independence).
        let no_spikes = HazardConfig {
            spike_rate_per_hour: 0.0,
            ..cfg
        };
        let crashes = |events: &[HazardEvent]| {
            events
                .iter()
                .filter(|e| matches!(e, HazardEvent::ArmCrash { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        let c = HazardSchedule::preview(no_spikes, 21, 86_400.0, 30.0);
        assert_eq!(crashes(&a), crashes(&c));
    }
}
