//! Simulated production fleet for the SoftSKU reproduction.
//!
//! µSKU runs against live production servers; this crate is the stand-in:
//!
//! * [`server::SimServer`] — one server (workload × platform × knob config)
//!   exposing MIPS/QPS/latency/QoS with cached engine evaluations.
//! * [`env::AbEnvironment`] — the two-arm A/B substrate with common diurnal
//!   load, per-arm imbalance, EMON-grade measurement noise, reboot costs,
//!   and fleet-wide code pushes.
//! * [`fleet::ValidationFleet`] — the long-horizon ODS-backed QPS comparison
//!   the soft-SKU generator uses to confirm a deployed configuration's win.
//! * [`fleet::StagedFleet`] — one service's replica fleet partitioned into
//!   baseline and candidate groups for staged canary rollout, with a
//!   code-push drift-injection hook for the rollout crate's monitoring.
//! * [`hazards::HazardSchedule`] — seeded production-hazard injection (arm
//!   crashes, telemetry dropouts/outliers, load spikes, flaky knob tooling)
//!   that the self-healing A/B consumer must survive.
//! * [`domains`] — named failure domains (platform pools, racks) and the
//!   rollout-layer chaos campaign: pool-wide brownouts, correlated
//!   code-push waves, canary-replica crashes, and stalled stage
//!   transitions, all deterministic per `(topology, config, seed)`.
//! * [`colocation`] — the paper's Sec. 7 future-work extension: two services
//!   sharing a socket (coupled LLC + memory queue) and a µSKU-aware pairing
//!   scheduler.
//!
//! # Example
//!
//! ```no_run
//! use softsku_cluster::env::{AbEnvironment, Arm, EnvConfig};
//! use softsku_workloads::{Microservice, PlatformKind};
//!
//! # fn main() -> Result<(), softsku_cluster::ClusterError> {
//! let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
//! let mut env = AbEnvironment::new(profile, EnvConfig::default(), 42)?;
//! let sample = env.sample_pair()?;
//! assert!(sample.a_mips > 0.0 && sample.b_mips > 0.0);
//! # let _ = Arm::A;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colocation;
pub mod domains;
pub mod env;
pub mod error;
pub mod fleet;
pub mod hazards;
pub mod server;

pub use colocation::{best_pairing, ColocatedPair, ColocationOutcome, Pairing};
pub use domains::{ChaosConfig, ChaosEvent, ChaosSchedule, FailureDomain, FleetTopology};
pub use env::{AbEnvironment, Arm, EnvConfig, PairSample};
pub use error::ClusterError;
pub use fleet::{StagedFleet, StagedFleetConfig, StagedSample, ValidationFleet, ValidationOutcome};
pub use hazards::{HazardConfig, HazardEvent, HazardSchedule};
pub use server::SimServer;
