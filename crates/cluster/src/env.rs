//! The production A/B environment µSKU drives.
//!
//! The paper's A/B tester "conducts A/B tests by comparing the performance of
//! two identical servers (same hardware platform, same fleet, and facing the
//! same load) that differ only in their knob configuration" (Sec. 4).
//! [`AbEnvironment`] provides exactly that: two [`SimServer`] arms fed the
//! same diurnal load with small per-arm imbalance, an EMON-like noisy
//! measurement channel, and a Poisson code-push process that perturbs both
//! arms — the statistical reality µSKU's confidence machinery exists for.

use crate::error::ClusterError;
use crate::hazards::{HazardConfig, HazardSchedule};
use crate::server::SimServer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softsku_archsim::engine::ServerConfig;
use softsku_telemetry::emon::{EventSample, EventSet, MultiplexedSampler, SamplerConfig};
use softsku_telemetry::streams::{StreamFamily, StreamRegistry};
use softsku_telemetry::{Ods, SeriesKey};
use softsku_workloads::loadgen::{CodeEvolution, LoadGenerator};
use softsku_workloads::WorkloadProfile;

/// Which arm of the A/B pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arm {
    /// The baseline arm (production or previously-selected configuration).
    A,
    /// The candidate arm.
    B,
}

/// One noisy throughput measurement of both arms under common load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairSample {
    /// Measured MIPS of arm A.
    pub a_mips: f64,
    /// Measured MIPS of arm B.
    pub b_mips: f64,
    /// Load fraction both arms faced.
    pub load: f64,
    /// Simulated timestamp (seconds).
    pub time_s: f64,
}

/// Configuration for an [`AbEnvironment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvConfig {
    /// Spacing between successive samples, seconds (µSKU spaces samples "to
    /// ensure independence").
    pub sample_spacing_s: f64,
    /// Relative EMON measurement noise per sample.
    pub measurement_noise: f64,
    /// Per-arm load-imbalance noise (two machines never see identical load).
    pub arm_imbalance: f64,
    /// Diurnal amplitude of the common load.
    pub diurnal_amplitude: f64,
    /// AR(1) common-load noise.
    pub load_noise: f64,
    /// Mean code pushes per hour.
    pub pushes_per_hour: f64,
    /// Engine window per evaluation (smaller for tests).
    pub window_insns: u64,
    /// Seconds of downtime incurred by a reboot-requiring reconfiguration.
    pub reboot_cost_s: f64,
    /// Production-hazard injection knobs (all zero → hazard-free).
    pub hazards: HazardConfig,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            sample_spacing_s: 30.0,
            measurement_noise: 0.004,
            arm_imbalance: 0.010,
            diurnal_amplitude: 0.12,
            load_noise: 0.02,
            pushes_per_hour: 0.2,
            window_insns: SimServer::DEFAULT_WINDOW,
            reboot_cost_s: 300.0,
            hazards: HazardConfig::none(),
        }
    }
}

impl EnvConfig {
    /// A fast, low-noise configuration for unit tests.
    pub fn fast_test() -> Self {
        EnvConfig {
            sample_spacing_s: 30.0,
            measurement_noise: 0.002,
            arm_imbalance: 0.004,
            diurnal_amplitude: 0.05,
            load_noise: 0.01,
            pushes_per_hour: 0.0,
            window_insns: 60_000,
            reboot_cost_s: 60.0,
            hazards: HazardConfig::none(),
        }
    }
}

/// Two identical servers under common production traffic.
#[derive(Debug)]
pub struct AbEnvironment {
    arm_a: SimServer,
    arm_b: SimServer,
    load: LoadGenerator,
    evolution: CodeEvolution,
    config: EnvConfig,
    time_s: f64,
    rng: SmallRng,
    code_pushes_seen: u64,
    /// EMON-like samplers: the MIPS channel reads the always-on fixed
    /// counters; the architectural events are time-multiplexed.
    sampler_a: MultiplexedSampler,
    sampler_b: MultiplexedSampler,
    /// Injected-hazard timeline (inert when the config disables hazards).
    hazards: HazardSchedule,
    /// ODS series of injected hazards and consumer-reported recoveries.
    ods: Ods,
    /// Common load of the most recent sample, spikes included (for
    /// guardrail QoS checks between samples).
    last_load: f64,
}

/// The EMON event set µSKU programs: fixed counters for the throughput
/// metric, programmable (multiplexed) slots for the architectural events the
/// characterization reads.
fn emon_events() -> EventSet {
    EventSet::new()
        .fixed("instructions")
        .fixed("cycles")
        .programmable("l1i_miss")
        .programmable("l1d_miss")
        .programmable("l2_code_miss")
        .programmable("l2_data_miss")
        .programmable("llc_code_miss")
        .programmable("llc_data_miss")
        .programmable("itlb_miss")
        .programmable("dtlb_miss")
        .programmable("branch_mispredicts")
        .programmable("mem_lines")
}

impl AbEnvironment {
    /// Builds an environment for `profile`, both arms starting in the
    /// production configuration.
    ///
    /// # Errors
    ///
    /// Propagates server construction errors.
    pub fn new(
        profile: WorkloadProfile,
        config: EnvConfig,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        let prod = profile.production_config.clone();
        // Both arms share the engine seed: the paper's arms are "identical
        // servers", and a per-arm simulation-sampling bias would masquerade
        // as a knob effect. Arm differences come from the (seeded) load
        // imbalance and measurement noise only.
        let arm_a =
            SimServer::with_window(profile.clone(), prod.clone(), seed, config.window_insns)?;
        let arm_b = SimServer::with_window(profile, prod, seed, config.window_insns)?;
        Ok(Self::assemble(arm_a, arm_b, config, seed))
    }

    /// Builds an environment around already-constructed arms, seeding every
    /// noise/hazard stream from `seed` exactly as [`AbEnvironment::new`]
    /// does.
    ///
    /// Both construction paths ([`AbEnvironment::new`] and
    /// [`AbEnvironment::fork`]) funnel through this one derivation scope, so
    /// new and fork necessarily derive identical stream families — the
    /// parity the fork-replay determinism rests on. The [`StreamRegistry`]
    /// additionally panics (debug builds) if a family were ever derived
    /// twice or two families collided.
    fn assemble(arm_a: SimServer, arm_b: SimServer, config: EnvConfig, seed: u64) -> Self {
        let mut streams = StreamRegistry::new(seed);
        let sampler_cfg = SamplerConfig {
            programmable_slots: 4,
            base_noise_rel: config.measurement_noise,
            seed: streams.derive(StreamFamily::EnvSamplerA),
        };
        // detlint::allow(panic_path): the event set is a static literal; its
        // validity is covered by the emon unit tests.
        let sampler_a =
            MultiplexedSampler::new(emon_events(), sampler_cfg).expect("static event set is valid");
        let sampler_b = MultiplexedSampler::new(
            emon_events(),
            SamplerConfig {
                seed: streams.derive(StreamFamily::EnvSamplerB),
                ..sampler_cfg
            },
        )
        // detlint::allow(panic_path): same static event set as arm A.
        .expect("static event set is valid");
        AbEnvironment {
            arm_a,
            arm_b,
            load: LoadGenerator::new(
                0.85,
                config.diurnal_amplitude,
                86_400.0,
                config.load_noise,
                streams.derive(StreamFamily::EnvCommonLoad),
            ),
            evolution: CodeEvolution::new(
                config.pushes_per_hour,
                0.01,
                streams.derive(StreamFamily::EnvCodePush),
            ),
            config,
            time_s: 0.0,
            rng: SmallRng::seed_from_u64(streams.derive(StreamFamily::EnvArmNoise)),
            code_pushes_seen: 0,
            sampler_a,
            sampler_b,
            hazards: HazardSchedule::new(config.hazards, streams.derive(StreamFamily::EnvHazards)),
            ods: Ods::new(),
            last_load: 1.0,
        }
    }

    /// Forks an independent replica of this environment for one scheduled
    /// A/B test.
    ///
    /// The replica clones both arms — inheriting the proto-environment's
    /// engine seed ("identical hardware") and its warmed load-curve caches,
    /// which is what makes forking cheap — while every *noise* stream (load
    /// imbalance, diurnal AR(1) noise, EMON measurement noise, code pushes,
    /// hazards) is re-seeded from `seed`, and the clock, push counter, and
    /// hazard/recovery ledger restart from zero. The replica's behaviour is
    /// therefore a pure function of `(proto construction, seed)`: two forks
    /// with the same seed are bit-identical regardless of what other forks
    /// ran in between, which is the property the parallel tuning scheduler's
    /// determinism rests on.
    pub fn fork(&self, seed: u64) -> AbEnvironment {
        Self::assemble(self.arm_a.clone(), self.arm_b.clone(), self.config, seed)
    }

    /// The workload under test.
    pub fn profile(&self) -> &WorkloadProfile {
        self.arm_a.profile()
    }

    /// Current simulated time (seconds).
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Number of code pushes that have landed so far.
    pub fn code_pushes_seen(&self) -> u64 {
        self.code_pushes_seen
    }

    /// Reconfigures one arm; a reboot-requiring change costs simulated time
    /// and is rejected for reboot-intolerant services.
    ///
    /// # Errors
    ///
    /// [`ClusterError::KnobApplyFailed`] when the (injected) fleet tooling
    /// flakes — transient, retry after a backoff. Otherwise
    /// [`ClusterError::RebootNotTolerated`] or engine validation errors.
    pub fn reconfigure(
        &mut self,
        arm: Arm,
        config: ServerConfig,
        needs_reboot: bool,
    ) -> Result<(), ClusterError> {
        if self.hazards.knob_failure() {
            self.record_event("hazards", "injected.knob_failure");
            return Err(ClusterError::KnobApplyFailed {
                arm,
                time_s: self.time_s,
            });
        }
        let server = match arm {
            Arm::A => &mut self.arm_a,
            Arm::B => &mut self.arm_b,
        };
        server.reconfigure(config, needs_reboot)?;
        if needs_reboot {
            self.time_s += self.config.reboot_cost_s;
        }
        Ok(())
    }

    /// The configuration of an arm.
    pub fn arm_config(&self, arm: Arm) -> &ServerConfig {
        match arm {
            Arm::A => self.arm_a.config(),
            Arm::B => self.arm_b.config(),
        }
    }

    /// Direct (non-noisy) access to an arm, for validation measurements.
    pub fn arm_mut(&mut self, arm: Arm) -> &mut SimServer {
        match arm {
            Arm::A => &mut self.arm_a,
            Arm::B => &mut self.arm_b,
        }
    }

    /// Advances time and takes one noisy paired MIPS measurement.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::ArmDown`] when an injected crash has an arm out —
    ///   time still advances; wait out the outage (see [`Self::wait`]) and
    ///   re-warm.
    /// * [`ClusterError::TelemetryDropout`] when the pipeline lost this
    ///   sample — the next call is unaffected.
    /// * Engine errors on first evaluation of a new configuration.
    pub fn sample_pair(&mut self) -> Result<PairSample, ClusterError> {
        self.time_s += self.config.sample_spacing_s;
        // Code pushes land on both arms simultaneously (fleet-wide deploy).
        while let Some(push) = self.evolution.push_before(self.time_s) {
            self.arm_a.apply_code_push(push);
            self.arm_b.apply_code_push(push);
            self.code_pushes_seen += 1;
        }
        let tick = self.hazards.tick(self.time_s);
        for _ in tick.crashes.iter().flatten() {
            self.record_event("hazards", "injected.arm_down");
        }
        if tick.spike_started.is_some() {
            self.record_event("hazards", "injected.spike");
        }
        for (idx, down) in tick.down_until.iter().enumerate() {
            if let Some(until_s) = down {
                let arm = if idx == 0 { Arm::A } else { Arm::B };
                return Err(ClusterError::ArmDown {
                    arm,
                    until_s: *until_s,
                });
            }
        }
        if tick.dropped {
            self.record_event("hazards", "injected.dropout");
            return Err(ClusterError::TelemetryDropout {
                time_s: self.time_s,
            });
        }
        let load = (self.load.load_at(self.time_s) * tick.load_multiplier).clamp(0.05, 1.2);
        self.last_load = load;
        let la = (load * (1.0 + self.config.arm_imbalance * self.gaussian())).clamp(0.05, 1.2);
        let lb = (load * (1.0 + self.config.arm_imbalance * self.gaussian())).clamp(0.05, 1.2);
        // The MIPS channel reads the fixed "instructions" counter through
        // the EMON-like sampler (measurement noise lives there).
        let true_a = self.arm_a.mips(la)?;
        let true_b = self.arm_b.mips(lb)?;
        let mut ma = fixed_counter(&mut self.sampler_a, "instructions", true_a);
        let mut mb = fixed_counter(&mut self.sampler_b, "instructions", true_b);
        if let Some((arm, factor)) = tick.corrupt {
            self.record_event("hazards", "injected.outlier");
            match arm {
                Arm::A => ma *= factor,
                Arm::B => mb *= factor,
            }
        }
        Ok(PairSample {
            a_mips: ma,
            b_mips: mb,
            load,
            time_s: self.time_s,
        })
    }

    /// Advances the clock without sampling — how consumers wait out an
    /// injected outage or back off between retries.
    pub fn wait(&mut self, seconds: f64) {
        self.time_s += seconds.max(0.0);
    }

    /// One full EMON rotation over an arm's architectural counters at the
    /// current load: fixed counters exact-ish, programmable ones multiplexed
    /// and noisier (paper Sec. 2.2's measurement methodology).
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a new configuration.
    pub fn counter_rotation(&mut self, arm: Arm) -> Result<Vec<EventSample>, ClusterError> {
        let load = self.load.load_at(self.time_s);
        let report = {
            let server = self.arm_mut(arm);
            let _ = server.mips(load)?; // ensure the curve exists
            server.peak_report()?
        };
        let window_s = report.counters.cycles / (report.effective_core_freq_ghz * 1e9);
        let events = report.counters.event_map();
        let sampler = match arm {
            Arm::A => &mut self.sampler_a,
            Arm::B => &mut self.sampler_b,
        };
        Ok(sampler
            .sample_rotation(|name| events.get(name).copied().unwrap_or(0.0) / window_s.max(1e-12)))
    }

    /// QPS of an arm at the current mean load (the ODS-style fleet metric
    /// used for long-horizon validation).
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a new configuration.
    pub fn qps_now(&mut self, arm: Arm) -> Result<f64, ClusterError> {
        let load = self.load.load_at(self.time_s);
        self.arm_mut(arm).qps(load)
    }

    /// Whether an arm currently satisfies QoS at peak load.
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a new configuration.
    pub fn qos_ok(&mut self, arm: Arm) -> Result<bool, ClusterError> {
        self.arm_mut(arm).qos_ok(1.0)
    }

    /// Whether an arm satisfies QoS at the load of the most recent sample
    /// (spikes included) — the guardrail check self-healing consumers run
    /// while a test is in flight.
    ///
    /// # Errors
    ///
    /// Engine errors on first evaluation of a new configuration.
    pub fn qos_ok_now(&mut self, arm: Arm) -> Result<bool, ClusterError> {
        let load = self.last_load;
        self.arm_mut(arm).qos_ok(load)
    }

    /// The injected-hazard/recovery telemetry recorded so far.
    pub fn telemetry(&self) -> &Ods {
        &self.ods
    }

    /// Appends one counter event (value 1.0 at the current clock) to the
    /// environment's ODS. Consumers use it to record recoveries, e.g.
    /// `record_event("recovery", "arm_down")`.
    pub fn record_event(&mut self, entity: &str, metric: &str) {
        let key = SeriesKey::new(entity, metric);
        // detlint::allow(panic_path): the clock is monotone, so the ODS
        // append cannot be out of order.
        self.ods
            .append(&key, self.time_s, 1.0)
            .expect("environment clock is monotone");
    }

    /// Event counts per recorded series (`"hazards/injected.spike"` → n),
    /// sorted by series name.
    pub fn hazard_counts(&self) -> Vec<(String, u64)> {
        self.ods
            .keys()
            .map(|k| (k.to_string(), self.ods.len(k) as u64))
            .collect()
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Reads one fixed counter through the sampler.
fn fixed_counter(sampler: &mut MultiplexedSampler, name: &str, truth: f64) -> f64 {
    sampler
        .sample_rotation(|event| if event == name { truth } else { 0.0 })
        .into_iter()
        .find(|s| s.event == name)
        .map(|s| s.value)
        .unwrap_or(truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsku_archsim::platform::PlatformKind;
    use softsku_workloads::Microservice;

    fn env() -> AbEnvironment {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        AbEnvironment::new(profile, EnvConfig::fast_test(), 11).unwrap()
    }

    #[test]
    fn new_and_fork_derive_identical_stream_families() {
        // Both construction paths funnel through `assemble`, so a fresh
        // environment and a fork at the same seed must replay bit-identically
        // — the family-parity guarantee the streams registry encodes. A
        // family derived by one path but not the other would desynchronise
        // every stream after it.
        let mut fresh = env();
        let mut forked = env().fork(11);
        for _ in 0..50 {
            let a = fresh.sample_pair().unwrap();
            let b = forked.sample_pair().unwrap();
            assert_eq!(a.a_mips.to_bits(), b.a_mips.to_bits());
            assert_eq!(a.b_mips.to_bits(), b.b_mips.to_bits());
        }
    }

    #[test]
    fn identical_arms_have_small_mean_difference() {
        let mut e = env();
        let mut diff = 0.0;
        let mut mean = 0.0;
        let n = 300;
        for _ in 0..n {
            let s = e.sample_pair().unwrap();
            diff += s.a_mips - s.b_mips;
            mean += s.a_mips;
        }
        let rel = (diff / n as f64).abs() / (mean / n as f64);
        assert!(rel < 0.005, "identical arms must match closely: {rel}");
    }

    #[test]
    fn better_config_shows_up_in_samples() {
        let mut e = env();
        // Arm B gets a clearly slower configuration.
        let mut slow = e.arm_config(Arm::B).clone();
        slow.core_freq_ghz = 1.6;
        e.reconfigure(Arm::B, slow, false).unwrap();
        let mut a = 0.0;
        let mut b = 0.0;
        for _ in 0..200 {
            let s = e.sample_pair().unwrap();
            a += s.a_mips;
            b += s.b_mips;
        }
        assert!(a > b * 1.05, "a {a} vs b {b}");
    }

    #[test]
    fn samples_are_noisy() {
        let mut e = env();
        let xs: Vec<f64> = (0..100).map(|_| e.sample_pair().unwrap().a_mips).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(var.sqrt() / mean > 0.001, "noise must be present");
    }

    #[test]
    fn time_advances_and_reboot_costs_time() {
        let mut e = env();
        let t0 = e.time_s();
        e.sample_pair().unwrap();
        assert!(e.time_s() > t0);
        let cfg = e.arm_config(Arm::B).clone();
        let before = e.time_s();
        e.reconfigure(Arm::B, cfg, true).unwrap();
        assert!(e.time_s() >= before + 60.0);
    }

    #[test]
    fn code_pushes_land_when_enabled() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut cfg = EnvConfig::fast_test();
        cfg.pushes_per_hour = 30.0;
        cfg.sample_spacing_s = 120.0;
        let mut e = AbEnvironment::new(profile, cfg, 3).unwrap();
        for _ in 0..60 {
            e.sample_pair().unwrap();
        }
        assert!(e.code_pushes_seen() > 10);
    }

    #[test]
    fn counter_rotation_reports_multiplexed_events() {
        let mut e = env();
        let samples = e.counter_rotation(Arm::A).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.event == "instructions" && s.dwell_fraction == 1.0));
        let mux: Vec<_> = samples.iter().filter(|s| s.dwell_fraction < 1.0).collect();
        assert!(mux.len() >= 8, "architectural events are multiplexed");
        for s in &samples {
            assert!(s.value >= 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut e1 = AbEnvironment::new(profile.clone(), EnvConfig::fast_test(), 9).unwrap();
        let mut e2 = AbEnvironment::new(profile, EnvConfig::fast_test(), 9).unwrap();
        for _ in 0..20 {
            assert_eq!(e1.sample_pair().unwrap(), e2.sample_pair().unwrap());
        }
    }

    #[test]
    fn forks_are_deterministic_and_mutually_independent() {
        let mut proto = env();
        // Drive the proto a little; forks must not care about its state.
        for _ in 0..10 {
            proto.sample_pair().unwrap();
        }
        let mut f1 = proto.fork(123);
        let mut f2 = proto.fork(123);
        assert_eq!(f1.time_s(), 0.0, "fork clock restarts");
        for _ in 0..50 {
            assert_eq!(f1.sample_pair().unwrap(), f2.sample_pair().unwrap());
        }
        // Interleaving another fork must not perturb an equal-seed replay.
        let mut noisy = proto.fork(7);
        for _ in 0..20 {
            noisy.sample_pair().unwrap();
        }
        let mut f3 = proto.fork(123);
        let mut f4 = proto.fork(123);
        for _ in 0..50 {
            f3.sample_pair().unwrap();
        }
        for _ in 0..50 {
            f4.sample_pair().unwrap();
        }
        assert_eq!(f3.sample_pair().unwrap(), f4.sample_pair().unwrap());
        // Different seeds draw different noise.
        let s1 = proto.fork(1).sample_pair().unwrap();
        let s2 = proto.fork(2).sample_pair().unwrap();
        assert_ne!(s1, s2);
    }

    fn hazardous_env(hazards: HazardConfig, seed: u64) -> AbEnvironment {
        let profile = Microservice::Web.profile(PlatformKind::Skylake18).unwrap();
        let mut cfg = EnvConfig::fast_test();
        cfg.hazards = hazards;
        AbEnvironment::new(profile, cfg, seed).unwrap()
    }

    #[test]
    fn crashes_surface_as_arm_down_then_clear() {
        let mut e = hazardous_env(
            HazardConfig {
                crash_rate_per_hour: 6.0,
                crash_outage_s: 120.0,
                ..HazardConfig::none()
            },
            7,
        );
        let mut saw_outage = false;
        for _ in 0..2_000 {
            match e.sample_pair() {
                Ok(_) => {}
                Err(ClusterError::ArmDown { until_s, .. }) => {
                    saw_outage = true;
                    assert!(until_s > e.time_s());
                    // Waiting past the outage restores sampling.
                    let gap = until_s - e.time_s();
                    e.wait(gap);
                    e.sample_pair().expect("arm is back after the outage");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            if saw_outage {
                break;
            }
        }
        assert!(saw_outage, "crash rate 6/h must fire within 2000 samples");
        let counts = e.hazard_counts();
        assert!(counts
            .iter()
            .any(|(k, n)| k == "hazards/injected.arm_down" && *n > 0));
    }

    #[test]
    fn dropouts_lose_the_sample_but_not_the_run() {
        let mut e = hazardous_env(
            HazardConfig {
                dropout_prob: 0.2,
                ..HazardConfig::none()
            },
            9,
        );
        let mut ok = 0;
        let mut dropped = 0;
        for _ in 0..300 {
            match e.sample_pair() {
                Ok(_) => ok += 1,
                Err(ClusterError::TelemetryDropout { .. }) => dropped += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(ok > 150 && dropped > 20, "ok {ok} dropped {dropped}");
    }

    #[test]
    fn outliers_corrupt_one_arm_visibly() {
        let mut e = hazardous_env(
            HazardConfig {
                outlier_prob: 0.1,
                outlier_magnitude: 2.0,
                ..HazardConfig::none()
            },
            11,
        );
        let samples: Vec<PairSample> = (0..300).filter_map(|_| e.sample_pair().ok()).collect();
        let ratio_spread = |f: fn(&PairSample) -> f64| {
            let xs: Vec<f64> = samples.iter().map(f).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter()
                .map(|x| (x / mean - 1.0).abs())
                .fold(0.0, f64::max)
        };
        // A 3×/0.05× corruption dwarfs the percent-level noise.
        let max_dev = ratio_spread(|s| s.a_mips).max(ratio_spread(|s| s.b_mips));
        assert!(max_dev > 0.5, "corruption must be visible: {max_dev}");
        assert!(e
            .hazard_counts()
            .iter()
            .any(|(k, n)| k == "hazards/injected.outlier" && *n > 10));
    }

    #[test]
    fn spikes_raise_the_common_load() {
        let mut e = hazardous_env(
            HazardConfig {
                spike_rate_per_hour: 20.0,
                spike_duration_s: 600.0,
                spike_magnitude: 0.4,
                ..HazardConfig::none()
            },
            13,
        );
        let loads: Vec<f64> = (0..400)
            .filter_map(|_| e.sample_pair().ok().map(|s| s.load))
            .collect();
        let max = loads.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = loads.iter().fold(2.0f64, |a, &b| a.min(b));
        assert!(max / min > 1.2, "spikes must move load: {min}..{max}");
    }

    #[test]
    fn knob_failures_are_transient_and_recorded() {
        let mut e = hazardous_env(
            HazardConfig {
                knob_failure_prob: 0.5,
                ..HazardConfig::none()
            },
            17,
        );
        let cfg = e.arm_config(Arm::B).clone();
        let mut failures = 0;
        let mut succeeded = false;
        for _ in 0..50 {
            match e.reconfigure(Arm::B, cfg.clone(), false) {
                Ok(()) => {
                    succeeded = true;
                    break;
                }
                Err(ClusterError::KnobApplyFailed { arm, .. }) => {
                    assert_eq!(arm, Arm::B);
                    failures += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(succeeded, "knob failures must be transient");
        if failures > 0 {
            assert!(e
                .hazard_counts()
                .iter()
                .any(|(k, _)| k == "hazards/injected.knob_failure"));
        }
    }

    #[test]
    fn hazardous_runs_are_deterministic_given_seed() {
        let hz = HazardConfig::moderate();
        let mut e1 = hazardous_env(hz, 19);
        let mut e2 = hazardous_env(hz, 19);
        for _ in 0..200 {
            assert_eq!(e1.sample_pair(), e2.sample_pair());
        }
        assert_eq!(e1.hazard_counts(), e2.hazard_counts());
    }

    #[test]
    fn recovery_events_are_recorded() {
        let mut e = env();
        e.sample_pair().unwrap();
        e.record_event("recovery", "arm_down");
        e.record_event("recovery", "arm_down");
        let counts = e.hazard_counts();
        assert!(counts
            .iter()
            .any(|(k, n)| k == "recovery/arm_down" && *n == 2));
        assert_eq!(e.telemetry().series_count(), 1);
    }
}
