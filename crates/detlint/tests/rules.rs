//! Fixture-driven self-tests: every rule must fire at exactly the expected
//! (rule, line) pairs, escapes must suppress and audit, and the real
//! workspace must lint clean (the same invariant CI's `lint-determinism`
//! job enforces).

use std::path::PathBuf;
use std::process::Command;

use detlint::{lint_paths, lint_source, Finding};

const R1: &str = include_str!("../fixtures/r1_wall_clock.rs");
const R2: &str = include_str!("../fixtures/r2_stream_const.rs");
const R3: &str = include_str!("../fixtures/r3_map_iter.rs");
const R4: &str = include_str!("../fixtures/r4_panic_path.rs");
const R5: &str = include_str!("../fixtures/r5_seed_trunc.rs");
const ALLOWS: &str = include_str!("../fixtures/allows.rs");

/// (rule, line) pairs of a finding list, in reported order.
fn shape(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn r1_wall_clock_fires_per_construct_and_respects_tests() {
    let findings = lint_source("crates/x/src/lib.rs", R1);
    assert_eq!(
        shape(&findings),
        vec![("wall_clock", 4), ("wall_clock", 9), ("wall_clock", 13)],
        "{findings:#?}"
    );
}

#[test]
fn r2_stream_const_flags_raw_xor_and_literal_reseed() {
    let findings = lint_source("crates/x/src/lib.rs", R2);
    assert_eq!(
        shape(&findings),
        vec![
            ("stream_const", 4),
            ("stream_const", 8),
            ("stream_const", 12)
        ],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("0xBEEF"));
}

#[test]
fn r2_duplicate_constants_are_called_out_across_sites() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("r2_stream_const.rs");
    let findings = lint_paths(&[fixture]).expect("fixture readable");
    let dup = findings
        .iter()
        .find(|f| f.line == 8)
        .expect("second 0xBEEF site reported");
    assert!(
        dup.message.contains("duplicates") && dup.message.contains(":4"),
        "duplicate site must reference the first: {dup}"
    );
}

#[test]
fn r3_map_iter_flags_iteration_not_lookup() {
    let findings = lint_source("crates/x/src/lib.rs", R3);
    assert_eq!(
        shape(&findings),
        vec![("map_iter", 11), ("map_iter", 25)],
        "{findings:#?}"
    );
}

#[test]
fn r4_panic_path_is_scoped_to_pipeline_library_code() {
    let in_scope = lint_source("crates/core/src/fixture.rs", R4);
    assert_eq!(
        shape(&in_scope),
        vec![("panic_path", 4), ("panic_path", 8), ("panic_path", 12)],
        "{in_scope:#?}"
    );
    // Out-of-scope crate: same source, no findings.
    assert!(lint_source("crates/archsim/src/fixture.rs", R4).is_empty());
    // Binaries may unwrap.
    assert!(lint_source("crates/core/src/bin/tool.rs", R4).is_empty());
}

#[test]
fn r5_seed_trunc_fires_only_inside_derivation_fns() {
    let findings = lint_source("crates/x/src/lib.rs", R5);
    assert_eq!(shape(&findings), vec![("seed_trunc", 4)], "{findings:#?}");
}

#[test]
fn allow_escapes_suppress_audit_and_reject_malformed() {
    let findings = lint_source("crates/x/src/lib.rs", ALLOWS);
    assert_eq!(
        shape(&findings),
        vec![
            ("unused_allow", 14),
            ("bad_allow", 19),
            ("bad_allow", 24),
            ("wall_clock", 25)
        ],
        "{findings:#?}"
    );
}

#[test]
fn test_files_are_exempt_by_path() {
    // The same wall-clock fixture under a tests/ path reports nothing.
    assert!(lint_source("crates/x/tests/integration.rs", R1).is_empty());
}

/// The invariant CI enforces: the workspace's own sources lint clean,
/// including zero unused allow escapes.
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let roots: Vec<PathBuf> = ["crates", "src", "examples", "tests"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    let findings = lint_paths(&roots).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "workspace must satisfy the determinism contract:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// `--deny` must exit nonzero on every fixture (each contains at least one
/// violation or audit finding) and zero on the clean workspace.
#[test]
fn deny_exit_codes() {
    let fixtures = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    for fixture in [
        "r1_wall_clock.rs",
        "r2_stream_const.rs",
        "r3_map_iter.rs",
        "r5_seed_trunc.rs",
        "allows.rs",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_detlint"))
            .arg("--deny")
            .arg(fixtures.join(fixture))
            .status()
            .expect("detlint binary runs");
        assert_eq!(status.code(), Some(1), "{fixture} must fail --deny");
    }
    // r4 needs its pipeline-crate path, which the real file system can't
    // fake here; its scope is covered by the lint_source test above.

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let status = Command::new(env!("CARGO_BIN_EXE_detlint"))
        .arg("--deny")
        .arg(root.join("crates"))
        .arg(root.join("src"))
        .arg(root.join("examples"))
        .arg(root.join("tests"))
        .status()
        .expect("detlint binary runs");
    assert_eq!(status.code(), Some(0), "workspace must pass --deny");
}
