//! A minimal hand-rolled Rust lexer: splits a source file into per-line
//! *code* and *comment* channels.
//!
//! The rule engine works line-by-line on the code channel, where comment
//! text and string/char-literal *contents* have been blanked out (replaced
//! by spaces, preserving byte columns), so `"Instant::now"` inside an error
//! message or a doc comment can never trigger a rule. The comment channel
//! carries the raw comment text of each line, which is where
//! `detlint::allow(...)` escapes live.
//!
//! Handled syntax: `//` line comments (incl. doc comments), nested `/* */`
//! block comments, `"…"` strings with escapes, raw strings `r"…"` /
//! `r#"…"#` (any number of hashes, plus `b`-prefixed forms), char literals
//! (escape-aware), and the char-literal vs. lifetime ambiguity (`'a'` vs
//! `&'a str`).

/// One source line, split into channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Raw comment text appearing on this line (line + block comments).
    pub comment: String,
}

enum Mode {
    Code,
    LineComment,
    /// Nested block comment; payload is the nesting depth.
    BlockComment(u32),
    /// Regular string literal.
    Str,
    /// Raw string literal; payload is the number of `#`s in the delimiter.
    RawStr(u32),
}

/// Splits `src` into lines with code and comment channels.
pub fn split_channels(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = vec![Line::default()];
    let mut mode = Mode::Code;
    let mut i = 0;

    // Pushes a char to the right channel of the current line.
    macro_rules! emit {
        (code $c:expr) => {
            lines.last_mut().unwrap().code.push($c)
        };
        (comment $c:expr) => {
            lines.last_mut().unwrap().comment.push($c)
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if let Mode::LineComment = mode {
                mode = Mode::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    emit!(comment '/');
                    emit!(comment '/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                } else if c == '"' {
                    emit!(code '"');
                    mode = Mode::Str;
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    // `r`/`br` + hashes + quote; blank nothing yet — the
                    // prefix itself is code.
                    let mut j = i;
                    while chars[j] != '"' {
                        emit!(code chars[j]);
                        j += 1;
                    }
                    emit!(code '"');
                    let hashes = chars[i..j].iter().filter(|&&h| h == '#').count() as u32;
                    mode = Mode::RawStr(hashes);
                    i = j + 1;
                } else if c == '\'' {
                    match char_literal_end(&chars, i) {
                        Some(end) => {
                            // Blank the contents, keep the quotes.
                            emit!(code '\'');
                            for _ in i + 1..end {
                                emit!(code ' ');
                            }
                            emit!(code '\'');
                            i = end + 1;
                        }
                        None => {
                            // A lifetime (or stray quote): keep as code.
                            emit!(code '\'');
                            i += 1;
                        }
                    }
                } else {
                    emit!(code c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                emit!(comment c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    emit!(comment '*');
                    emit!(comment '/');
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    emit!(comment '/');
                    emit!(comment '*');
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    emit!(comment c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Skip the escaped char (may be the closing quote).
                    emit!(code ' ');
                    if chars.get(i + 1).is_some() {
                        emit!(code ' ');
                    }
                    i += 2;
                } else if c == '"' {
                    emit!(code '"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    emit!(code ' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    emit!(code '"');
                    for _ in 0..hashes {
                        emit!(code '#');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    emit!(code ' ');
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Whether position `i` starts a raw-string prefix: `r` or `br`, then zero
/// or more `#`, then `"` — and the `r` is not the tail of an identifier.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the `"` at `i` is followed by `hashes` `#` characters.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If the `'` at position `i` opens a char literal, returns the index of
/// its closing quote; returns `None` for lifetimes.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let next = chars.get(i + 1)?;
    if *next == '\\' {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        return (chars.get(j) == Some(&'\'')).then_some(j);
    }
    // `'x'` is a char literal; `'a` followed by anything else (ident char,
    // `>`, `,`, …) is a lifetime.
    if chars.get(i + 2) == Some(&'\'') && *next != '\'' {
        return Some(i + 2);
    }
    None
}

/// Iterator-style tokens over a blanked code line: identifiers, integer
/// literals, and single punctuation characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    /// Identifier or keyword.
    Ident(&'a str),
    /// Integer (or float) literal text.
    Num(&'a str),
    /// One punctuation char.
    Punct(char),
}

/// Tokenizes one blanked code line.
pub fn tokenize(code: &str) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && {
                let d = bytes[i] as char;
                d.is_ascii_alphanumeric() || d == '_'
            } {
                i += 1;
            }
            toks.push(Tok::Ident(&code[start..i]));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && {
                let d = bytes[i] as char;
                d.is_ascii_alphanumeric() || d == '_' || d == '.'
            } {
                i += 1;
            }
            toks.push(Tok::Num(&code[start..i]));
        } else {
            toks.push(Tok::Punct(c));
            i += 1;
        }
    }
    toks
}

/// Parses an integer literal (decimal, `0x`, `0o`, `0b`, `_` separators,
/// optional type suffix) to its value.
pub fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let (radix, digits) = if let Some(rest) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))
    {
        (16, rest)
    } else if let Some(rest) = t.strip_prefix("0o") {
        (8, rest)
    } else if let Some(rest) = t.strip_prefix("0b") {
        (2, rest)
    } else {
        (10, t.as_str())
    };
    // Strip an integer type suffix if present (u8…u64, usize, i…).
    let digits = digits
        .find(|c: char| !c.is_digit(radix))
        .map_or(digits, |pos| &digits[..pos]);
    if digits.is_empty() {
        return None;
    }
    u64::from_str_radix(digits, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        split_channels(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_stripped() {
        let c = codes("let x = 1; // Instant::now()\nlet y = 2;");
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("let x = 1;"));
        assert_eq!(c[1], "let y = 2;");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let c = codes("a /* x /* y */ z */ b\n/* open\nstill */ tail");
        assert_eq!(c[0].split_whitespace().collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(c[1].trim(), "");
        assert_eq!(c[2].trim(), "tail");
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = codes(r#"let s = "Instant::now // not a comment"; next"#);
        assert!(!c[0].contains("Instant"));
        assert!(!c[0].contains("//"));
        assert!(c[0].contains("next"));
        assert!(c[0].contains('"'));
    }

    #[test]
    fn escaped_quotes_do_not_close_strings() {
        let c = codes(r#"let s = "a\"b"; let t = 1;"#);
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = codes(r##"let s = r#"thread_rng " inner"#; after"##);
        assert!(!c[0].contains("thread_rng"));
        assert!(c[0].contains("after"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = codes("let c = 'x'; fn f<'a>(s: &'a str) {}");
        assert!(!c[0].contains('x'));
        assert!(c[0].contains("'a"), "lifetime must remain: {}", c[0]);
        let c = codes(r"let nl = '\n'; let q = '\''; done");
        assert!(c[0].contains("done"));
    }

    #[test]
    fn comments_channel_captures_allow_text() {
        let lines = split_channels("x(); // detlint::allow(wall_clock): bench\n");
        assert!(lines[0].comment.contains("detlint::allow(wall_clock)"));
    }

    #[test]
    fn parse_int_handles_radices_and_suffixes() {
        assert_eq!(parse_int("0xBEEF"), Some(0xBEEF));
        assert_eq!(parse_int("0xC8A5_0001"), Some(0xC8A5_0001));
        assert_eq!(parse_int("42u64"), Some(42));
        assert_eq!(parse_int("0b101"), Some(5));
        assert_eq!(parse_int("10"), Some(10));
    }

    #[test]
    fn tokenizer_splits_idents_nums_punct() {
        let toks = tokenize("seed ^ 0xBEEF;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("seed"),
                Tok::Punct('^'),
                Tok::Num("0xBEEF"),
                Tok::Punct(';'),
            ]
        );
    }
}
