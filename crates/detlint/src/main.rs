//! detlint CLI.
//!
//! ```text
//! cargo run -p detlint --release -- [--deny] [PATH...]
//! ```
//!
//! Lints every `.rs` file under the given paths (default: `crates src
//! examples tests`; missing paths are skipped). Findings are printed as
//! `file:line: [rule] message`, sorted, deterministically.
//!
//! Exit status: 0 when clean (or findings exist but `--deny` was not
//! passed), 1 when `--deny` is set and findings exist, 2 on usage or IO
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut roots: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--help" | "-h" => {
                println!("usage: detlint [--deny] [PATH...]");
                println!("  --deny   exit nonzero if any finding is reported");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("detlint: unknown flag '{other}' (see --help)");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots = ["crates", "src", "examples", "tests"]
            .iter()
            .map(PathBuf::from)
            .collect();
    }

    let findings = match detlint::lint_paths(&roots) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("detlint: io error: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("detlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "detlint: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        if deny {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    }
}
