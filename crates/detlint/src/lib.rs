//! detlint: the workspace determinism linter.
//!
//! The whole repository's claim to reproducibility rests on one contract
//! (DESIGN.md §3): every simulated result is a pure function of
//! `(config, seed)`. The compiler cannot check that contract — nothing in
//! the type system stops a stray `Instant::now()` or an ad-hoc
//! `seed ^ 0xBEEF` from leaking ambient state into a pinned result. detlint
//! closes that gap with a source-level pass over the workspace's own code:
//! a hand-rolled lexer (no external deps, per the vendored/offline policy)
//! feeding a line-level rule engine.
//!
//! # Rules
//!
//! | id | what it forbids |
//! |----|-----------------|
//! | `wall_clock`   | ambient nondeterminism: `Instant::now`, `SystemTime`, `thread_rng`, `rand::random`, `RandomState`, `from_entropy` |
//! | `stream_const` | raw seed-stream derivation (`seed ^ 0x…`, literal `seed_from_u64`) outside `softsku_telemetry::streams` |
//! | `map_iter`     | iteration over `HashMap`/`HashSet` (unordered) in non-test code |
//! | `panic_path`   | `unwrap`/`expect`/`panic!`-family in library code of the pipeline crates (core, cluster, knobs) |
//! | `seed_trunc`   | truncating `as` casts inside seed/hash-derivation functions |
//!
//! # Escapes
//!
//! A finding is suppressed by a comment of the form
//!
//! ```text
//! // detlint::allow(<rule>): <reason>
//! ```
//!
//! The reason is mandatory. A trailing allow (code and comment on the same
//! line) covers only its own line; a standalone allow covers the following
//! statement — every line up to and including the first whose code ends
//! with `;`, `{` or `}`. An allow that suppresses nothing is itself a
//! finding (`unused_allow`), so escapes cannot rot: the clean-audit gate in
//! CI fails when a rule violation is fixed but its escape is left behind.
//!
//! Test code (files under a `tests`/`benches` path component, `#[test]`
//! functions, `#[cfg(test)]` items) is exempt from the rules: tests may
//! measure wall time or hash-order-iterate freely, because their outputs
//! are assertions, not simulated results.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;

use lexer::{parse_int, split_channels, tokenize, Tok};

/// Rule: ambient nondeterminism (wall clock, entropy).
pub const RULE_WALL_CLOCK: &str = "wall_clock";
/// Rule: raw seed-stream constant outside the telemetry registry.
pub const RULE_STREAM_CONST: &str = "stream_const";
/// Rule: iteration over an unordered map/set.
pub const RULE_MAP_ITER: &str = "map_iter";
/// Rule: panic-capable call in pipeline library code.
pub const RULE_PANIC_PATH: &str = "panic_path";
/// Rule: truncating cast inside a seed/hash derivation.
pub const RULE_SEED_TRUNC: &str = "seed_trunc";
/// Audit rule: an allow escape that suppressed nothing.
pub const RULE_UNUSED_ALLOW: &str = "unused_allow";
/// Audit rule: a syntactically invalid allow escape.
pub const RULE_BAD_ALLOW: &str = "bad_allow";

/// The rules a `detlint::allow(...)` escape may name.
pub const SUPPRESSIBLE_RULES: [&str; 5] = [
    RULE_WALL_CLOCK,
    RULE_STREAM_CONST,
    RULE_MAP_ITER,
    RULE_PANIC_PATH,
    RULE_SEED_TRUNC,
];

/// Crates whose library code must be panic-free (`panic_path` scope):
/// anything that runs inside the simulation pipeline, where a panic in one
/// deterministic replica would desynchronise an A/B comparison.
const PANIC_FREE_PREFIXES: [&str; 3] =
    ["crates/core/src", "crates/cluster/src", "crates/knobs/src"];

/// Directory names the walker never descends into.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Display path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A raw seed-stream derivation site (used for duplicate detection across
/// files in [`lint_paths`]).
#[derive(Debug, Clone)]
struct StreamSite {
    file: String,
    line: usize,
    value: u64,
}

#[derive(Debug)]
struct Allow {
    /// 0-based line of the escape comment.
    line: usize,
    rule: String,
    /// Inclusive 0-based range of lines this escape covers.
    start: usize,
    end: usize,
    used: bool,
}

/// Lints one file's source text. `display_path` determines path-scoped
/// behaviour (`panic_path` crate scope, whole-file test exemption) and is
/// echoed into findings verbatim.
pub fn lint_source(display_path: &str, src: &str) -> Vec<Finding> {
    lint_source_inner(display_path, src).0
}

fn lint_source_inner(display_path: &str, src: &str) -> (Vec<Finding>, Vec<StreamSite>) {
    let lines = split_channels(src);
    let toks: Vec<Vec<Tok<'_>>> = lines.iter().map(|l| tokenize(&l.code)).collect();

    let file_is_test = path_is_test(display_path);
    let mut is_test = test_region_mask(&lines, &toks);
    if file_is_test {
        is_test.iter_mut().for_each(|t| *t = true);
    }
    let in_seed_fn = seed_fn_mask(&lines, &toks);
    let map_names = collect_map_names(&toks);

    let (mut allows, mut findings) = parse_allows(display_path, &lines);
    let mut streams = Vec::new();
    let mut raw: Vec<Finding> = Vec::new();

    for (i, tok_line) in toks.iter().enumerate() {
        if is_test[i] || tok_line.is_empty() {
            continue;
        }
        check_wall_clock(display_path, i, tok_line, &mut raw);
        check_stream_const(display_path, i, tok_line, &mut raw, &mut streams);
        check_map_iter(display_path, i, tok_line, &map_names, &mut raw);
        check_panic_path(display_path, i, tok_line, &mut raw);
        if in_seed_fn[i] {
            check_seed_trunc(display_path, i, tok_line, &mut raw);
        }
    }

    // Suppression pass: a finding covered by a matching allow is dropped
    // and marks the allow as used.
    for f in raw {
        let line0 = f.line - 1;
        let covered = allows
            .iter_mut()
            .find(|a| a.rule == f.rule && a.start <= line0 && line0 <= a.end);
        match covered {
            Some(a) => a.used = true,
            None => findings.push(f),
        }
    }
    // Suppressed sites' stream constants are sanctioned; drop them from
    // the cross-file duplicate audit too.
    streams.retain(|s| {
        !allows.iter().any(|a| {
            a.used && a.rule == RULE_STREAM_CONST && a.start < s.line && s.line - 1 <= a.end
        })
    });

    for a in &allows {
        // An escape whose whole scope is test code is inert (the rules
        // don't run there), so the staleness audit doesn't apply either.
        let scope_is_test = (a.start..=a.end.min(is_test.len().saturating_sub(1)))
            .all(|l| is_test.get(l).copied().unwrap_or(false));
        if !a.used && !scope_is_test {
            findings.push(Finding {
                file: display_path.to_string(),
                line: a.line + 1,
                rule: RULE_UNUSED_ALLOW,
                message: format!(
                    "detlint::allow({}) suppressed nothing; remove the stale escape",
                    a.rule
                ),
            });
        }
    }

    findings.sort();
    (findings, streams)
}

/// Lints every `.rs` file under `roots` (files are accepted directly;
/// directories are walked recursively, skipping `target`, `vendor`,
/// `.git`, `fixtures` and `node_modules`). Roots that do not exist are
/// ignored so one invocation can cover optional layout directories.
/// File order — and therefore finding order — is sorted and deterministic.
pub fn lint_paths(roots: &[PathBuf]) -> io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for root in roots {
        if root.exists() {
            collect_rs_files(root, &mut files)?;
        }
    }
    files.sort();
    files.dedup();

    let mut findings = Vec::new();
    let mut streams: Vec<StreamSite> = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let display = file.to_string_lossy().replace('\\', "/");
        let (f, s) = lint_source_inner(&display, &src);
        findings.extend(f);
        streams.extend(s);
    }

    // Cross-file duplicate audit: two raw derivation sites sharing a
    // constant silently couple their streams (the exact bug class the
    // registry exists to prevent), so call the aliasing out explicitly.
    let mut first_site: BTreeMap<u64, &StreamSite> = BTreeMap::new();
    for site in &streams {
        if let Some(first) = first_site.get(&site.value) {
            for f in findings.iter_mut() {
                if f.file == site.file && f.line == site.line && f.rule == RULE_STREAM_CONST {
                    f.message.push_str(&format!(
                        "; constant 0x{:X} duplicates {}:{} (streams would be coupled)",
                        site.value, first.file, first.line
                    ));
                }
            }
        } else {
            first_site.insert(site.value, site);
        }
    }

    findings.sort();
    Ok(findings)
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Whether a path is test-only by location: any `tests` or `benches`
/// component exempts the whole file.
fn path_is_test(display_path: &str) -> bool {
    display_path
        .split('/')
        .any(|c| c == "tests" || c == "benches")
}

// ---------------------------------------------------------------------------
// Region analysis
// ---------------------------------------------------------------------------

/// Marks lines inside `#[test]` / `#[cfg(test)]` items (attribute through
/// the item's closing brace). `#[cfg(not(test))]` does not count, and an
/// attribute whose item ends in `;` before any `{` (e.g. a gated `use`)
/// opens no region.
fn test_region_mask(lines: &[lexer::Line], toks: &[Vec<Tok<'_>>]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for i in 0..lines.len() {
        if !is_test_attr(&lines[i].code, &toks[i]) {
            continue;
        }
        if let Some(end) = brace_region(lines, i, 0) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
        }
    }
    mask
}

fn is_test_attr(code: &str, toks: &[Tok<'_>]) -> bool {
    if !code.trim_start().starts_with("#[") {
        return false;
    }
    let has_test = toks.contains(&Tok::Ident("test"));
    if !has_test {
        return false;
    }
    // `#[cfg(not(test))]` is production code.
    !toks
        .windows(3)
        .any(|w| w[0] == Tok::Ident("not") && w[1] == Tok::Punct('(') && w[2] == Tok::Ident("test"))
}

/// Marks lines inside functions whose name suggests seed/hash derivation —
/// the `seed_trunc` scope, where a truncating cast quietly throws away
/// entropy and collapses distinct streams.
fn seed_fn_mask(lines: &[lexer::Line], toks: &[Vec<Tok<'_>>]) -> Vec<bool> {
    const NAME_HINTS: [&str; 4] = ["seed", "hash", "derive", "stream"];
    let mut mask = vec![false; lines.len()];
    for i in 0..lines.len() {
        let Some(name) = fn_name(&toks[i]) else {
            continue;
        };
        let lower = name.to_lowercase();
        if !NAME_HINTS.iter().any(|h| lower.contains(h)) {
            continue;
        }
        let col = lines[i].code.find(name).unwrap_or(0);
        if let Some(end) = brace_region(lines, i, col) {
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
        }
    }
    mask
}

fn fn_name<'a>(toks: &[Tok<'a>]) -> Option<&'a str> {
    toks.windows(2).find_map(|w| match (w[0], w[1]) {
        (Tok::Ident("fn"), Tok::Ident(name)) => Some(name),
        _ => None,
    })
}

/// From `(start_line, start_col)`, finds the first `{` and returns the line
/// of its matching `}`. Returns `None` if a `;` terminates the item first
/// or the file ends.
fn brace_region(lines: &[lexer::Line], start_line: usize, start_col: usize) -> Option<usize> {
    let mut depth = 0u32;
    let mut seen_open = false;
    for (l, line) in lines.iter().enumerate().skip(start_line) {
        let code = &line.code;
        let from = if l == start_line {
            start_col.min(code.len())
        } else {
            0
        };
        for c in code[from..].chars() {
            if !seen_open {
                match c {
                    '{' => {
                        seen_open = true;
                        depth = 1;
                    }
                    ';' => return None,
                    _ => {}
                }
            } else {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(l);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Allow escapes
// ---------------------------------------------------------------------------

fn parse_allows(display_path: &str, lines: &[lexer::Line]) -> (Vec<Allow>, Vec<Finding>) {
    const MARKER: &str = "detlint::allow(";
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // Escapes live in plain `//` comments only; doc comments (`///`,
        // `//!`) merely *describe* the syntax and never activate it.
        let trimmed = line.comment.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let Some(pos) = line.comment.find(MARKER) else {
            continue;
        };
        let rest = &line.comment[pos + MARKER.len()..];
        let bad = |message: String| Finding {
            file: display_path.to_string(),
            line: i + 1,
            rule: RULE_BAD_ALLOW,
            message,
        };
        let Some(close) = rest.find(')') else {
            findings.push(bad("unclosed detlint::allow(".to_string()));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !SUPPRESSIBLE_RULES.contains(&rule.as_str()) {
            findings.push(bad(format!(
                "unknown rule '{rule}' in detlint::allow (expected one of: {})",
                SUPPRESSIBLE_RULES.join(", ")
            )));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        if !after.starts_with(':') || after[1..].trim().is_empty() {
            findings.push(bad(format!(
                "detlint::allow({rule}) requires a reason: `// detlint::allow({rule}): <why>`"
            )));
            continue;
        }
        let (start, end) = if line.code.trim().is_empty() {
            // Standalone escape: covers the next statement — through the
            // first following line whose code ends with `;`, `{` or `}`
            // (surviving rustfmt-wrapped multi-line expressions).
            let start = i + 1;
            let mut end = lines.len().saturating_sub(1);
            for (j, l) in lines.iter().enumerate().skip(start) {
                let t = l.code.trim_end();
                if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
                    end = j;
                    break;
                }
            }
            (start, end)
        } else {
            // Trailing escape: covers only its own line.
            (i, i)
        };
        allows.push(Allow {
            line: i,
            rule,
            start,
            end,
            used: false,
        });
    }
    (allows, findings)
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn finding(file: &str, line0: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line: line0 + 1,
        rule,
        message,
    }
}

/// R1: ambient nondeterminism. Any of these in production code breaks
/// bit-identical replay regardless of seed.
fn check_wall_clock(file: &str, i: usize, toks: &[Tok<'_>], out: &mut Vec<Finding>) {
    let pair = |a: &str, b: &str| {
        toks.windows(4).any(|w| {
            w[0] == Tok::Ident(a)
                && w[1] == Tok::Punct(':')
                && w[2] == Tok::Punct(':')
                && w[3] == Tok::Ident(b)
        })
    };
    let lone = |a: &str| toks.contains(&Tok::Ident(a));

    let hit = if pair("Instant", "now") {
        Some("Instant::now() reads the wall clock")
    } else if lone("SystemTime") || lone("UNIX_EPOCH") {
        Some("SystemTime reads the wall clock")
    } else if lone("thread_rng") {
        Some("thread_rng() draws OS entropy")
    } else if pair("rand", "random") {
        Some("rand::random() draws OS entropy")
    } else if lone("RandomState") {
        Some("RandomState hashes with a per-process random key")
    } else if lone("from_entropy") {
        Some("from_entropy() draws OS entropy")
    } else {
        None
    };
    if let Some(why) = hit {
        out.push(finding(
            file,
            i,
            RULE_WALL_CLOCK,
            format!("{why}; results must be a pure function of (config, seed)"),
        ));
    }
}

/// R2: raw seed-stream derivation. Stream constants live in exactly one
/// place — `softsku_telemetry::streams::StreamFamily` — so collisions are
/// structurally impossible; a literal XOR'd into a seed (or a literal
/// `seed_from_u64`) bypasses that registry.
fn check_stream_const(
    file: &str,
    i: usize,
    toks: &[Tok<'_>],
    out: &mut Vec<Finding>,
    streams: &mut Vec<StreamSite>,
) {
    let mentions_seed = toks.iter().any(|t| match t {
        Tok::Ident(id) => id.to_lowercase().contains("seed"),
        _ => false,
    });
    if !mentions_seed {
        return;
    }

    // `<expr> ^ <int literal>` (either side) on a seed-touching line.
    let xor_const = toks.iter().enumerate().find_map(|(k, t)| {
        if *t != Tok::Punct('^') {
            return None;
        }
        let neighbor = |idx: Option<usize>| {
            idx.and_then(|j| toks.get(j)).and_then(|n| match n {
                Tok::Num(text) => parse_int(text),
                _ => None,
            })
        };
        neighbor(k.checked_sub(1)).or_else(|| neighbor(k.checked_add(1)))
    });
    // `seed_from_u64(<int literal>…)`: a hardcoded stream seed.
    let literal_reseed = toks.windows(3).find_map(|w| match (w[0], w[1], w[2]) {
        (Tok::Ident("seed_from_u64"), Tok::Punct('('), Tok::Num(text)) => parse_int(text),
        _ => None,
    });

    if let Some(value) = xor_const.or(literal_reseed) {
        streams.push(StreamSite {
            file: file.to_string(),
            line: i + 1,
            value,
        });
        out.push(finding(
            file,
            i,
            RULE_STREAM_CONST,
            format!(
                "raw stream constant 0x{value:X} outside the registry; derive via \
                 softsku_telemetry::stream_seed(seed, StreamFamily::…)"
            ),
        ));
    }
}

const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Collects identifiers declared (or typed) as `HashMap`/`HashSet` anywhere
/// in the file: struct fields, typed lets/params (`name: HashMap<…>` even
/// nested, e.g. `RefCell<HashMap<…>>`), and untyped lets
/// (`let [mut] name = HashMap::new()`).
fn collect_map_names(toks: &[Vec<Tok<'_>>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in toks {
        let is_map = |t: &Tok<'_>| *t == Tok::Ident("HashMap") || *t == Tok::Ident("HashSet");
        if !line.iter().any(is_map) {
            continue;
        }
        let eq_pos = line.iter().position(|t| *t == Tok::Punct('='));
        // `name : … HashMap …` with the type appearing before any `=`.
        for (k, t) in line.iter().enumerate() {
            if let Tok::Ident(name) = t {
                let colon = line.get(k + 1) == Some(&Tok::Punct(':'));
                // Skip `::` path segments: `std::collections::HashMap`.
                let path_sep = line.get(k + 2) == Some(&Tok::Punct(':'));
                if colon && !path_sep {
                    let type_end = eq_pos.unwrap_or(line.len());
                    if line[k + 2..type_end].iter().any(is_map) {
                        names.insert((*name).to_string());
                    }
                }
            }
        }
        // `let [mut] name = … HashMap …`.
        if line.first() == Some(&Tok::Ident("let")) {
            if let Some(eq) = eq_pos {
                if line[eq..].iter().any(is_map) {
                    if let Some(Tok::Ident(name)) =
                        line[..eq].iter().rev().find(|t| matches!(t, Tok::Ident(_)))
                    {
                        names.insert((*name).to_string());
                    }
                }
            }
        }
    }
    names
}

/// R3: iteration over an unordered container. `HashMap` lookup is fine;
/// iterating one feeds hash order (which varies across std versions and
/// layouts) into whatever is computed next. Result-affecting iteration must
/// use `BTreeMap`; diagnostics may sort first or carry an allow.
fn check_map_iter(
    file: &str,
    i: usize,
    toks: &[Tok<'_>],
    map_names: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    // `name.iter()` / `.keys()` / `.drain(` / … on a known map binding.
    for w in toks.windows(3) {
        if let (Tok::Ident(name), Tok::Punct('.'), Tok::Ident(method)) = (w[0], w[1], w[2]) {
            if map_names.contains(name) && ITER_METHODS.contains(&method) {
                out.push(finding(
                    file,
                    i,
                    RULE_MAP_ITER,
                    format!(
                        "`{name}.{method}` iterates a HashMap/HashSet in unspecified order; \
                         use a BTreeMap/BTreeSet or sort before consuming"
                    ),
                ));
                return;
            }
        }
    }
    // `for … in [&[mut]] name` on a known map binding.
    let for_pos = toks.iter().position(|t| *t == Tok::Ident("for"));
    let in_pos = toks.iter().position(|t| *t == Tok::Ident("in"));
    if let (Some(f), Some(n)) = (for_pos, in_pos) {
        if f < n {
            for t in &toks[n + 1..] {
                if let Tok::Ident(name) = t {
                    if map_names.contains(*name) {
                        out.push(finding(
                            file,
                            i,
                            RULE_MAP_ITER,
                            format!(
                                "`for … in {name}` iterates a HashMap/HashSet in unspecified \
                                 order; use a BTreeMap/BTreeSet or sort before consuming"
                            ),
                        ));
                        return;
                    }
                }
            }
        }
    }
}

/// R4: panic-capable constructs in pipeline library code. A panic in one
/// replica of an A/B pair aborts the comparison asymmetrically; library
/// code must surface errors as values (binaries under `bin/` may unwrap).
fn check_panic_path(file: &str, i: usize, toks: &[Tok<'_>], out: &mut Vec<Finding>) {
    if !PANIC_FREE_PREFIXES.iter().any(|p| file.contains(p)) || file.contains("/bin/") {
        return;
    }
    let method_call = |name: &str| {
        toks.windows(2)
            .any(|w| w[0] == Tok::Punct('.') && w[1] == Tok::Ident(name))
    };
    let bang_macro = |name: &str| {
        toks.windows(2)
            .any(|w| w[0] == Tok::Ident(name) && w[1] == Tok::Punct('!'))
    };
    let hit = if method_call("unwrap") {
        Some(".unwrap()")
    } else if method_call("expect") {
        Some(".expect(…)")
    } else if bang_macro("panic") {
        Some("panic!")
    } else if bang_macro("unreachable") {
        Some("unreachable!")
    } else if bang_macro("todo") {
        Some("todo!")
    } else if bang_macro("unimplemented") {
        Some("unimplemented!")
    } else {
        None
    };
    if let Some(what) = hit {
        out.push(finding(
            file,
            i,
            RULE_PANIC_PATH,
            format!("{what} in pipeline library code; return an error value instead"),
        ));
    }
}

const TRUNCATING_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// R5: truncating casts inside seed/hash derivation. `seed as u32` quietly
/// discards the high half, collapsing streams that differ only there.
fn check_seed_trunc(file: &str, i: usize, toks: &[Tok<'_>], out: &mut Vec<Finding>) {
    for w in toks.windows(2) {
        if let (Tok::Ident("as"), Tok::Ident(target)) = (w[0], w[1]) {
            if TRUNCATING_TARGETS.contains(&target) {
                out.push(finding(
                    file,
                    i,
                    RULE_SEED_TRUNC,
                    format!(
                        "truncating cast `as {target}` inside a seed/hash derivation discards \
                         high bits; keep derivations in u64"
                    ),
                ));
                return;
            }
        }
    }
}
