//! Fixture: allow-escape semantics (trailing, standalone, stale, malformed).

pub fn trailing() {
    let _ = std::time::Instant::now(); // detlint::allow(wall_clock): trailing escape
}

pub fn standalone() {
    // detlint::allow(wall_clock): covers the wrapped statement below
    let _t = std::time::Instant::now()
        .elapsed();
}

pub fn stale() {
    // detlint::allow(wall_clock): nothing below violates — must be flagged
    let _x = 1;
}

pub fn bad() {
    // detlint::allow(frobnicate): unknown rule
    let _y = 2;
}

pub fn missing_reason() {
    // detlint::allow(wall_clock)
    let _ = std::time::Instant::now();
}
