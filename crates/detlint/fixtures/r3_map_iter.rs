//! Fixture: iteration over unordered containers.
use std::collections::HashMap;

pub struct Stats {
    counts: HashMap<String, u64>,
}

impl Stats {
    pub fn sum(&self) -> u64 {
        let mut total = 0;
        for (_k, v) in self.counts.iter() {
            total += v;
        }
        total
    }

    pub fn lookup(&self, k: &str) -> Option<&u64> {
        self.counts.get(k)
    }
}

pub fn local() {
    let mut set = std::collections::HashSet::new();
    set.insert(1);
    for v in &set {
        let _ = v;
    }
}
