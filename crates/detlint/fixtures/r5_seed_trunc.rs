//! Fixture: truncating casts inside seed derivations.

pub fn derive_seed(base: u64, lane: u64) -> u64 {
    let low = base as u32;
    u64::from(low) ^ lane
}

pub fn widen_ok(x: u32) -> u64 {
    x as u64
}
