//! Fixture: raw seed-stream constants bypassing the registry.

pub fn derive(seed: u64) -> u64 {
    seed ^ 0xBEEF
}

pub fn derive_other(base_seed: u64) -> u64 {
    0xBEEF ^ base_seed
}

pub fn hardcoded_seed() -> SmallRng {
    SmallRng::seed_from_u64(0x1234)
}
