//! Fixture: wall-clock and ambient-entropy violations.

pub fn timing() {
    let t0 = std::time::Instant::now();
    let _ = t0;
}

pub fn epoch() {
    let _ = std::time::SystemTime::now();
}

pub fn entropy() {
    let _ = rand::thread_rng();
}

pub fn allowed() {
    // detlint::allow(wall_clock): fixture — escape must suppress this one.
    let _ = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timed() {
        let _ = std::time::Instant::now();
    }
}
