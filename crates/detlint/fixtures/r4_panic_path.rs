//! Fixture: panic-capable calls in pipeline library code.

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn message(v: Option<u32>) -> u32 {
    v.expect("fixture")
}

pub fn boom() {
    panic!("fixture");
}

pub fn fallback(v: Option<u32>) -> u32 {
    v.unwrap_or(7)
}
