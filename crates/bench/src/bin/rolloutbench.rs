//! Rollout-lifecycle benchmark: composition, staged deployment, drift.
//!
//! ```text
//! cargo run --release -p softsku-bench --bin rolloutbench            # full
//! cargo run --release -p softsku-bench --bin rolloutbench -- --smoke # CI
//! cargo run --release -p softsku-bench --bin rolloutbench -- --json out.json
//! ```
//!
//! Part 1 runs the closed tune → compose → rollout → drift → re-tune
//! lifecycle for one service under drift-inducing code churn and reports
//! each phase's outcome plus the end-to-end wall time. Part 2 measures the
//! staged fleet's raw sampling throughput (ticks per second), the quantity
//! that bounds how much monitoring horizon a simulation budget buys. Part 3
//! (full mode) times composed-SKU validation at 1 worker vs the machine
//! width, the scheduler-replica speedup the composer inherits. `--json`
//! writes the same measurements for BENCH_*.json trajectory tracking.

use softsku_bench::json::Json;
use softsku_cluster::{StagedFleet, StagedFleetConfig};
use softsku_knobs::Knob;
use softsku_rollout::{ComposerConfig, PipelineConfig, RolloutPipeline, SkuComposer};
use softsku_workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;
use std::time::Instant;
use usku::metric::PerformanceMetric;
use usku::{AbTestConfig, DesignSpaceMap};

const BASE_SEED: u64 = 21;

type BoxError = Box<dyn std::error::Error>;

fn drifting_config(seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::fast_test(seed);
    config.staged.pushes_per_hour = 2.0;
    config.staged.push_magnitude = 0.005;
    config.staged.drift_per_push = 0.0005;
    config
}

/// Part 1: the full lifecycle, timed end to end.
fn lifecycle() -> Result<Json, BoxError> {
    let service = Microservice::Web;
    let platform = PlatformKind::Skylake18;
    let knobs = [Knob::Thp, Knob::Shp];
    println!("== lifecycle: {service} on {platform}, knobs {knobs:?} ==");
    let pipeline = RolloutPipeline::new(drifting_config(BASE_SEED));
    // detlint::allow(wall_clock): benchmark harness measures its own speed;
    // wall time is the quantity under test, not a simulated result.
    let t0 = Instant::now();
    let report = pipeline.run(service, platform, &knobs)?;
    let wall_s = t0.elapsed().as_secs_f64();
    println!("{}", report.render());
    println!("  lifecycle wall: {wall_s:.2} s");
    Ok(Json::obj()
        .set("service", Json::Str(service.to_string()))
        .set("platform", Json::Str(platform.to_string()))
        .set(
            "initial_decision",
            Json::Str(format!("{:?}", report.initial.composition.decision)),
        )
        .set(
            "initial_gain",
            Json::Num(report.initial.composition.measured_gain),
        )
        .set("drift_fired", Json::Bool(report.retuned.is_some()))
        .set("deployed", Json::Bool(report.deployed()))
        .set(
            "rollout_series",
            Json::Int(report.rollout_ods.series_count() as i64),
        )
        .set("wall_s", Json::Num(wall_s)))
}

/// Part 2: staged-fleet sampling throughput.
fn fleet_throughput(ticks: usize) -> Result<Json, BoxError> {
    let profile = Microservice::Web.profile(PlatformKind::Skylake18)?;
    let baseline = profile.production_config.clone();
    let mut candidate = baseline.clone();
    candidate.shp_pages = 300;
    let mut fleet = StagedFleet::new(
        profile,
        baseline,
        candidate,
        StagedFleetConfig::fast_test(),
        BASE_SEED,
    )?;
    fleet.stage_to(1.0);
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t0 = Instant::now();
    for _ in 0..ticks {
        fleet.tick()?;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let rate = ticks as f64 / wall_s.max(1e-9);
    println!("== staged fleet: {ticks} ticks in {wall_s:.3} s ({rate:.0} ticks/s) ==");
    Ok(Json::obj()
        .set("ticks", Json::Int(ticks as i64))
        .set("wall_s", Json::Num(wall_s))
        .set("ticks_per_s", Json::Num(rate)))
}

/// Part 3: composed-SKU validation speedup across worker counts.
fn composer_speedup(hw: usize) -> Result<Json, BoxError> {
    let service = Microservice::Web;
    let platform = PlatformKind::Skylake18;
    let profile = service.profile(platform)?;
    let baseline = profile.production_config.clone();

    // A synthetic map carrying the two winners the Web sweeps find, so the
    // benchmark isolates validation cost from tuning cost.
    let mut map = DesignSpaceMap::new();
    for setting in [
        softsku_knobs::KnobSetting::Thp(softsku_archsim::ThpMode::AlwaysOn),
        softsku_knobs::KnobSetting::ShpPages(300),
    ] {
        map.record(usku::AbTestResult {
            setting,
            baseline: None,
            candidate: None,
            welch: None,
            verdict: usku::Verdict::Better { gain: 0.02 },
            samples: 100,
            attempts: 100,
            rejected_outliers: 0,
        });
    }

    let mut runs = Vec::new();
    let mut reference_gain: Option<f64> = None;
    for workers in [1, hw] {
        let composer = SkuComposer::new(
            AbTestConfig::fast_test(),
            PerformanceMetric::recommended_for(service),
            ComposerConfig {
                replicas: 2 * hw.max(2),
                min_composed_fraction: 0.8,
            },
            BASE_SEED,
        )
        .with_workers(NonZeroUsize::new(workers.max(1)).unwrap_or(NonZeroUsize::MIN));
        let mut proto = softsku_cluster::AbEnvironment::new(
            service.profile(platform)?,
            softsku_cluster::EnvConfig::fast_test(),
            BASE_SEED,
        )?;
        // detlint::allow(wall_clock): benchmark harness measures its own speed.
        let t0 = Instant::now();
        let composition = composer.compose(&mut proto, &baseline, &map)?;
        let wall_s = t0.elapsed().as_secs_f64();
        println!(
            "== composer ({workers:>2} workers): {:?} in {wall_s:.2} s ==",
            composition.decision
        );
        match reference_gain {
            None => reference_gain = Some(composition.measured_gain),
            Some(g) => assert!(
                (composition.measured_gain - g).abs() < 1e-12,
                "validation verdicts must not depend on worker count"
            ),
        }
        runs.push(
            Json::obj()
                .set("workers", Json::Int(workers as i64))
                .set("wall_s", Json::Num(wall_s))
                .set("gain", Json::Num(composition.measured_gain)),
        );
    }
    Ok(Json::obj().set("runs", Json::Arr(runs)))
}

/// Parses `--json <path>` out of the argument list.
fn json_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
    }
    None
}

fn main() -> Result<(), BoxError> {
    let hw = usku::scheduler::default_workers().get();
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("hardware threads: {hw}");

    let mut summary = Json::obj()
        .set("bench", Json::Str("rolloutbench".into()))
        .set("smoke", Json::Bool(smoke))
        .set("hardware_threads", Json::Int(hw as i64))
        .set("base_seed", Json::Int(BASE_SEED as i64))
        .set("lifecycle", lifecycle()?)
        .set("fleet", fleet_throughput(if smoke { 500 } else { 20_000 })?);
    if !smoke {
        summary = summary.set("composer", composer_speedup(hw)?);
    }

    if let Some(path) = json_path() {
        std::fs::write(&path, summary.render_pretty())?;
        println!("wrote {path}");
    }
    if smoke {
        println!("smoke ok");
    }
    Ok(())
}
