//! Robustness benchmark: the fleet coordinator under a chaos campaign.
//!
//! ```text
//! cargo run --release -p softsku-bench --bin chaosbench            # full
//! cargo run --release -p softsku-bench --bin chaosbench -- --smoke # CI
//! cargo run --release -p softsku-bench --bin chaosbench -- --json BENCH_robustness.json
//! ```
//!
//! Part 1 replays the shared demo campaign (four services, two pools, all
//! four fault families) and reports the injected-fault counts, the
//! coordinator's reactions (breaker trips, rollbacks, quarantines,
//! demotions), recovery MTTR in sim-time, and the coordinated staging
//! throughput in service-ticks per second. Part 2 forces every brownout
//! dark (`blackout_prob = 1`) so degrade → recover episodes dominate and
//! MTTR measures the graceful-degradation path. Part 3 (full mode) re-runs
//! the campaign at 1 worker vs the machine width and asserts the reports
//! are bit-identical — the robustness layer's determinism contract —
//! while reporting the wall-clock speedup. `--json` writes the same
//! measurements for BENCH_*.json trajectory tracking.

use softsku_bench::json::Json;
use softsku_cluster::ChaosConfig;
use softsku_rollout::{demo_campaign, CoordinatorConfig, CoordinatorReport, FleetCoordinator};
use std::num::NonZeroUsize;
use std::time::Instant;

const BASE_SEED: u64 = 21;

type BoxError = Box<dyn std::error::Error>;

/// Runs the demo campaign under `chaos` (falling back to the campaign's
/// own chaos when `None`) and packages the report plus wall metrics.
fn campaign_run(
    label: &str,
    chaos: Option<ChaosConfig>,
    workers: usize,
) -> Result<(CoordinatorReport, Json), BoxError> {
    let (topology, default_chaos, plans) = demo_campaign(BASE_SEED)?;
    let services = plans.len();
    let chaos = chaos.unwrap_or(default_chaos);
    let coordinator = FleetCoordinator::new(CoordinatorConfig::fast_test())
        .with_workers(NonZeroUsize::new(workers.max(1)).unwrap_or(NonZeroUsize::MIN));
    // detlint::allow(wall_clock): benchmark harness measures its own speed;
    // wall time is the quantity under test, not a simulated result.
    let t0 = Instant::now();
    let report = coordinator.run(&topology, chaos, plans, BASE_SEED)?;
    let wall_s = t0.elapsed().as_secs_f64();
    let service_ticks = report.ticks as f64 * services as f64;
    let rate = service_ticks / wall_s.max(1e-9);
    println!("== {label} ({workers} workers) ==");
    print!("{}", report.render());
    println!("  wall: {wall_s:.2} s ({rate:.0} staged service-ticks/s)");
    let json = Json::obj()
        .set("ticks", Json::Int(report.ticks as i64))
        .set("sim_h", Json::Num(report.sim_time_s / 3600.0))
        .set("brownouts", Json::Int(report.faults[0] as i64))
        .set("push_waves", Json::Int(report.faults[1] as i64))
        .set("canary_crashes", Json::Int(report.faults[2] as i64))
        .set("stalls", Json::Int(report.faults[3] as i64))
        .set("breaker_trips", Json::Int(report.breaker_trips as i64))
        .set("rollbacks", Json::Int(report.rollbacks as i64))
        .set("quarantines", Json::Int(report.quarantines as i64))
        .set("demotions", Json::Int(report.demotions as i64))
        .set("max_blast", Json::Int(report.max_blast as i64))
        .set("recoveries", Json::Int(report.recoveries as i64))
        .set("mttr_sim_s", Json::Num(report.mttr_s))
        .set("converged", Json::Bool(report.converged()))
        .set("deployed", {
            let n = report.services.iter().filter(|s| s.deployed()).count();
            Json::Int(n as i64)
        })
        .set("wall_s", Json::Num(wall_s))
        .set("service_ticks_per_s", Json::Num(rate));
    Ok((report, json))
}

/// Part 3: the determinism contract across worker counts, timed.
fn worker_sweep(hw: usize) -> Result<Json, BoxError> {
    let mut runs = Vec::new();
    let mut reference: Option<String> = None;
    for workers in [1, hw] {
        let (report, json) = campaign_run("worker sweep", None, workers)?;
        let view = format!("{report:?}");
        match &reference {
            None => reference = Some(view),
            Some(first) => assert!(
                *first == view,
                "coordinator outcomes must not depend on worker count"
            ),
        }
        runs.push(json.set("workers", Json::Int(workers as i64)));
    }
    println!("== worker sweep: reports bit-identical at 1 and {hw} workers ==");
    Ok(Json::obj()
        .set("bit_identical", Json::Bool(true))
        .set("runs", Json::Arr(runs)))
}

/// Parses `--json <path>` out of the argument list.
fn json_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
    }
    None
}

fn main() -> Result<(), BoxError> {
    let hw = usku::scheduler::default_workers().get();
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("hardware threads: {hw}");

    let (_, campaign) = campaign_run("chaos campaign", None, hw)?;

    // Graceful degradation under forced blackouts: every brownout goes
    // dark, so recovery episodes (and their MTTR) measure the degrade →
    // recover path rather than quarantine retries.
    let mut dark = ChaosConfig::campaign();
    dark.blackout_prob = 1.0;
    let (dark_report, blackout) = campaign_run("forced blackouts", Some(dark), hw)?;
    assert!(
        dark_report.recoveries > 0,
        "forced blackouts must produce degrade→recover episodes"
    );

    let mut summary = Json::obj()
        .set("bench", Json::Str("chaosbench".into()))
        .set("smoke", Json::Bool(smoke))
        .set("hardware_threads", Json::Int(hw as i64))
        .set("base_seed", Json::Int(BASE_SEED as i64))
        .set("campaign", campaign)
        .set("blackout", blackout);
    if !smoke {
        summary = summary.set("workers", worker_sweep(hw)?);
    }

    if let Some(path) = json_path() {
        std::fs::write(&path, summary.render_pretty())?;
        println!("wrote {path}");
    }
    if smoke {
        println!("smoke ok");
    }
    Ok(())
}
