//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p softsku-bench --release --bin repro -- all
//! cargo run -p softsku-bench --release --bin repro -- fig16 fig17
//! cargo run -p softsku-bench --release --bin repro -- --full fig19
//! ```

use softsku_bench::{run_experiment, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--full").collect();
    if ids.is_empty() {
        eprintln!("usage: repro [--full] <experiment-id>... | all");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let selected: Vec<&str> = if ids.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            if !EXPERIMENTS.contains(&id.as_str()) {
                eprintln!(
                    "unknown experiment {id:?}; valid: {}",
                    EXPERIMENTS.join(" ")
                );
                std::process::exit(2);
            }
            out.push(id.as_str());
        }
        out
    };
    for id in selected {
        // detlint::allow(wall_clock): harness-side timing of each experiment;
        // printed as a progress note, never fed into a simulated result.
        let start = std::time::Instant::now();
        let output = run_experiment(id, full);
        println!("==================== {id} ====================");
        println!("{output}");
        println!(
            "  [{id} regenerated in {:.1}s]",
            start.elapsed().as_secs_f64()
        );
        println!();
    }
}
