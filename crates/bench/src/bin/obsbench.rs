//! Observability-layer benchmark: tracing overhead and retention throughput.
//!
//! ```text
//! cargo run --release -p softsku-bench --bin obsbench            # full
//! cargo run --release -p softsku-bench --bin obsbench -- --smoke # CI
//! cargo run --release -p softsku-bench --bin obsbench -- --json out.json
//! ```
//!
//! Part 1 runs the full rollout lifecycle twice — untraced and traced —
//! and reports the tracing overhead as a percentage of lifecycle wall
//! time, after asserting both runs produced bit-identical reports (the
//! observability contract: a disabled-or-enabled sink never perturbs
//! results). Part 2 measures raw [`TraceSink`] span throughput, the cost
//! floor for instrumenting hotter loops. Part 3 races [`TieredOds`]
//! against the flat [`Ods`] on a long append stream whose horizon forces
//! continuous eviction and tier cascades — the retention tax, paid to keep
//! a fleet-lifetime ledger on bounded memory. `--json` writes the same
//! measurements for BENCH_*.json trajectory tracking.

use softsku_bench::json::Json;
use softsku_knobs::Knob;
use softsku_rollout::{PipelineConfig, RolloutPipeline};
use softsku_telemetry::trace::TraceSink;
use softsku_telemetry::{Ods, SeriesKey, TierSpec, TieredOds};
use softsku_workloads::{Microservice, PlatformKind};
use std::time::Instant;

const BASE_SEED: u64 = 21;

type BoxError = Box<dyn std::error::Error>;

fn drifting_config(seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::fast_test(seed);
    config.staged.pushes_per_hour = 2.0;
    config.staged.push_magnitude = 0.005;
    config.staged.drift_per_push = 0.0005;
    config
}

/// Part 1: lifecycle tracing overhead, traced vs untraced.
fn trace_overhead() -> Result<Json, BoxError> {
    let service = Microservice::Web;
    let platform = PlatformKind::Skylake18;
    let knobs = [Knob::Thp, Knob::Shp];

    // detlint::allow(wall_clock): benchmark harness measures its own speed;
    // wall time is the quantity under test, not a simulated result.
    let t0 = Instant::now();
    let untraced =
        RolloutPipeline::new(drifting_config(BASE_SEED)).run(service, platform, &knobs)?;
    let untraced_s = t0.elapsed().as_secs_f64();

    let mut sink = TraceSink::new();
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t0 = Instant::now();
    let traced = RolloutPipeline::new(drifting_config(BASE_SEED))
        .run_traced(service, platform, &knobs, &mut sink)?;
    let traced_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        untraced.render(),
        traced.render(),
        "tracing must not perturb lifecycle results"
    );
    let overhead_pct = 100.0 * (traced_s - untraced_s) / untraced_s.max(1e-9);
    println!(
        "== lifecycle: untraced {untraced_s:.2} s, traced {traced_s:.2} s \
         ({overhead_pct:+.1} % overhead, {} spans, {} counters) ==",
        sink.spans().len(),
        sink.counters().len()
    );
    Ok(Json::obj()
        .set("untraced_wall_s", Json::Num(untraced_s))
        .set("traced_wall_s", Json::Num(traced_s))
        .set("overhead_pct", Json::Num(overhead_pct))
        .set("spans", Json::Int(sink.spans().len() as i64))
        .set("counters", Json::Int(sink.counters().len() as i64))
        .set(
            "export_bytes",
            Json::Int(sink.chrome_trace().render().len() as i64),
        ))
}

/// Part 2: raw span-recording throughput.
fn span_throughput(spans: usize) -> Json {
    let mut sink = TraceSink::new();
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t0 = Instant::now();
    for i in 0..spans {
        let t = i as f64;
        let h = sink.open("bench", "span", t);
        sink.leaf("bench", "leaf", t, 0.5);
        sink.close(h, t + 1.0);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let rate = (2 * spans) as f64 / wall_s.max(1e-9);
    println!(
        "== trace sink: {} spans in {wall_s:.3} s ({rate:.0} spans/s) ==",
        2 * spans
    );
    Json::obj()
        .set("spans", Json::Int(2 * spans as i64))
        .set("wall_s", Json::Num(wall_s))
        .set("spans_per_s", Json::Num(rate))
}

/// Part 3: tiered-retention append throughput vs the flat ledger, on a
/// stream long enough that every append evicts and cascades.
fn retention_throughput(appends: usize) -> Result<Json, BoxError> {
    let key = SeriesKey::new("web", "rollout.bench");
    // One point per simulated minute; raw keeps an hour, tier 0 folds into
    // 10-minute buckets for a day, tier 1 keeps hourly buckets forever.
    let tiers = [
        TierSpec {
            bucket_s: 600.0,
            window_s: 86_400.0,
        },
        TierSpec {
            bucket_s: 3_600.0,
            window_s: f64::INFINITY,
        },
    ];

    let mut flat = Ods::new();
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t0 = Instant::now();
    for i in 0..appends {
        flat.append(&key, 60.0 * i as f64, (i % 7) as f64)?;
    }
    let flat_s = t0.elapsed().as_secs_f64();

    let mut tiered = TieredOds::with_tiers(3_600.0, tiers.to_vec())?;
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t0 = Instant::now();
    for i in 0..appends {
        tiered.append(&key, 60.0 * i as f64, (i % 7) as f64)?;
    }
    let tiered_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        tiered.len(&key),
        appends,
        "tiers must not lose observations"
    );
    let flat_rate = appends as f64 / flat_s.max(1e-9);
    let tiered_rate = appends as f64 / tiered_s.max(1e-9);
    let resident = tiered.raw_points(&key).len()
        + (0..tiered.tier_count())
            .map(|t| tiered.tier_points(&key, t).len())
            .sum::<usize>();
    println!(
        "== retention: {appends} appends — flat {flat_rate:.0}/s, tiered {tiered_rate:.0}/s \
         ({resident} resident points vs {appends} flat) ==",
    );
    Ok(Json::obj()
        .set("appends", Json::Int(appends as i64))
        .set("flat_appends_per_s", Json::Num(flat_rate))
        .set("tiered_appends_per_s", Json::Num(tiered_rate))
        .set("tiered_resident_points", Json::Int(resident as i64))
        .set(
            "compression",
            Json::Num(appends as f64 / resident.max(1) as f64),
        ))
}

/// Parses `--json <path>` out of the argument list.
fn json_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
    }
    None
}

fn main() -> Result<(), BoxError> {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let mut summary = Json::obj()
        .set("bench", Json::Str("obsbench".into()))
        .set("smoke", Json::Bool(smoke))
        .set("base_seed", Json::Int(BASE_SEED as i64))
        .set(
            "span_throughput",
            span_throughput(if smoke { 50_000 } else { 500_000 }),
        )
        .set(
            "retention",
            retention_throughput(if smoke { 100_000 } else { 1_000_000 })?,
        );
    if !smoke {
        summary = summary.set("lifecycle", trace_overhead()?);
    }

    if let Some(path) = json_path() {
        std::fs::write(&path, summary.render_pretty())?;
        println!("wrote {path}");
    }
    if smoke {
        println!("smoke ok");
    }
    Ok(())
}
