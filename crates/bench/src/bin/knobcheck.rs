//! Quick knob-response sanity check: prints MIPS deltas for the key
//! experiments of Figs. 14–18 before the full µSKU harness exists.

use softsku_archsim::cache::CdpPartition;
use softsku_archsim::engine::{Engine, ServerConfig};
use softsku_archsim::pagemap::ThpMode;
use softsku_archsim::platform::PlatformKind;
use softsku_archsim::prefetch::PrefetcherConfig;
use softsku_workloads::Microservice;

const WINDOW: u64 = 400_000;

fn mips(svc: Microservice, plat: PlatformKind, cfg: &ServerConfig) -> f64 {
    let prof = svc.profile(plat).unwrap();
    let e = Engine::new(cfg.clone(), prof.stream.clone(), 42).unwrap();
    e.run_window(WINDOW, prof.peak_utilization)
        .unwrap()
        .mips_total
}

fn main() {
    for (svc, plat) in [
        (Microservice::Web, PlatformKind::Skylake18),
        (Microservice::Web, PlatformKind::Broadwell16),
        (Microservice::Ads1, PlatformKind::Skylake18),
    ] {
        let prof = svc.profile(plat).unwrap();
        let base = prof.production_config.clone();
        let m0 = mips(svc, plat, &base);
        println!("== {svc} on {plat} (production MIPS {m0:.0}) ==");

        // CDP sweep.
        let ways = base.llc_ways_enabled;
        print!("  CDP: ");
        for p in CdpPartition::sweep(ways) {
            let mut cfg = base.clone();
            cfg.cdp = Some(p);
            let g = (mips(svc, plat, &cfg) / m0 - 1.0) * 100.0;
            print!("{p}:{g:+.1}% ");
        }
        println!();

        // Prefetchers.
        print!("  PF : ");
        for pc in PrefetcherConfig::sweep() {
            let mut cfg = base.clone();
            cfg.prefetchers = pc;
            let g = (mips(svc, plat, &cfg) / m0 - 1.0) * 100.0;
            print!("[{pc}]:{g:+.1}% ");
        }
        println!();

        // THP.
        print!("  THP: ");
        for mode in ThpMode::ALL {
            let mut cfg = base.clone();
            cfg.thp = mode;
            let g = (mips(svc, plat, &cfg) / m0 - 1.0) * 100.0;
            print!("{mode}:{g:+.1}% ");
        }
        println!();

        // SHP.
        print!("  SHP: ");
        for shp in (0..=600).step_by(100) {
            let mut cfg = base.clone();
            cfg.shp_pages = shp;
            let g = (mips(svc, plat, &cfg) / m0 - 1.0) * 100.0;
            print!("{shp}:{g:+.1}% ");
        }
        println!();

        // Core frequency.
        print!("  CF : ");
        for f in [1.6, 1.8, 2.0, 2.2] {
            let mut cfg = base.clone();
            cfg.core_freq_ghz = f;
            let g = (mips(svc, plat, &cfg) / m0 - 1.0) * 100.0;
            print!("{f}:{g:+.1}% ");
        }
        println!();

        // Uncore frequency.
        print!("  UF : ");
        for f in [1.4, 1.6, 1.8] {
            let mut cfg = base.clone();
            cfg.uncore_freq_ghz = f;
            let g = (mips(svc, plat, &cfg) / m0 - 1.0) * 100.0;
            print!("{f}:{g:+.1}% ");
        }
        println!();

        // Core count.
        print!("  CC : ");
        for n in [2u32, 4, 8, 12, 16, 18] {
            if n > plat.spec().total_cores() {
                continue;
            }
            let mut cfg = base.clone();
            cfg.active_cores = n;
            let m = mips(svc, plat, &cfg);
            print!("{n}:{:.2}x ", m / m0);
        }
        println!();
    }
}
