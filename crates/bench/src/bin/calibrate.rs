//! Calibration check: simulate every service at its production operating
//! point and print measured vs. target characterization numbers.
//!
//! Run with `cargo run -p softsku-bench --release --bin calibrate`.

use softsku_archsim::engine::Engine;
use softsku_workloads::Microservice;

fn main() {
    println!(
        "{:<8} {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>5} {:>5} | bw(GB/s) lat(ns) | tmam r/f/b/b | cs%",
        "svc", "ipc", "tgt", "l1i", "tgt", "l2c", "tgt", "llcC", "tgt", "llcD", "tgt", "itlb", "tgt", "dtlb", "tgt"
    );
    for svc in Microservice::ALL {
        let plat = svc.default_platform();
        let prof = svc.profile(plat).unwrap();
        let t = svc.targets();
        let engine = Engine::new(prof.production_config.clone(), prof.stream.clone(), 42).unwrap();
        let r = engine.run_window(600_000, prof.peak_utilization).unwrap();
        let c = &r.counters;
        let tm = r.tmam.as_percentages();
        println!(
            "{:<8} {:>6.2} {:>6.2} | {:>6.1} {:>6.1} | {:>6.1} {:>6.1} | {:>6.2} {:>6.2} | {:>6.2} {:>6.2} | {:>6.1} {:>6.1} | {:>5.1} {:>5.1} | {:>7.1}/{:<5.0} {:>6.0}/{:<4.0} | {:>2.0}/{:>2.0}/{:>2.0}/{:>2.0} vs {:.0}/{:.0}/{:.0}/{:.0} | {:>4.1} ({:.0}-{:.0})",
            t.name,
            r.ipc_core, t.ipc,
            c.l1i_code_mpki(), t.code_mpki[0],
            c.l2_code_mpki(), t.code_mpki[1],
            c.llc_code_mpki(), t.code_mpki[2],
            c.llc_data_mpki(), t.data_mpki[2],
            c.itlb_mpki(), t.itlb_mpki,
            c.dtlb_load_mpki() + c.dtlb_store_mpki(), t.dtlb_mpki[0] + t.dtlb_mpki[1],
            r.bandwidth_gbps, t.bw_gbps,
            r.mem_latency_ns, t.mem_latency_ns,
            tm[0], tm[1], tm[2], tm[3],
            t.tmam_pct[0], t.tmam_pct[1], t.tmam_pct[2], t.tmam_pct[3],
            r.context_switch_fraction * 100.0,
            t.cs_time_pct.0, t.cs_time_pct.1,
        );
        // Suggested base_cpi_scale to hit the Fig. 6 per-core IPC target.
        let ipc_thread_target = t.ipc / (1.0 + prof.stream.smt_gain);
        let cycles_needed = c.instructions as f64 / ipc_thread_target;
        let nonbase = r.cpi.total() - r.cpi.base;
        let scale_now = prof.stream.base_cpi_scale;
        let suggested = ((cycles_needed - nonbase) / (r.cpi.base / scale_now)).max(0.05);
        println!(
            "          l1d {:>6.1}/{:<6.1} l2d {:>6.1}/{:<6.1} mips/core {:>8.0} thread-ipc {:>5.2} util {:>4.2} bw-bound {} scale->{:.2}",
            c.l1d_data_mpki(), t.data_mpki[0],
            c.l2_data_mpki(), t.data_mpki[1],
            r.mips_per_core, r.ipc_thread, r.mem_utilization, r.bandwidth_bound, suggested
        );
        let ki = c.instructions as f64 / 1000.0;
        println!(
            "          cpi/KI: base {:.0} fe {:.0} bs {:.0} be {:.0} cs {:.0}",
            r.cpi.base / ki,
            r.cpi.frontend / ki,
            r.cpi.bad_speculation / ki,
            r.cpi.backend_memory / ki,
            r.cpi.context_switch / ki
        );
    }
}
