//! Sweep-throughput benchmark: serial vs parallel tuning schedulers.
//!
//! ```text
//! cargo run --release -p softsku-bench --bin sweepbench            # full
//! cargo run --release -p softsku-bench --bin sweepbench -- --smoke # CI
//! cargo run --release -p softsku-bench --bin sweepbench -- --json out.json
//! ```
//!
//! Part 1 times one service's independent sweep executed serially
//! (`independent_sweep`, one shared environment) against the deterministic
//! parallel scheduler (`parallel_independent_sweep`, one forked replica per
//! test) at increasing worker counts, and checks the parallel winners agree
//! with the serial ones. Part 2 times a multi-service fleet campaign:
//! per-service sweeps run back-to-back on one worker vs the `FleetTuner`
//! interleaving every service's tests on a shared pool. The numbers feed
//! the EXPERIMENTS.md scheduler row; `--json <path>` writes the same
//! measurements as a machine-readable summary for trajectory tracking.

use softsku_bench::json::Json;
use softsku_cluster::{AbEnvironment, EnvConfig};
use softsku_knobs::{Knob, KnobSpace};
use softsku_workloads::{Microservice, PlatformKind};
use std::num::NonZeroUsize;
use std::time::Instant;
use usku::metric::PerformanceMetric;
use usku::scheduler::{parallel_independent_sweep, FleetTuner, Schedule};
use usku::search::independent_sweep;
use usku::{AbTestConfig, AbTester, UskuError};

const BASE_SEED: u64 = 21;

fn workers(n: usize) -> NonZeroUsize {
    NonZeroUsize::new(n).expect("worker counts are positive")
}

/// Builds the tester/environment/baseline/space quadruple for one target.
fn setup(
    service: Microservice,
    platform: PlatformKind,
) -> Result<(AbTester, AbEnvironment, KnobSpace), UskuError> {
    let profile = service.profile(platform)?;
    let space = KnobSpace::for_platform(&profile.production_config.platform, profile.constraints);
    let env = AbEnvironment::new(profile, EnvConfig::fast_test(), BASE_SEED)?;
    let tester = AbTester::new(
        AbTestConfig::fast_test(),
        PerformanceMetric::recommended_for(service),
    );
    Ok((tester, env, space))
}

fn single_service(knobs: &[Knob], worker_counts: &[usize]) -> Result<Json, UskuError> {
    let service = Microservice::Web;
    let platform = PlatformKind::Skylake18;
    println!("== {service} on {platform}: independent sweep, {knobs:?} ==");

    let (tester, mut env, space) = setup(service, platform)?;
    let baseline = env.profile().production_config.clone();
    // detlint::allow(wall_clock): benchmark harness measures its own speed;
    // wall time is the quantity under test, not a simulated result.
    let t0 = Instant::now();
    let serial = independent_sweep(&tester, &mut env, &baseline, &space, knobs)?;
    let serial_s = t0.elapsed().as_secs_f64();
    println!(
        "  serial                 {:>6.2} s   {:>3} tests   {:>6.1} tests/s",
        serial_s,
        serial.map.test_count(),
        serial.map.test_count() as f64 / serial_s.max(1e-9)
    );
    let mut runs = vec![Json::obj()
        .set("mode", Json::Str("serial".into()))
        .set("workers", Json::Int(1))
        .set("tests", Json::Int(serial.map.test_count() as i64))
        .set("wall_s", Json::Num(serial_s))];

    for &n in worker_counts {
        let (tester, mut env, space) = setup(service, platform)?;
        // detlint::allow(wall_clock): benchmark harness measures its own speed.
        let t0 = Instant::now();
        let par = parallel_independent_sweep(
            &tester,
            &mut env,
            &baseline,
            &space,
            knobs,
            Schedule::new(BASE_SEED).with_workers(workers(n)),
        )?;
        let par_s = t0.elapsed().as_secs_f64();
        println!(
            "  parallel ({n:>2} workers)  {:>6.2} s   {:>3} tests   {:>6.1} tests/s   {:.2}x vs serial",
            par_s,
            par.map.test_count(),
            par.map.test_count() as f64 / par_s.max(1e-9),
            serial_s / par_s.max(1e-9)
        );
        assert_eq!(
            par.best_config, serial.best_config,
            "parallel sweep must find the serial winners"
        );
        runs.push(
            Json::obj()
                .set("mode", Json::Str("parallel".into()))
                .set("workers", Json::Int(n as i64))
                .set("tests", Json::Int(par.map.test_count() as i64))
                .set("wall_s", Json::Num(par_s))
                .set("speedup_vs_serial", Json::Num(serial_s / par_s.max(1e-9))),
        );
    }
    Ok(Json::obj()
        .set("service", Json::Str(service.to_string()))
        .set("platform", Json::Str(platform.to_string()))
        .set(
            "knobs",
            Json::Arr(knobs.iter().map(|k| Json::Str(k.to_string())).collect()),
        )
        .set("runs", Json::Arr(runs)))
}

fn fleet(
    targets: &[(Microservice, PlatformKind)],
    knobs: &[Knob],
    pool: usize,
) -> Result<Json, UskuError> {
    println!(
        "== fleet campaign: {} services, knobs {knobs:?} ==",
        targets.len()
    );

    // Baseline: each service tuned alone, back to back, one worker — the
    // paper's one-service-at-a-time operating mode.
    let sequential = FleetTuner::new(AbTestConfig::fast_test(), EnvConfig::fast_test(), BASE_SEED)
        .with_knobs(knobs.to_vec())
        .with_workers(workers(1));
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t0 = Instant::now();
    let mut seq_tests = 0usize;
    for &target in targets {
        seq_tests += sequential.tune(&[target])?.test_count();
    }
    let seq_s = t0.elapsed().as_secs_f64();
    println!(
        "  sequential (1 worker)   {:>6.2} s   {:>3} tests   {:>6.1} tests/s",
        seq_s,
        seq_tests,
        seq_tests as f64 / seq_s.max(1e-9)
    );

    let tuner = FleetTuner::new(AbTestConfig::fast_test(), EnvConfig::fast_test(), BASE_SEED)
        .with_knobs(knobs.to_vec())
        .with_workers(workers(pool));
    // detlint::allow(wall_clock): benchmark harness measures its own speed.
    let t1 = Instant::now();
    let fleet = tuner.tune(targets)?;
    let par_s = t1.elapsed().as_secs_f64();
    println!(
        "  fleet ({pool:>2} workers)     {:>6.2} s   {:>3} tests   {:>6.1} tests/s   {:.2}x vs sequential",
        par_s,
        fleet.test_count(),
        fleet.tests_per_second(),
        seq_s / par_s.max(1e-9)
    );
    assert_eq!(
        fleet.test_count(),
        seq_tests,
        "the fleet plan must cover exactly the sequential tests"
    );
    println!("{}", fleet.render());
    Ok(Json::obj()
        .set("services", Json::Int(targets.len() as i64))
        .set("tests", Json::Int(fleet.test_count() as i64))
        .set("sequential_wall_s", Json::Num(seq_s))
        .set("fleet_wall_s", Json::Num(par_s))
        .set("fleet_workers", Json::Int(pool as i64))
        .set("speedup_vs_sequential", Json::Num(seq_s / par_s.max(1e-9))))
}

/// Parses `--json <path>` out of the argument list.
fn json_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
    }
    None
}

fn main() -> Result<(), UskuError> {
    let hw = usku::scheduler::default_workers().get();
    println!("hardware threads: {hw} (speedups are bounded by this; determinism is not)");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (single, campaign) = if smoke {
        // CI-sized: one short sweep, two worker counts, a two-service fleet.
        (
            single_service(&[Knob::Thp], &[1, 2])?,
            fleet(
                &[
                    (Microservice::Web, PlatformKind::Skylake18),
                    (Microservice::Cache2, PlatformKind::Skylake18),
                ],
                &[Knob::Thp],
                2,
            )?,
        )
    } else {
        (
            single_service(&[Knob::Thp, Knob::Shp, Knob::CoreFrequency], &[1, 2, hw])?,
            fleet(
                &FleetTuner::default_targets(),
                &[Knob::Thp, Knob::Shp, Knob::CoreFrequency],
                hw,
            )?,
        )
    };

    if let Some(path) = json_path() {
        let summary = Json::obj()
            .set("bench", Json::Str("sweepbench".into()))
            .set("smoke", Json::Bool(smoke))
            .set("hardware_threads", Json::Int(hw as i64))
            .set("base_seed", Json::Int(BASE_SEED as i64))
            .set("single_service", single)
            .set("fleet", campaign);
        std::fs::write(&path, summary.render_pretty()).map_err(|e| UskuError::InputParse {
            line: 0,
            detail: format!("writing {path}: {e}"),
        })?;
        println!("wrote {path}");
    }
    if smoke {
        println!("smoke ok");
    }
    Ok(())
}
