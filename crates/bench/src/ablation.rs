//! Ablation studies of the design choices DESIGN.md calls out — beyond the
//! paper's figures, these quantify *why* µSKU is built the way it is.
//!
//! * [`search_strategies`] — independent vs exhaustive vs hill-climbing on
//!   the same subspace: test cost and the non-additivity of knob gains
//!   (paper Sec. 7's "exhaustive design-space sweep" discussion).
//! * [`noise_vs_samples`] — how many samples the A/B tester needs to decide
//!   effects of different sizes under different noise levels (the paper's
//!   "minutes to hours of measurement" and the ~30 k-sample give-up rule).
//! * [`metric_choice`] — MIPS vs QPS decisions on the same knob, including
//!   the Cache tier where the paper says MIPS is invalid.

use crate::common::pct;
use softsku_archsim::pagemap::ThpMode;
use softsku_cluster::{AbEnvironment, EnvConfig};
use softsku_knobs::{Knob, KnobSetting};
use softsku_workloads::{Microservice, PlatformKind};
use usku::{
    exhaustive_sweep, hill_climb, independent_sweep, AbTestConfig, AbTester, InputFile,
    PerformanceMetric, SweepConfig, Usku, UskuConfig,
};

fn env(service: Microservice, platform: PlatformKind, seed: u64) -> AbEnvironment {
    let profile = service.profile(platform).expect("supported");
    let mut cfg = EnvConfig::fast_test();
    cfg.window_insns = 120_000;
    AbEnvironment::new(profile, cfg, seed).expect("environment builds")
}

/// Search-strategy ablation on the {THP, SHP} subspace of Web-Skylake.
pub fn search_strategies() -> String {
    let mut out =
        String::from("Ablation A — search strategies on Web (Skylake), knobs = {thp, shp}\n");
    let profile = Microservice::Web
        .profile(PlatformKind::Skylake18)
        .expect("supported");
    let production = profile.production_config.clone();
    let space = softsku_knobs::KnobSpace::for_platform(&production.platform, profile.constraints);
    let knobs = [Knob::Thp, Knob::Shp];
    let tester = AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips);

    let mut rows = Vec::new();
    {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 301);
        let r =
            independent_sweep(&tester, &mut e, &production, &space, &knobs).expect("sweep runs");
        rows.push(("independent", r));
    }
    {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 302);
        let r = exhaustive_sweep(&tester, &mut e, &production, &space, &knobs, 100)
            .expect("sweep runs");
        rows.push(("exhaustive", r));
    }
    {
        let mut e = env(Microservice::Web, PlatformKind::Skylake18, 303);
        let r = hill_climb(&tester, &mut e, &production, &space, &knobs, 2).expect("sweep runs");
        rows.push(("hill_climbing", r));
    }

    out.push_str(&format!(
        "  {:<14} {:>8} {:>10} {:>22}\n",
        "strategy", "tests", "samples", "selected config"
    ));
    for (name, r) in &rows {
        out.push_str(&format!(
            "  {:<14} {:>8} {:>10}   thp={} shp={}\n",
            name,
            r.map.test_count(),
            r.map.sample_count(),
            r.best_config.thp,
            r.best_config.shp_pages,
        ));
    }
    out.push_str(
        "  (independent assumes additivity and pays |settings| tests; exhaustive pays the\n   cross product; hill climbing re-tests the space once per accepted move)\n",
    );
    out
}

/// Sample-cost ablation: decision cost vs effect size and noise.
pub fn noise_vs_samples() -> String {
    let mut out =
        String::from("Ablation B — A/B samples needed per verdict vs effect size and noise\n");
    let effects: [(&str, KnobSetting); 3] = [
        (
            "~5% effect (CDP {6,5})",
            KnobSetting::Cdp(Some(
                softsku_archsim::cache::CdpPartition::new(6, 5, 11).expect("valid"),
            )),
        ),
        (
            "~2% effect (THP always)",
            KnobSetting::Thp(ThpMode::AlwaysOn),
        ),
        (
            "null effect (re-apply 2.2 GHz)",
            KnobSetting::CoreFrequencyGhz(2.2),
        ),
    ];
    for noise in [0.002, 0.008] {
        out.push_str(&format!("  measurement noise {:.1}%:\n", noise * 100.0));
        for (label, setting) in effects {
            let profile = Microservice::Web
                .profile(PlatformKind::Skylake18)
                .expect("supported");
            let production = profile.production_config.clone();
            let mut cfg = EnvConfig::fast_test();
            cfg.measurement_noise = noise;
            cfg.window_insns = 120_000;
            let mut e = AbEnvironment::new(profile, cfg, 99).expect("environment builds");
            let mut ab = AbTestConfig::fast_test();
            ab.max_samples = 6_000;
            let tester = AbTester::new(ab, PerformanceMetric::Mips);
            let r = tester.run(&mut e, &production, setting).expect("test runs");
            out.push_str(&format!(
                "    {:<32} {:>6} samples -> {:?}\n",
                label, r.samples, r.verdict
            ));
        }
    }
    out.push_str(
        "  (big effects decide in a handful of batches; the null runs to the CI-width\n   stop or the sample cap — the paper's 30k-observation give-up rule)\n",
    );
    out
}

/// Metric ablation: MIPS vs QPS on Cache2, where the paper calls MIPS
/// invalid, and on Web, where MIPS∝QPS was verified.
pub fn metric_choice() -> String {
    let mut out = String::from("Ablation C — MIPS vs QPS metric (Sec. 7 extension)\n");
    for (svc, knob_line) in [
        (Microservice::Web, "knobs = thp"),
        (Microservice::Cache2, "knobs = core_frequency"),
    ] {
        for metric in ["mips", "qps"] {
            let text = format!(
                "microservice = {}\n{}\nmetric = {}\nseed = 55\n",
                svc.name().to_lowercase(),
                knob_line,
                metric
            );
            let input = InputFile::parse(&text).expect("valid input");
            let mut cfg = UskuConfig::fast_test();
            cfg.validate_days = 0.0;
            let report = Usku::with_config(input, cfg).run().expect("µSKU runs");
            out.push_str(&format!(
                "  {:<8} metric={:<5} -> {} tests, gain vs production {}\n",
                svc.name(),
                metric,
                report.map.test_count(),
                pct(report.soft_sku.gain_vs_production),
            ));
        }
    }
    out.push_str(
        "  (recommended: MIPS for Web/Ads — verified proportional to QPS; QPS for the\n   Cache tiers, whose exception handlers make instruction counts load-dependent)\n",
    );
    out
}

/// Interaction ablation: independent composition vs exhaustive joint search
/// on a knob pair with a genuine interaction — CDP and prefetchers both
/// spend Web-Broadwell's scarce memory bandwidth, so their gains do not add.
pub fn knob_interactions() -> String {
    let mut out = String::from(
        "Ablation D — knob interactions on Web (Broadwell): CDP x prefetchers
",
    );
    let profile = Microservice::Web
        .profile(PlatformKind::Broadwell16)
        .expect("supported");
    let production = profile.production_config.clone();
    let space = softsku_knobs::KnobSpace::for_platform(&production.platform, profile.constraints);
    let knobs = [Knob::Cdp, Knob::Prefetcher];
    let tester = AbTester::new(AbTestConfig::fast_test(), PerformanceMetric::Mips);

    let mut e = env(Microservice::Web, PlatformKind::Broadwell16, 401);
    let ind = independent_sweep(&tester, &mut e, &production, &space, &knobs).expect("sweep runs");
    let additive: f64 = ind.selected.iter().map(|(_, _, g)| g).sum();

    // Measure the independent composition jointly.
    let joint_label = KnobSetting::Thp(production.thp);
    let composed = tester
        .run_config(&mut e, &production, &ind.best_config, false, joint_label)
        .expect("joint measurement runs");
    let composed_gain = composed.relative_diff().unwrap_or(0.0);

    let mut e2 = env(Microservice::Web, PlatformKind::Broadwell16, 402);
    let exh =
        exhaustive_sweep(&tester, &mut e2, &production, &space, &knobs, 80).expect("sweep runs");
    let exh_gain = exh.selected.first().map(|(_, _, g)| *g).unwrap_or(0.0);

    out.push_str(&format!(
        "  independent winners composed: measured {} (additive prediction {})
",
        pct(composed_gain),
        pct(additive)
    ));
    out.push_str(&format!(
        "  exhaustive joint optimum:     measured {} over {} joint tests
",
        pct(exh_gain),
        exh.map.test_count()
    ));
    out.push_str(&format!(
        "  independent cost: {} tests / exhaustive cost: {} tests
",
        ind.map.test_count(),
        exh.map.test_count()
    ));
    out.push_str(
        "  (the paper's Sec. 7 point: per-knob gains are not strictly additive, and the
   exhaustive search that could exploit interactions is combinatorially priced)
",
    );
    out
}

/// All ablations, used by the `repro` binary.
pub fn all() -> String {
    let mut out = search_strategies();
    out.push('\n');
    out.push_str(&noise_vs_samples());
    out.push('\n');
    out.push_str(&metric_choice());
    out.push('\n');
    out.push_str(&knob_interactions());
    let _ = SweepConfig::Independent; // referenced for doc completeness
    out
}
