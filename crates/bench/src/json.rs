//! Re-export of the telemetry crate's dep-free JSON emitter.
//!
//! The emitter moved to [`softsku_telemetry::json`] so the deterministic
//! trace exporter can render Chrome trace-event files without a dependency
//! cycle (bench depends on telemetry). Bench bins keep importing
//! `softsku_bench::json::Json` unchanged.

pub use softsku_telemetry::json::Json;
