//! Shared measurement helpers for the figure-regeneration harness.

use softsku_archsim::engine::{Engine, ServerConfig, WindowReport};
use softsku_workloads::{Microservice, PlatformKind};
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Engine window for figure-quality measurements.
pub const FIG_WINDOW: u64 = 400_000;

/// All (service, characterization platform) pairs in paper order.
pub fn service_platforms() -> Vec<(Microservice, PlatformKind)> {
    Microservice::ALL
        .into_iter()
        .map(|s| (s, s.default_platform()))
        .collect()
}

/// Peak-load production report for a service on its default platform,
/// cached for the process (many figures share these measurements).
pub fn peak_report(service: Microservice) -> WindowReport {
    static CACHE: OnceLock<Mutex<HashMap<Microservice, WindowReport>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().expect("peak report cache poisoned");
    guard
        .entry(service)
        .or_insert_with(|| {
            let profile = service
                .profile(service.default_platform())
                .expect("default platform is always supported");
            let engine = Engine::new(profile.production_config.clone(), profile.stream, 42)
                .expect("production config is valid");
            engine
                .run_window(FIG_WINDOW, profile.peak_utilization)
                .expect("production operating point simulates")
        })
        .clone()
}

/// Peak-load report under an arbitrary configuration.
pub fn report_for(
    service: Microservice,
    platform: PlatformKind,
    config: &ServerConfig,
) -> WindowReport {
    let profile = service.profile(platform).expect("supported platform");
    let engine = Engine::new(config.clone(), profile.stream, 42).expect("valid config");
    engine
        .run_window(FIG_WINDOW, profile.peak_utilization)
        .expect("operating point simulates")
}

/// Total MIPS under a configuration (the A/B comparison quantity).
pub fn mips_for(service: Microservice, platform: PlatformKind, config: &ServerConfig) -> f64 {
    report_for(service, platform, config).mips_total
}

/// Formats a percent gain column.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Pads/truncates into a fixed-width cell.
pub fn cell(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

/// Order-of-magnitude label (`O(100K)` style) used by Table 2.
pub fn order_of(x: f64) -> String {
    if x <= 0.0 {
        return "O(0)".to_string();
    }
    let exp = x.log10().floor() as i32;
    match exp {
        e if e >= 6 => format!("O(10^{e})"),
        5 => "O(100K)".to_string(),
        4 => "O(10K)".to_string(),
        3 => "O(1000)".to_string(),
        2 => "O(100)".to_string(),
        1 => "O(10)".to_string(),
        0 => "O(1)".to_string(),
        e => format!("O(10^{e})"),
    }
}
