//! Figure/table regeneration harness for the SoftSKU reproduction.
//!
//! Every table and figure from the paper's evaluation has a function here
//! that regenerates it against the simulator and prints the measured series
//! next to the paper's reference values. The `repro` binary dispatches on
//! experiment ids (`table1`, `fig1` … `fig19`, `all`); the Criterion benches
//! in `benches/` exercise the same entry points plus the simulator's hot
//! components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod characterization;
pub mod common;
pub mod json;
pub mod knobsweeps;

/// Every experiment id in paper order.
pub const EXPERIMENTS: [&str; 23] = [
    "table1",
    "fig1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table3",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablations",
];

/// Runs one experiment by id and returns its printable output.
///
/// `full` selects paper-scale budgets for the µSKU end-to-end runs.
///
/// # Panics
///
/// Panics on an unknown experiment id; `EXPERIMENTS` lists the valid ones.
pub fn run_experiment(id: &str, full: bool) -> String {
    match id {
        "table1" => characterization::table1(),
        "fig1" => characterization::fig1(),
        "table2" => characterization::table2(),
        "fig2" => characterization::fig2(),
        "fig3" => characterization::fig3(),
        "fig4" => characterization::fig4(),
        "fig5" => characterization::fig5(),
        "fig6" => characterization::fig6(),
        "fig7" => characterization::fig7(),
        "fig8" => characterization::fig8(),
        "fig9" => characterization::fig9(),
        "fig10" => characterization::fig10(),
        "fig11" => characterization::fig11(),
        "fig12" => characterization::fig12(),
        "table3" => characterization::table3(),
        "fig13" => knobsweeps::fig13(),
        "fig14" => knobsweeps::fig14(),
        "fig15" => knobsweeps::fig15(),
        "fig16" => knobsweeps::fig16(),
        "fig17" => knobsweeps::fig17(),
        "fig18" => knobsweeps::fig18(),
        "fig19" => knobsweeps::fig19(full),
        "ablations" => ablation::all(),
        other => panic!("unknown experiment id {other:?}; valid ids: {EXPERIMENTS:?}"),
    }
}
