//! Regeneration of the µSKU evaluation artifacts (Fig. 13–19).

use crate::common::{mips_for, pct};
use softsku_archsim::cache::CdpPartition;
use softsku_archsim::pagemap::ThpMode;
use softsku_archsim::platform::PlatformKind;
use softsku_archsim::prefetch::PrefetcherConfig;
use softsku_workloads::Microservice;
use usku::{AbTestConfig, InputFile, PerformanceMetric, SweepConfig, Usku, UskuConfig};

/// The three µSKU evaluation targets (paper Sec. 5).
pub fn eval_targets() -> [(Microservice, PlatformKind, &'static str); 3] {
    [
        (Microservice::Web, PlatformKind::Skylake18, "Web (Skylake)"),
        (
            Microservice::Web,
            PlatformKind::Broadwell16,
            "Web (Broadwell)",
        ),
        (Microservice::Ads1, PlatformKind::Skylake18, "Ads1"),
    ]
}

/// Fig. 13: the µSKU component pipeline, traced on a tiny real run.
pub fn fig13() -> String {
    let mut out = String::from("Fig. 13 — µSKU system design (pipeline trace)\n");
    out.push_str("  input file        : microservice=web, platform=skylake18, sweep=independent\n");
    let input = InputFile::parse(
        "microservice = web\nplatform = skylake18\nsweep = independent\nknobs = thp\nseed = 17\n",
    )
    .expect("valid input");
    out.push_str("  input-file parser : parsed and validated against the workload registry\n");
    let mut cfg = UskuConfig::fast_test();
    cfg.abtest = AbTestConfig::fast_test();
    let report = Usku::with_config(input, cfg).run().expect("pipeline runs");
    out.push_str(&format!(
        "  A/B configurator  : planned {} tests over the gated knob space\n",
        report.map.test_count()
    ));
    out.push_str(&format!(
        "  A/B tester        : {} samples, {} QoS discards, {} reboot skips\n",
        report.map.sample_count(),
        report.map.qos_discards(),
        report.map.reboot_skips()
    ));
    out.push_str(&format!(
        "  soft-SKU generator: composed {} selections, {} vs production\n",
        report.soft_sku.selections.len(),
        pct(report.soft_sku.gain_vs_production)
    ));
    out
}

/// Fig. 14a/b: core and uncore frequency scaling.
pub fn fig14() -> String {
    let mut out = String::from("Fig. 14a — perf gain over 1.6 GHz core frequency\n");
    for (svc, plat, label) in eval_targets() {
        let prod = svc.production_config(plat).expect("supported");
        let mut base_cfg = prod.clone();
        base_cfg.core_freq_ghz = 1.6;
        let base = mips_for(svc, plat, &base_cfg);
        out.push_str(&format!("  {label:<16}"));
        for f in [1.7, 1.8, 1.9, 2.0, 2.1, 2.2] {
            let mut cfg = prod.clone();
            cfg.core_freq_ghz = f;
            out.push_str(&format!(
                " {f:.1}:{}",
                pct(mips_for(svc, plat, &cfg) / base - 1.0)
            ));
        }
        out.push('\n');
    }
    out.push_str("  (paper: monotone gains, diminishing beyond 1.9 GHz; max is best)\n");
    out.push_str("Fig. 14b — perf gain over 1.4 GHz uncore frequency\n");
    for (svc, plat, label) in eval_targets() {
        let prod = svc.production_config(plat).expect("supported");
        let mut base_cfg = prod.clone();
        base_cfg.uncore_freq_ghz = 1.4;
        let base = mips_for(svc, plat, &base_cfg);
        out.push_str(&format!("  {label:<16}"));
        for f in [1.5, 1.6, 1.7, 1.8] {
            let mut cfg = prod.clone();
            cfg.uncore_freq_ghz = f;
            out.push_str(&format!(
                " {f:.1}:{}",
                pct(mips_for(svc, plat, &cfg) / base - 1.0)
            ));
        }
        out.push('\n');
    }
    out.push_str("  (paper: Ads1 is the most uncore-sensitive; max is best)\n");
    out
}

/// Fig. 15: core-count scaling (Ads1 excluded: QoS).
pub fn fig15() -> String {
    let mut out = String::from(
        "Fig. 15 — throughput vs physical cores, normalized to 2 cores (ideal = n/2)\n",
    );
    for (svc, plat, label) in [
        (Microservice::Web, PlatformKind::Skylake18, "Web (Skylake)"),
        (
            Microservice::Web,
            PlatformKind::Broadwell16,
            "Web (Broadwell)",
        ),
    ] {
        let prod = svc.production_config(plat).expect("supported");
        let mut two = prod.clone();
        two.active_cores = 2;
        let base = mips_for(svc, plat, &two);
        out.push_str(&format!("  {label:<16}"));
        let max = plat.spec().total_cores();
        for n in [2u32, 4, 6, 8, 12, 16, 18] {
            if n > max {
                continue;
            }
            let mut cfg = prod.clone();
            cfg.active_cores = n;
            out.push_str(&format!(
                " {n}c:{:.2}x(ideal {:.1}x)",
                mips_for(svc, plat, &cfg) / base,
                n as f64 / 2.0
            ));
        }
        out.push('\n');
    }
    out.push_str("  (Ads1 excluded: its load-balancer design fails QoS below full core count)\n");
    out.push_str("  (paper: near-linear to ~8 cores, then LLC interference bends the curve)\n");
    out
}

/// Fig. 16: CDP way-partition sweep.
pub fn fig16() -> String {
    let mut out = String::from("Fig. 16 — perf gain over CDP-off for {data, code} LLC ways\n");
    for (svc, plat, label) in eval_targets() {
        let prod = svc.production_config(plat).expect("supported");
        let base = mips_for(svc, plat, &prod);
        out.push_str(&format!("  {label}:\n   "));
        for p in CdpPartition::sweep(prod.llc_ways_enabled) {
            let mut cfg = prod.clone();
            cfg.cdp = Some(p);
            out.push_str(&format!(
                " {p}:{}",
                pct(mips_for(svc, plat, &cfg) / base - 1.0)
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "  (paper: Web-Skylake peaks near {6,5} at +4.5%; Ads1 near {9,2} at +2.5%;\n   Web-Broadwell gains nothing — memory bandwidth saturated)\n",
    );
    out
}

/// Fig. 17: prefetcher configuration sweep.
pub fn fig17() -> String {
    let mut out = String::from("Fig. 17 — perf gain over all-prefetchers-off\n");
    for (svc, plat, label) in eval_targets() {
        let prod = svc.production_config(plat).expect("supported");
        let mut off = prod.clone();
        off.prefetchers = PrefetcherConfig::all_off();
        let base = mips_for(svc, plat, &off);
        out.push_str(&format!("  {label}:\n   "));
        for pc in PrefetcherConfig::sweep() {
            let mut cfg = prod.clone();
            cfg.prefetchers = pc;
            out.push_str(&format!(
                " [{pc}]:{}",
                pct(mips_for(svc, plat, &cfg) / base - 1.0)
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "  (paper: prefetchers help Web-Skylake/Ads1; Web-Broadwell is bandwidth-bound and\n   prefers them off — ~3% over its production config)\n",
    );
    out
}

/// Fig. 18a/b: THP modes and SHP counts.
pub fn fig18() -> String {
    let mut out = String::from("Fig. 18a — perf gain over THP=madvise\n");
    for (svc, plat, label) in eval_targets() {
        let prod = svc.production_config(plat).expect("supported");
        let base = mips_for(svc, plat, &prod);
        out.push_str(&format!("  {label:<16}"));
        for mode in [ThpMode::AlwaysOn, ThpMode::NeverOn] {
            let mut cfg = prod.clone();
            cfg.thp = mode;
            out.push_str(&format!(
                " {mode}:{}",
                pct(mips_for(svc, plat, &cfg) / base - 1.0)
            ));
        }
        out.push('\n');
    }
    out.push_str("  (paper: only Web-Skylake gains from always-on, ≈+1.9%)\n");
    out.push_str("Fig. 18b — perf gain over 0 SHPs (Web only; Ads1 never calls the APIs)\n");
    for (svc, plat, label) in [
        (Microservice::Web, PlatformKind::Skylake18, "Web (Skylake)"),
        (
            Microservice::Web,
            PlatformKind::Broadwell16,
            "Web (Broadwell)",
        ),
    ] {
        let prod = svc.production_config(plat).expect("supported");
        let mut none = prod.clone();
        none.shp_pages = 0;
        let base = mips_for(svc, plat, &none);
        out.push_str(&format!("  {label:<16}"));
        for shp in (100..=600).step_by(100) {
            let mut cfg = prod.clone();
            cfg.shp_pages = shp;
            out.push_str(&format!(
                " {shp}:{}",
                pct(mips_for(svc, plat, &cfg) / base - 1.0)
            ));
        }
        out.push('\n');
    }
    out.push_str("  (paper sweet spots: 300 on Skylake, 400 on Broadwell; production 200/488)\n");
    out
}

/// Fig. 19: full µSKU runs — soft SKU vs stock and hand-tuned production.
///
/// `full` uses paper-scale sample budgets; the fast path keeps the repro
/// binary's default runtime reasonable.
pub fn fig19(full: bool) -> String {
    let mut out =
        String::from("Fig. 19 — µSKU soft-SKU gains (vs stock / vs hand-tuned production)\n");
    let paper = [(6.2, 4.5), (7.2, 3.0), (2.5, 2.5)];
    for (i, (svc, plat, label)) in eval_targets().into_iter().enumerate() {
        let text = format!(
            "microservice = {}\nplatform = {}\nsweep = independent\nseed = 97\n",
            svc.name().to_lowercase(),
            format!("{plat}").to_lowercase()
        );
        let input = InputFile::parse(&text).expect("valid input");
        let mut cfg = if full {
            UskuConfig::default()
        } else {
            UskuConfig::fast_test()
        };
        if !full {
            cfg.validate_days = 0.5;
        }
        let report = Usku::with_config(input, cfg).run().expect("µSKU run");
        out.push_str(&format!(
            "  {:<16} vs stock {}   vs production {}   (paper: +{:.1}% / +{:.1}%)\n",
            label,
            pct(report.soft_sku.gain_vs_stock),
            pct(report.soft_sku.gain_vs_production),
            paper[i].0,
            paper[i].1
        ));
        for (knob, setting, gain) in &report.soft_sku.selections {
            out.push_str(&format!(
                "      {:<16} -> {:<24} ({} individually)\n",
                knob.to_string(),
                setting.to_string(),
                pct(*gain)
            ));
        }
        if let Some(v) = &report.validation {
            out.push_str(&format!(
                "      fleet validation: {} QPS across {} pushes (stable: {})\n",
                pct(v.relative_gain),
                v.code_pushes,
                v.stable_across_days
            ));
        }
        out.push_str(&format!(
            "      search: {} tests, {} samples, {:.1} simulated hours\n",
            report.map.test_count(),
            report.map.sample_count(),
            report.search_time_s / 3600.0
        ));
    }
    out.push_str("  (shape under test: every target gains; Web gains most, Ads1 least)\n");
    out
}

/// Convenience: the default µSKU metric used in the evaluation.
pub fn eval_metric() -> PerformanceMetric {
    PerformanceMetric::Mips
}

/// Convenience: the evaluation sweep strategy.
pub fn eval_sweep() -> SweepConfig {
    SweepConfig::Independent
}
